//! Bounded-queue streaming versus chunked batch execution.
//!
//! The chunked executor barriers between segments: the whole fused
//! `grep|tr|cut|sort` chain must finish every chunk before the serial
//! k-way merge starts. The streaming executor gives each segment its own
//! pool connected by bounded chunk queues, and wins on two axes:
//!
//! * **overlap** — the chunk-local stages (`grep`, `tr`, `cut`) forward
//!   outputs immediately and `sort`'s combiner folds sorted runs *while
//!   upstream is still producing*, so on a multi-core host the merge work
//!   chunked exposes as a serial tail hides behind upstream compute;
//! * **granularity** — the streaming collector re-normalizes the shrunken
//!   `cut` output back to the target chunk size, so the barrier stage
//!   sorts ~30 large pieces instead of 128 small ones and the closing
//!   k-way merge works a much smaller frontier. This effect is real even
//!   on a single-core host, where overlap cannot help and wall-clock is
//!   total work.
//!
//! Input defaults to 16 MiB (`KQ_STREAM_BENCH_KB` overrides); the pipeline
//! has three chunk-local stages feeding a barrier stage. Both executors
//! run with the same per-pool worker count; outputs are asserted identical
//! to the serial run before timing starts.

use criterion::{criterion_group, criterion_main, Criterion};
use kq_coreutils::ExecContext;
use kq_pipeline::chunked::{run_chunked, ChunkedOptions};
use kq_pipeline::exec::run_serial;
use kq_pipeline::parse::parse_script;
use kq_pipeline::plan::Planner;
use kq_pipeline::streaming::{run_streaming, StreamingOptions};
use kq_synth::SynthesisConfig;
use std::collections::HashMap;
use std::hint::black_box;

/// Mixed-case word lines, ~32 bytes each, deterministic.
fn make_input(bytes: usize) -> String {
    let words = [
        "Apple", "dog", "CAT", "bird", "Fox", "wolf", "Pear", "yak", "Emu", "newt",
    ];
    let mut s = String::with_capacity(bytes + 64);
    let mut i = 0usize;
    while s.len() < bytes {
        s.push_str(&format!(
            "{} {} item {:04}\n",
            words[i % words.len()],
            words[(i * 7 + 3) % words.len()],
            (i * 2654435761) % 9973
        ));
        i += 1;
    }
    s
}

fn input_bytes() -> usize {
    std::env::var("KQ_STREAM_BENCH_KB")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(16 * 1024)
        * 1024
}

fn bench_streaming_vs_chunked(c: &mut Criterion) {
    let input = make_input(input_bytes());
    let env: HashMap<String, String> = HashMap::new();
    // Three chunk-local stages (grep, tr, cut) feeding a barrier (sort).
    let script = parse_script(
        "cat /in.txt | grep -v qqq | tr A-Z a-z | cut -d ' ' -f 1 | sort",
        &env,
    )
    .unwrap();
    let ctx = ExecContext::default();
    ctx.vfs.write("/in.txt", &input);
    let mut planner = Planner::new(SynthesisConfig::default());
    // Line-aligned sample: the stream-output probe must see whole lines.
    let cut = input[..input.len().min(16_384)]
        .rfind('\n')
        .map(|i| i + 1)
        .unwrap_or(input.len());
    let plan = planner.plan(&script, &ctx, &input[..cut]);

    // Correctness guard before timing anything.
    let serial = run_serial(&script, &ctx).unwrap();
    let chunk_bytes = 128 * 1024;
    for workers in [2usize, 4] {
        let copts = ChunkedOptions {
            workers,
            chunk_bytes,
            honor_elimination: true,
        };
        assert_eq!(
            run_chunked(&script, &plan, &ctx, &copts).unwrap().output,
            serial.output
        );
        let sopts = StreamingOptions {
            workers,
            chunk_bytes,
            queue_depth: 4,
            fuse_streamable: true,
            spill: None,
        };
        assert_eq!(
            run_streaming(&script, &plan, &ctx, &sopts).unwrap().output,
            serial.output
        );
    }

    let mut group = c.benchmark_group("streaming_exec");
    group.sample_size(10);
    for workers in [2usize, 4] {
        let copts = ChunkedOptions {
            workers,
            chunk_bytes,
            honor_elimination: true,
        };
        group.bench_function(format!("chunked_w{workers}"), |b| {
            b.iter(|| {
                let r = run_chunked(black_box(&script), &plan, &ctx, &copts).unwrap();
                r.output.len()
            })
        });
        let sopts = StreamingOptions {
            workers,
            chunk_bytes,
            queue_depth: 4,
            fuse_streamable: true,
            spill: None,
        };
        group.bench_function(format!("streaming_w{workers}"), |b| {
            b.iter(|| {
                let r = run_streaming(black_box(&script), &plan, &ctx, &sopts).unwrap();
                r.output.len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_streaming_vs_chunked);
criterion_main!(benches);
