//! Shared-pool dataflow scheduler versus per-segment-pool streaming on a
//! multi-statement script — the workload the unified runtime exists for.
//!
//! The streaming executor runs statements one at a time, and each
//! statement spawns its own feeder + per-segment worker pools which are
//! torn down at the statement barrier. The dataflow scheduler compiles
//! every statement to one graph and runs the whole script on a single
//! fixed pool, so (a) pool spawn/teardown is paid once per script rather
//! than once per segment, and (b) statements without VFS dependencies
//! overlap on the shared workers. This bench times both at w=4 on an
//! eight-statement redirect script and persists the medians to
//! `BENCH_dataflow.json` at the repo root, so the perf trajectory is
//! tracked across PRs instead of living only in CI logs.
//!
//! Unlike the criterion-shim benches, this harness reports the *median*
//! of fixed-count samples (plus the process `VmHWM` after each bench) and
//! writes them as JSON. Input defaults to 16 MiB (`KQ_DATAFLOW_BENCH_KB`
//! overrides; `KQ_BENCH_QUICK=1` shrinks to 1 MiB and one sample for the
//! CI smoke). `KQ_BENCH_OUT` overrides the output path.

use kq_coreutils::ExecContext;
use kq_pipeline::exec::run_serial;
use kq_pipeline::parse::parse_script;
use kq_pipeline::plan::Planner;
use kq_pipeline::scheduler::{run_dataflow, ChunkSizing, DataflowOptions, QueueCredit};
use kq_pipeline::streaming::{run_streaming, StreamingOptions};
use kq_synth::SynthesisConfig;
use std::collections::HashMap;
use std::time::{Duration, Instant};

const WORKERS: usize = 4;
const CHUNK_BYTES: usize = 128 * 1024;

/// Eight statements over one input: a fold-heavy frequency pipeline
/// checkpointed to a redirect, six independent analyses free to overlap
/// it, and a reader of the first statement's target (a real RAW
/// dependency). Statement count is the axis that separates the executors:
/// streaming pays feeder + per-segment pools + a drain barrier per
/// statement, dataflow pays one pool for the whole script.
const SCRIPT: &str =
    "cat /in.txt | grep -v qqq | tr A-Z a-z | sort | uniq -c | sort -rn > /out/freq\n\
                      cat /in.txt | cut -d ' ' -f 1 | sort -u > /out/first\n\
                      cat /in.txt | grep Apple | wc -l\n\
                      cat /in.txt | tr A-Z a-z | head -n 3\n\
                      cat /in.txt | cut -d ' ' -f 2 | sort | uniq -c | sort -rn | head -n 5\n\
                      cat /in.txt | grep dog | cut -d ' ' -f 3 | sort -u | wc -l\n\
                      cat /in.txt | grep -c bird\n\
                      cat /out/freq | head -n 10";

fn quick_mode() -> bool {
    std::env::var("KQ_BENCH_QUICK")
        .map(|v| v == "1")
        .unwrap_or(false)
}

fn input_bytes() -> usize {
    let kb = std::env::var("KQ_DATAFLOW_BENCH_KB")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(if quick_mode() { 1024 } else { 16 * 1024 });
    kb * 1024
}

/// Mixed-case word lines, ~32 bytes each, deterministic.
fn make_input(bytes: usize) -> String {
    let words = [
        "Apple", "dog", "CAT", "bird", "Fox", "wolf", "Pear", "yak", "Emu", "newt",
    ];
    let mut s = String::with_capacity(bytes + 64);
    let mut i = 0usize;
    while s.len() < bytes {
        s.push_str(&format!(
            "{} {} item {:04}\n",
            words[i % words.len()],
            words[(i * 7 + 3) % words.len()],
            (i * 2654435761) % 9973
        ));
        i += 1;
    }
    s
}

fn fresh_ctx(input: &str) -> ExecContext {
    let ctx = ExecContext::default();
    ctx.vfs.write("/in.txt", input);
    ctx
}

/// Peak resident set of this process so far, from /proc (0 elsewhere).
fn vm_hwm_kb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find_map(|l| l.strip_prefix("VmHWM:"))
                .and_then(|v| v.trim().trim_end_matches(" kB").trim().parse().ok())
        })
        .unwrap_or(0)
}

/// Runs `routine` (setup excluded: the closure times itself) `n` times and
/// returns the median duration.
fn median_of(n: usize, mut routine: impl FnMut() -> Duration) -> (Duration, usize) {
    let mut samples: Vec<Duration> = (0..n).map(|_| routine()).collect();
    samples.sort();
    (samples[samples.len() / 2], samples.len())
}

struct BenchRow {
    name: &'static str,
    median: Duration,
    samples: usize,
    vm_hwm_kb: u64,
}

fn main() {
    let input = make_input(input_bytes());
    let env: HashMap<String, String> = HashMap::new();
    let script = parse_script(SCRIPT, &env).unwrap();
    let mut planner = Planner::new(SynthesisConfig::default());
    let cut = input[..input.len().min(16_384)]
        .rfind('\n')
        .map(|i| i + 1)
        .unwrap_or(input.len());
    let plan = planner.plan(&script, &fresh_ctx(&input), &input[..cut]);

    let sopts = StreamingOptions {
        workers: WORKERS,
        chunk_bytes: CHUNK_BYTES,
        queue_depth: 4,
        fuse_streamable: true,
        spill: None,
    };
    let dopts = DataflowOptions {
        workers: WORKERS,
        chunk: ChunkSizing::Fixed(CHUNK_BYTES),
        queue: QueueCredit::Fixed(4),
        fuse_streamable: true,
        spill: None,
    };

    // Correctness guard before timing anything: both executors must agree
    // with serial on stdout AND on every redirect target.
    let serial_ctx = fresh_ctx(&input);
    let serial = run_serial(&script, &serial_ctx).unwrap();
    for (name, output, ctx) in [
        {
            let ctx = fresh_ctx(&input);
            let r = run_streaming(&script, &plan, &ctx, &sopts).unwrap();
            ("streaming", r.output, ctx)
        },
        {
            let ctx = fresh_ctx(&input);
            let r = run_dataflow(&script, &plan, &ctx, &dopts).unwrap();
            ("dataflow", r.output, ctx)
        },
    ] {
        assert_eq!(output, serial.output, "{name}: stdout diverged from serial");
        for target in ["/out/freq", "/out/first"] {
            assert_eq!(
                ctx.vfs.read(target).map(|s| s.to_owned()),
                serial_ctx.vfs.read(target).map(|s| s.to_owned()),
                "{name}: wrong bytes in {target}"
            );
        }
    }

    let n = if quick_mode() { 1 } else { 9 };
    let mut rows: Vec<BenchRow> = Vec::new();
    let mut push = |name: &'static str, (median, samples): (Duration, usize)| {
        println!(
            "{:<28} median: {:>9.2} ms  ({samples} samples, VmHWM {} MiB)",
            format!("dataflow_exec/{name}"),
            median.as_secs_f64() * 1e3,
            vm_hwm_kb() / 1024
        );
        rows.push(BenchRow {
            name,
            median,
            samples,
            vm_hwm_kb: vm_hwm_kb(),
        });
    };

    push(
        "serial",
        median_of(n, || {
            let ctx = fresh_ctx(&input);
            let t0 = Instant::now();
            let r = run_serial(&script, &ctx).unwrap();
            let dt = t0.elapsed();
            std::hint::black_box(r.output.len());
            dt
        }),
    );
    push(
        "streaming_w4",
        median_of(n, || {
            let ctx = fresh_ctx(&input);
            let t0 = Instant::now();
            let r = run_streaming(&script, &plan, &ctx, &sopts).unwrap();
            let dt = t0.elapsed();
            std::hint::black_box(r.output.len());
            dt
        }),
    );
    push(
        "dataflow_w4",
        median_of(n, || {
            let ctx = fresh_ctx(&input);
            let t0 = Instant::now();
            let r = run_dataflow(&script, &plan, &ctx, &dopts).unwrap();
            let dt = t0.elapsed();
            std::hint::black_box(r.output.len());
            dt
        }),
    );

    let ms = |name: &str| {
        rows.iter()
            .find(|r| r.name == name)
            .map(|r| r.median.as_secs_f64() * 1e3)
            .unwrap()
    };
    let speedup = ms("streaming_w4") / ms("dataflow_w4");
    println!("dataflow_exec/speedup_vs_streaming_w4      {speedup:.2}x");

    // Hand-rolled JSON: names and floats only, nothing needing escaping.
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!(
        "  \"script_statements\": {},\n",
        script.statements.len()
    ));
    json.push_str(&format!("  \"input_bytes\": {},\n", input.len()));
    json.push_str(&format!("  \"workers\": {WORKERS},\n"));
    json.push_str(&format!("  \"chunk_bytes\": {CHUNK_BYTES},\n"));
    json.push_str("  \"benches\": {\n");
    for (i, row) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        json.push_str(&format!(
            "    \"{}\": {{\"median_ms\": {:.3}, \"samples\": {}, \"vm_hwm_kb\": {}}}{comma}\n",
            row.name,
            row.median.as_secs_f64() * 1e3,
            row.samples,
            row.vm_hwm_kb
        ));
    }
    json.push_str("  },\n");
    json.push_str(&format!(
        "  \"dataflow_w4_speedup_vs_streaming_w4\": {speedup:.3}\n"
    ));
    json.push_str("}\n");

    let out = std::env::var("KQ_BENCH_OUT")
        .unwrap_or_else(|_| format!("{}/../../BENCH_dataflow.json", env!("CARGO_MANIFEST_DIR")));
    std::fs::write(&out, json).unwrap_or_else(|e| panic!("write {out}: {e}"));
    println!("wrote {out}");
}
