//! Early-exit cancellation versus full consumption.
//!
//! The corpus's `… | head -n 1`-shaped pipelines consume a prefix of
//! their stream; every executor except streaming still pays for the whole
//! input. This bench pins the win on a `cat big | grep needle | head -n 1`
//! pipeline whose needle sits on line one:
//!
//! * `streaming_early_exit` — the bounded consumer's demand token cancels
//!   the feeder and the grep pool after O(first match) bytes;
//! * `streaming_full_scan` — the same upstream terminated by `wc -l`
//!   (which must read everything), so the same executor does the same
//!   per-byte work *without* a cancellation: the baseline for what the
//!   demand token saves (mirrors the CI out-of-core comparison);
//! * `chunked_full` — the chunked executor, which always reads everything.
//!
//! Input defaults to 16 MiB (`KQ_EARLY_EXIT_BENCH_KB` overrides;
//! `KQ_BENCH_QUICK=1` shrinks to 1 MiB for the CI smoke run).

use criterion::{criterion_group, criterion_main, Criterion};
use kq_coreutils::ExecContext;
use kq_pipeline::chunked::{run_chunked, ChunkedOptions};
use kq_pipeline::exec::run_serial;
use kq_pipeline::parse::parse_script;
use kq_pipeline::plan::Planner;
use kq_pipeline::streaming::{run_streaming, StreamingOptions};
use kq_synth::SynthesisConfig;
use std::collections::HashMap;
use std::hint::black_box;

fn make_input(bytes: usize) -> String {
    let mut s = String::with_capacity(bytes + 64);
    s.push_str("needle alpha first line\n");
    let filler = "haystack filler line with nothing of interest inside\n";
    while s.len() < bytes {
        s.push_str(filler);
    }
    s
}

fn input_bytes() -> usize {
    if std::env::var("KQ_BENCH_QUICK").is_ok() {
        return 1024 * 1024;
    }
    std::env::var("KQ_EARLY_EXIT_BENCH_KB")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(16 * 1024)
        * 1024
}

fn bench_early_exit(c: &mut Criterion) {
    let input = make_input(input_bytes());
    let env: HashMap<String, String> = HashMap::new();
    let bounded = parse_script("cat /in.txt | grep needle | head -n 1", &env).unwrap();
    // Same upstream, full-consumption sink: the delta to `bounded` is
    // what the demand token saves. (A huge `head -n` bound would be the
    // purer control, but its line hint makes synthesis generate
    // million-line probe streams — `wc -l` costs one count per chunk.)
    let unbounded = parse_script("cat /in.txt | grep needle | wc -l", &env).unwrap();
    let ctx = ExecContext::default();
    ctx.vfs.write("/in.txt", &input);
    let mut planner = Planner::new(SynthesisConfig::default());
    let sample = "needle alpha first line\nhaystack filler line\n".repeat(40);
    let bounded_plan = planner.plan(&bounded, &ctx, &sample);
    let unbounded_plan = planner.plan(&unbounded, &ctx, &sample);

    // Correctness guard before timing anything.
    let serial = run_serial(&bounded, &ctx).unwrap();
    assert_eq!(serial.output, "needle alpha first line\n");
    let sopts = StreamingOptions {
        workers: 2,
        chunk_bytes: 128 * 1024,
        queue_depth: 4,
        fuse_streamable: true,
        spill: None,
    };
    assert_eq!(
        run_streaming(&bounded, &bounded_plan, &ctx, &sopts)
            .unwrap()
            .output,
        serial.output
    );

    let mut group = c.benchmark_group("early_exit");
    group.sample_size(10);
    group.bench_function("streaming_early_exit", |b| {
        b.iter(|| {
            let r = run_streaming(black_box(&bounded), &bounded_plan, &ctx, &sopts).unwrap();
            r.output.len()
        })
    });
    group.bench_function("streaming_full_scan", |b| {
        b.iter(|| {
            let r = run_streaming(black_box(&unbounded), &unbounded_plan, &ctx, &sopts).unwrap();
            r.output.len()
        })
    });
    let copts = ChunkedOptions {
        workers: 2,
        chunk_bytes: 128 * 1024,
        honor_elimination: true,
    };
    group.bench_function("chunked_full", |b| {
        b.iter(|| {
            let r = run_chunked(black_box(&bounded), &bounded_plan, &ctx, &copts).unwrap();
            r.output.len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_early_exit);
criterion_main!(benches);
