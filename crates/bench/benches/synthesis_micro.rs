//! End-to-end combiner synthesis (Algorithm 1) for commands across the
//! difficulty spectrum: a newline-only space (`wc -l`), a full two-delim
//! space with StructOp winners (`uniq -c`), and a no-combiner command
//! where every candidate must be eliminated (`sed 1d`).

use criterion::{criterion_group, criterion_main, Criterion};
use kq_coreutils::{parse_command, ExecContext};
use kq_synth::{synthesize, SynthesisConfig};
use std::hint::black_box;

fn bench_synthesis(c: &mut Criterion) {
    let mut group = c.benchmark_group("synthesis");
    group.sample_size(10);
    for cmd in ["wc -l", "uniq -c", "sed 1d"] {
        let command = parse_command(cmd).unwrap();
        let ctx = ExecContext::default();
        let config = SynthesisConfig::default();
        group.bench_function(cmd.replace(' ', "_"), |b| {
            b.iter(|| {
                let report = synthesize(black_box(&command), &ctx, &config);
                report.observations
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_synthesis);
criterion_main!(benches);
