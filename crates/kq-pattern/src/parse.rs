//! BRE pattern parser.
//!
//! Grammar (the subset exercised by the benchmark corpus, which is the
//! standard BRE core):
//!
//! ```text
//! pattern := '^'? atom* '$'?
//! atom    := piece '*'?
//! piece   := '.' | literal | '\' escaped | bracket | '\(' pattern '\)' | '\N'
//! bracket := '[' '^'? item+ ']'    item := class | range | char
//! class   := '[:' name ':]'
//! ```
//!
//! BRE quirks implemented: `^` is an anchor only as the first character and
//! `$` only as the last (literals elsewhere); `*` as the first character is
//! a literal; `]` first inside a bracket is a literal; `-` first or last in
//! a bracket is a literal.

use std::fmt;

/// A parse failure, with the byte offset of the offending character.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte position in the pattern.
    pub pos: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "regex parse error at byte {}: {}",
            self.pos, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// One element of a bracket expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClassItem {
    /// A single character.
    Char(char),
    /// An inclusive character range `a-z`.
    Range(char, char),
    /// A named POSIX class, e.g. `[:punct:]`.
    Posix(PosixClass),
}

/// Named POSIX character classes appearing in the corpus.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PosixClass {
    Alpha,
    Digit,
    Alnum,
    Upper,
    Lower,
    Punct,
    Space,
}

impl PosixClass {
    pub(crate) fn contains(self, c: char) -> bool {
        match self {
            PosixClass::Alpha => c.is_ascii_alphabetic(),
            PosixClass::Digit => c.is_ascii_digit(),
            PosixClass::Alnum => c.is_ascii_alphanumeric(),
            PosixClass::Upper => c.is_ascii_uppercase(),
            PosixClass::Lower => c.is_ascii_lowercase(),
            PosixClass::Punct => c.is_ascii_punctuation(),
            PosixClass::Space => c == ' ' || ('\t'..='\r').contains(&c),
        }
    }

    /// Representative members, used by the sampler.
    pub(crate) fn members(self) -> &'static [char] {
        match self {
            PosixClass::Alpha => &['a', 'b', 'q', 'Z', 'M'],
            PosixClass::Digit => &['0', '1', '5', '9'],
            PosixClass::Alnum => &['a', 'Z', '3'],
            PosixClass::Upper => &['A', 'Q', 'Z'],
            PosixClass::Lower => &['a', 'q', 'z'],
            PosixClass::Punct => &['!', '.', ';', '-'],
            PosixClass::Space => &[' ', '\t'],
        }
    }

    fn from_name(name: &str) -> Option<PosixClass> {
        Some(match name {
            "alpha" => PosixClass::Alpha,
            "digit" => PosixClass::Digit,
            "alnum" => PosixClass::Alnum,
            "upper" => PosixClass::Upper,
            "lower" => PosixClass::Lower,
            "punct" => PosixClass::Punct,
            "space" => PosixClass::Space,
            _ => return None,
        })
    }
}

/// A single matchable unit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Piece {
    /// A literal character.
    Literal(char),
    /// `.` — any character except newline.
    AnyChar,
    /// A bracket expression; `negated` for `[^...]`.
    Class {
        negated: bool,
        items: Vec<ClassItem>,
    },
    /// `\(..\)` capture group, with its 1-based index.
    Group(usize, Box<Ast>),
    /// `\N` backreference to group N.
    Backref(usize),
}

/// A piece plus its quantifier.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Atom {
    pub piece: Piece,
    /// True when followed by `*` (zero or more repetitions).
    pub star: bool,
}

/// A parsed pattern: optional anchors around a sequence of atoms.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Ast {
    pub anchored_start: bool,
    pub anchored_end: bool,
    pub atoms: Vec<Atom>,
}

struct Parser<'a> {
    chars: Vec<char>,
    pos: usize,
    group_count: usize,
    pattern: &'a str,
}

/// Parses a BRE pattern into an [`Ast`].
pub fn parse(pattern: &str) -> Result<Ast, ParseError> {
    let mut p = Parser {
        chars: pattern.chars().collect(),
        pos: 0,
        group_count: 0,
        pattern,
    };
    let ast = p.parse_sequence(true)?;
    if p.pos != p.chars.len() {
        return Err(p.err("unbalanced group close"));
    }
    Ok(ast)
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            pos: self.pos.min(self.pattern.len()),
            message: message.to_owned(),
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    /// Parses a sequence of atoms until end of pattern or `\)`.
    /// `top_level` controls anchor interpretation.
    fn parse_sequence(&mut self, top_level: bool) -> Result<Ast, ParseError> {
        let mut ast = Ast::default();
        if top_level && self.peek() == Some('^') {
            ast.anchored_start = true;
            self.pos += 1;
        }
        loop {
            match self.peek() {
                None => break,
                Some('\\') if self.chars.get(self.pos + 1) == Some(&')') => break,
                Some('$') if top_level && self.pos + 1 == self.chars.len() => {
                    ast.anchored_end = true;
                    self.pos += 1;
                    break;
                }
                Some(_) => {
                    let piece = self.parse_piece(ast.atoms.is_empty() && !ast.anchored_start)?;
                    let star = if self.peek() == Some('*') {
                        self.pos += 1;
                        true
                    } else {
                        false
                    };
                    ast.atoms.push(Atom { piece, star });
                }
            }
        }
        Ok(ast)
    }

    fn parse_piece(&mut self, first: bool) -> Result<Piece, ParseError> {
        let c = self.bump().ok_or_else(|| self.err("unexpected end"))?;
        Ok(match c {
            '.' => Piece::AnyChar,
            '[' => self.parse_bracket()?,
            '*' if first => Piece::Literal('*'), // BRE: leading '*' is literal
            '\\' => {
                let e = self.bump().ok_or_else(|| self.err("dangling backslash"))?;
                match e {
                    '(' => {
                        self.group_count += 1;
                        let idx = self.group_count;
                        let inner = self.parse_sequence(false)?;
                        // consume "\)"
                        if self.bump() != Some('\\') || self.bump() != Some(')') {
                            return Err(self.err("unterminated group"));
                        }
                        Piece::Group(idx, Box::new(inner))
                    }
                    '1'..='9' => {
                        let idx = e.to_digit(10).unwrap() as usize;
                        if idx > self.group_count {
                            return Err(self.err("backreference to undefined group"));
                        }
                        Piece::Backref(idx)
                    }
                    'n' => Piece::Literal('\n'),
                    't' => Piece::Literal('\t'),
                    's' => Piece::Class {
                        // GNU extension used by some scripts: \s = blank.
                        negated: false,
                        items: vec![ClassItem::Posix(PosixClass::Space)],
                    },
                    other => Piece::Literal(other),
                }
            }
            other => Piece::Literal(other),
        })
    }

    fn parse_bracket(&mut self) -> Result<Piece, ParseError> {
        let negated = if self.peek() == Some('^') {
            self.pos += 1;
            true
        } else {
            false
        };
        let mut items = Vec::new();
        // ']' immediately after '[' or '[^' is a literal.
        if self.peek() == Some(']') {
            items.push(ClassItem::Char(']'));
            self.pos += 1;
        }
        loop {
            let c = self
                .bump()
                .ok_or_else(|| self.err("unterminated bracket expression"))?;
            match c {
                ']' => break,
                '[' if self.peek() == Some(':') => {
                    // POSIX class [:name:]
                    self.pos += 1; // ':'
                    let start = self.pos;
                    while let Some(c) = self.peek() {
                        if c == ':' {
                            break;
                        }
                        self.pos += 1;
                    }
                    let name: String = self.chars[start..self.pos].iter().collect();
                    if self.bump() != Some(':') || self.bump() != Some(']') {
                        return Err(self.err("unterminated POSIX class"));
                    }
                    let class = PosixClass::from_name(&name)
                        .ok_or_else(|| self.err("unknown POSIX class"))?;
                    items.push(ClassItem::Posix(class));
                }
                lo => {
                    // Possible range lo-hi, unless '-' is last before ']'.
                    if self.peek() == Some('-')
                        && self.chars.get(self.pos + 1).is_some_and(|&c| c != ']')
                    {
                        self.pos += 1; // '-'
                        let hi = self.bump().ok_or_else(|| self.err("unterminated range"))?;
                        if hi < lo {
                            return Err(self.err("reversed character range"));
                        }
                        items.push(ClassItem::Range(lo, hi));
                    } else {
                        items.push(ClassItem::Char(lo));
                    }
                }
            }
        }
        if items.is_empty() {
            return Err(self.err("empty bracket expression"));
        }
        Ok(Piece::Class { negated, items })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_plain_literal() {
        let ast = parse("abc").unwrap();
        assert_eq!(ast.atoms.len(), 3);
        assert!(!ast.anchored_start && !ast.anchored_end);
    }

    #[test]
    fn parses_anchors() {
        let ast = parse("^ab$").unwrap();
        assert!(ast.anchored_start && ast.anchored_end);
        assert_eq!(ast.atoms.len(), 2);
    }

    #[test]
    fn parses_star() {
        let ast = parse("ab*").unwrap();
        assert!(!ast.atoms[0].star);
        assert!(ast.atoms[1].star);
    }

    #[test]
    fn parses_group_with_index() {
        let ast = parse("\\(a\\)\\1").unwrap();
        match &ast.atoms[0].piece {
            Piece::Group(1, inner) => assert_eq!(inner.atoms.len(), 1),
            other => panic!("expected group, got {other:?}"),
        }
        assert_eq!(ast.atoms[1].piece, Piece::Backref(1));
    }

    #[test]
    fn rejects_forward_backref() {
        assert!(parse("\\1").is_err());
    }

    #[test]
    fn rejects_unterminated_bracket() {
        assert!(parse("[abc").is_err());
        assert!(parse("[a-").is_err());
    }

    #[test]
    fn rejects_unknown_posix_class() {
        assert!(parse("[[:bogus:]]").is_err());
    }

    #[test]
    fn nested_groups_number_in_order() {
        let ast = parse("\\(a\\(b\\)\\)").unwrap();
        match &ast.atoms[0].piece {
            Piece::Group(1, inner) => match &inner.atoms[1].piece {
                Piece::Group(2, _) => {}
                other => panic!("expected inner group 2, got {other:?}"),
            },
            other => panic!("expected outer group, got {other:?}"),
        }
    }

    #[test]
    fn dollar_inside_is_literal() {
        let ast = parse("a$b").unwrap();
        assert_eq!(ast.atoms[1].piece, Piece::Literal('$'));
        assert!(!ast.anchored_end);
    }
}
