//! Backtracking execution of parsed BRE patterns.
//!
//! A continuation-passing backtracker: each piece matcher receives the
//! current position and a continuation to invoke on every way it can match.
//! Greedy `*` tries the longest repetition first, so the first accepted
//! match is the greedy one — the behaviour `grep`/`sed` users expect for the
//! corpus patterns. Captures live in a `RefCell` so the continuations can
//! record and roll back group spans during backtracking.

use crate::parse::{Ast, Atom, ClassItem, Piece};
use std::cell::RefCell;

type Caps = RefCell<Vec<Option<(usize, usize)>>>;

struct Ctx<'a> {
    text: &'a [char],
    ci: bool,
    caps: Caps,
}

impl<'a> Ctx<'a> {
    fn eq_char(&self, a: char, b: char) -> bool {
        if self.ci {
            a.eq_ignore_ascii_case(&b)
        } else {
            a == b
        }
    }

    fn class_contains(&self, negated: bool, items: &[ClassItem], c: char) -> bool {
        let mut inside = false;
        for item in items {
            let hit = match item {
                ClassItem::Char(x) => self.eq_char(c, *x),
                ClassItem::Range(lo, hi) => {
                    if self.ci {
                        let cl = c.to_ascii_lowercase();
                        let cu = c.to_ascii_uppercase();
                        (*lo..=*hi).contains(&cl) || (*lo..=*hi).contains(&cu)
                    } else {
                        (*lo..=*hi).contains(&c)
                    }
                }
                ClassItem::Posix(p) => {
                    if self.ci {
                        p.contains(c.to_ascii_lowercase()) || p.contains(c.to_ascii_uppercase())
                    } else {
                        p.contains(c)
                    }
                }
            };
            if hit {
                inside = true;
                break;
            }
        }
        inside != negated
    }

    fn piece_match(&self, piece: &Piece, pos: usize, k: &mut dyn FnMut(usize) -> bool) -> bool {
        match piece {
            Piece::Literal(c) => {
                if pos < self.text.len() && self.eq_char(self.text[pos], *c) {
                    k(pos + 1)
                } else {
                    false
                }
            }
            Piece::AnyChar => {
                if pos < self.text.len() && self.text[pos] != '\n' {
                    k(pos + 1)
                } else {
                    false
                }
            }
            Piece::Class { negated, items } => {
                if pos < self.text.len() && self.class_contains(*negated, items, self.text[pos]) {
                    k(pos + 1)
                } else {
                    false
                }
            }
            Piece::Backref(idx) => {
                let span = self.caps.borrow()[*idx - 1];
                match span {
                    Some((s, e)) => {
                        let len = e - s;
                        if pos + len <= self.text.len()
                            && (0..len).all(|i| self.eq_char(self.text[pos + i], self.text[s + i]))
                        {
                            k(pos + len)
                        } else {
                            false
                        }
                    }
                    // POSIX: a backreference to a group that has not
                    // participated in the match fails.
                    None => false,
                }
            }
            Piece::Group(idx, inner) => self.seq_match(&inner.atoms, 0, pos, &mut |p| {
                let old = self.caps.borrow()[*idx - 1];
                self.caps.borrow_mut()[*idx - 1] = Some((pos, p));
                if k(p) {
                    true
                } else {
                    self.caps.borrow_mut()[*idx - 1] = old;
                    false
                }
            }),
        }
    }

    fn star_match(&self, piece: &Piece, pos: usize, k: &mut dyn FnMut(usize) -> bool) -> bool {
        // Greedy: attempt one more repetition first (progress required to
        // avoid infinite recursion on nullable pieces), then fall back.
        if self.piece_match(piece, pos, &mut |p| p > pos && self.star_match(piece, p, k)) {
            return true;
        }
        k(pos)
    }

    fn seq_match(
        &self,
        atoms: &[Atom],
        i: usize,
        pos: usize,
        k: &mut dyn FnMut(usize) -> bool,
    ) -> bool {
        match atoms.get(i) {
            None => k(pos),
            Some(atom) => {
                if atom.star {
                    self.star_match(&atom.piece, pos, &mut |p| {
                        self.seq_match(atoms, i + 1, p, k)
                    })
                } else {
                    self.piece_match(&atom.piece, pos, &mut |p| {
                        self.seq_match(atoms, i + 1, p, k)
                    })
                }
            }
        }
    }
}

fn count_groups(ast: &Ast) -> usize {
    fn walk(atoms: &[Atom], max: &mut usize) {
        for a in atoms {
            if let Piece::Group(idx, inner) = &a.piece {
                *max = (*max).max(*idx);
                walk(&inner.atoms, max);
            }
        }
    }
    let mut max = 0;
    walk(&ast.atoms, &mut max);
    max
}

/// A successful match: char-index span plus group capture spans.
pub(crate) struct MatchResult {
    pub start: usize,
    pub end: usize,
    pub caps: Vec<Option<(usize, usize)>>,
}

pub(crate) fn search_chars(ast: &Ast, text: &[char], ci: bool) -> Option<MatchResult> {
    let ngroups = count_groups(ast);
    let starts: Box<dyn Iterator<Item = usize>> = if ast.anchored_start {
        Box::new(std::iter::once(0))
    } else {
        Box::new(0..=text.len())
    };
    for start in starts {
        let ctx = Ctx {
            text,
            ci,
            caps: RefCell::new(vec![None; ngroups]),
        };
        let mut matched_end = None;
        let anchored_end = ast.anchored_end;
        ctx.seq_match(&ast.atoms, 0, start, &mut |p| {
            if anchored_end && p != text.len() {
                return false;
            }
            matched_end = Some(p);
            true
        });
        if let Some(end) = matched_end {
            return Some(MatchResult {
                start,
                end,
                caps: ctx.caps.into_inner(),
            });
        }
    }
    None
}

/// Searches `line`, returning the byte range of the leftmost match.
pub(crate) fn search(ast: &Ast, line: &str, ci: bool) -> Option<(usize, usize)> {
    let chars: Vec<char> = line.chars().collect();
    let m = search_chars(ast, &chars, ci)?;
    // Convert char indices back to byte offsets.
    let mut byte_offsets: Vec<usize> = Vec::with_capacity(chars.len() + 1);
    let mut off = 0;
    for c in &chars {
        byte_offsets.push(off);
        off += c.len_utf8();
    }
    byte_offsets.push(off);
    Some((byte_offsets[m.start], byte_offsets[m.end]))
}

fn expand_replacement(template: &str, text: &[char], m: &MatchResult, out: &mut String) {
    let mut it = template.chars().peekable();
    while let Some(c) = it.next() {
        match c {
            '&' => out.extend(&text[m.start..m.end]),
            '\\' => match it.next() {
                Some(d @ '1'..='9') => {
                    let idx = d.to_digit(10).unwrap() as usize;
                    if let Some(Some((s, e))) = m.caps.get(idx - 1) {
                        out.extend(&text[*s..*e]);
                    }
                }
                Some('n') => out.push('\n'),
                Some('t') => out.push('\t'),
                Some(other) => out.push(other),
                None => out.push('\\'),
            },
            other => out.push(other),
        }
    }
}

/// Implements `sed`-style substitution over a single line.
pub(crate) fn replace(ast: &Ast, line: &str, template: &str, global: bool, ci: bool) -> String {
    let chars: Vec<char> = line.chars().collect();
    let mut out = String::with_capacity(line.len());
    let mut pos = 0usize;
    loop {
        let rest = &chars[pos..];
        let Some(m) = search_chars(ast, rest, ci) else {
            out.extend(&chars[pos..]);
            break;
        };
        // For anchored-start patterns a match is only valid at pos == 0 of
        // the remaining text when pos == 0 overall (e.g. 's/^/p/' fires once).
        if ast.anchored_start && pos > 0 {
            out.extend(&chars[pos..]);
            break;
        }
        let (abs_start, abs_end) = (pos + m.start, pos + m.end);
        out.extend(&chars[pos..abs_start]);
        let shifted = MatchResult {
            start: abs_start,
            end: abs_end,
            caps: m
                .caps
                .iter()
                .map(|c| c.map(|(s, e)| (s + pos, e + pos)))
                .collect(),
        };
        expand_replacement(template, &chars, &shifted, &mut out);
        if !global {
            out.extend(&chars[abs_end..]);
            break;
        }
        if abs_end == pos + m.start && abs_end == abs_start {
            // Empty match: copy one char forward to guarantee progress.
            if abs_end < chars.len() {
                out.push(chars[abs_end]);
                pos = abs_end + 1;
            } else {
                break;
            }
        } else {
            pos = abs_end;
        }
        if pos > chars.len() {
            break;
        }
        if pos == chars.len() && !ast.anchored_end {
            // One final empty-position match opportunity only for patterns
            // that can match empty; search above will handle it next loop.
        }
        if pos >= chars.len() {
            // Allow one trailing empty match (e.g. 's/x*/-/g' on "ab" ends
            // with "-a-b-").
            if let Some(m2) = search_chars(ast, &[], ci) {
                if m2.start == 0 && m2.end == 0 && !ast.anchored_start {
                    let shifted = MatchResult {
                        start: chars.len(),
                        end: chars.len(),
                        caps: m2.caps,
                    };
                    expand_replacement(template, &chars, &shifted, &mut out);
                }
            }
            break;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;

    fn find(pat: &str, s: &str) -> Option<(usize, usize)> {
        search(&parse(pat).unwrap(), s, false)
    }

    #[test]
    fn greedy_star_longest() {
        assert_eq!(find("a*", "aaab"), Some((0, 3)));
    }

    #[test]
    fn leftmost_match_wins() {
        assert_eq!(find("ab", "xxabyyab"), Some((2, 4)));
    }

    #[test]
    fn backref_backtracking() {
        // Group must backtrack to a shorter capture for \1 to match.
        assert!(find("\\(a*\\)b\\1", "aabaa").is_some());
    }

    #[test]
    fn anchored_end_forces_full_suffix() {
        assert_eq!(find("ab$", "abab"), Some((2, 4)));
        assert_eq!(find("ab$", "abx"), None);
    }

    #[test]
    fn utf8_byte_offsets() {
        // Multibyte characters before the match must not corrupt offsets.
        let (s, e) = find("b", "émfbx").unwrap();
        assert_eq!(&"émfbx"[s..e], "b");
    }

    #[test]
    fn replace_with_group_shift() {
        // Replacement after a prefix exercises capture-offset shifting.
        let ast = parse("b\\(c\\)").unwrap();
        assert_eq!(replace(&ast, "aabcd", "[\\1]", false, false), "aa[c]d");
    }

    #[test]
    fn global_replace_nonoverlapping() {
        let ast = parse("aa").unwrap();
        assert_eq!(replace(&ast, "aaaa", "-", true, false), "--");
    }
}
