//! A from-scratch POSIX Basic Regular Expression (BRE) engine.
//!
//! The KumQuat benchmark corpus uses `grep`/`sed` with BRE patterns —
//! literals, `.`, `*`, bracket expressions (ranges, negation, POSIX classes
//! such as `[:punct:]`), anchors, `\(..\)` groups, and backreferences
//! (`nfa-regex.sh` uses `\(.\).*\1\(.\).*\2...`). Backreferences make the
//! language non-regular, so the engine is a classic backtracking matcher —
//! perfectly adequate for the short lines these pipelines process.
//!
//! Beyond matching, KumQuat's *preprocessing* step (paper §3.2) extracts
//! regexes from commands and generates dictionaries of strings that match
//! them; [`Regex::sample`] implements that generator.
//!
//! ```
//! use kq_pattern::Regex;
//!
//! let re = Regex::new(r"li\(.\)ht.*\1").unwrap();   // backreference
//! assert!(re.is_match("light night: g again"));
//! assert!(!re.is_match("light"));
//! ```

#![deny(unsafe_code)]
#![warn(missing_docs)]

mod exec;
mod parse;
mod sample;

pub use parse::ParseError;

use parse::Ast;
use rand::Rng;

/// A compiled Basic Regular Expression.
#[derive(Debug, Clone)]
pub struct Regex {
    ast: Ast,
    case_insensitive: bool,
    pattern: String,
}

impl Regex {
    /// Compiles a BRE pattern.
    pub fn new(pattern: &str) -> Result<Regex, ParseError> {
        Ok(Regex {
            ast: parse::parse(pattern)?,
            case_insensitive: false,
            pattern: pattern.to_owned(),
        })
    }

    /// Compiles a BRE pattern that matches case-insensitively (`grep -i`).
    pub fn new_case_insensitive(pattern: &str) -> Result<Regex, ParseError> {
        Ok(Regex {
            ast: parse::parse(pattern)?,
            case_insensitive: true,
            pattern: pattern.to_owned(),
        })
    }

    /// The source pattern this regex was compiled from.
    pub fn pattern(&self) -> &str {
        &self.pattern
    }

    /// Search semantics: true when the pattern matches anywhere in `line`
    /// (`grep` applies this per line; `line` must not contain `'\n'`).
    pub fn is_match(&self, line: &str) -> bool {
        self.find(line).is_some()
    }

    /// Returns the byte range of the leftmost match, if any.
    pub fn find(&self, line: &str) -> Option<(usize, usize)> {
        exec::search(&self.ast, line, self.case_insensitive)
    }

    /// Replaces the first match in `line` with `replacement`. The
    /// replacement string supports `&` (whole match) and `\1`..`\9` (group
    /// captures), as in `sed s///`.
    pub fn replace_first(&self, line: &str, replacement: &str) -> String {
        exec::replace(&self.ast, line, replacement, false, self.case_insensitive)
    }

    /// Replaces every non-overlapping match (`sed s///g`).
    pub fn replace_all(&self, line: &str, replacement: &str) -> String {
        exec::replace(&self.ast, line, replacement, true, self.case_insensitive)
    }

    /// Generates a random string that matches this pattern — the dictionary
    /// generator used by KumQuat preprocessing. `star_max` bounds the number
    /// of repetitions sampled for each `*`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R, star_max: usize) -> String {
        sample::sample(&self.ast, rng, star_max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::SeedableRng;

    fn m(pat: &str, s: &str) -> bool {
        Regex::new(pat).unwrap().is_match(s)
    }

    #[test]
    fn literal_search() {
        assert!(m("light", "daylight saving"));
        assert!(!m("light", "dark"));
        assert!(m("", "anything")); // empty pattern matches everywhere
    }

    #[test]
    fn dot_and_star() {
        assert!(m("light.light", "lightXlight"));
        assert!(!m("light.light", "lightlight")); // '.' needs one char
        assert!(m("light.*light", "lightlight"));
        assert!(m("light.*light", "light of the moonlight"));
        assert!(!m("a*b", "ccc"));
        assert!(m("a*b", "b")); // zero reps
    }

    #[test]
    fn anchors() {
        assert!(m("^abc", "abcdef"));
        assert!(!m("^abc", "xabc"));
        assert!(m("abc$", "xxabc"));
        assert!(!m("abc$", "abcx"));
        assert!(m("^$", ""));
        assert!(!m("^$", "x"));
        assert!(m("^....$", "four"));
        assert!(!m("^....$", "three"));
    }

    #[test]
    fn caret_dollar_literal_in_middle() {
        // In BRE, '$' not at the end and '^' not at the start are literals.
        assert!(m("a$b", "a$b"));
        assert!(m("a^b", "a^b"));
    }

    #[test]
    fn bracket_expressions() {
        assert!(m("[abc]", "xbx"));
        assert!(!m("[abc]", "xyz"));
        assert!(m("[a-z]", "M3g"));
        assert!(!m("[a-z]", "M3G"));
        assert!(m("[^a-z]", "abcX"));
        assert!(!m("[^a-z]", "abc"));
        assert!(m("^[A-Z]", "Zebra"));
        assert!(!m("^[A-Z]", "zebra"));
    }

    #[test]
    fn bracket_special_positions() {
        assert!(m("[]a]", "]")); // ']' first is literal
        assert!(m("[a-]", "-")); // '-' last is literal
        assert!(m("[-a]", "-")); // '-' first is literal
    }

    #[test]
    fn posix_classes() {
        assert!(m("[[:punct:]]", "hi!"));
        assert!(!m("[[:punct:]]", "hi"));
        assert!(m("[[:upper:]]", "aBc"));
        assert!(m("[[:digit:]]", "x9"));
        assert!(m("[^[:digit:]]", "12a"));
        assert!(!m("[^[:digit:]]", "123"));
    }

    #[test]
    fn vowel_syllable_patterns() {
        // poets 6_4/6_5 patterns.
        let one = Regex::new_case_insensitive("^[^aeiou]*[aeiou][^aeiou]*$").unwrap();
        assert!(one.is_match("cat"));
        assert!(one.is_match("A"));
        assert!(!one.is_match("idea"));
        let two =
            Regex::new_case_insensitive("^[^aeiou]*[aeiou][^aeiou]*[aeiou][^aeiou]$").unwrap();
        assert!(two.is_match("pilot"));
        assert!(!two.is_match("cat"));
    }

    #[test]
    fn groups_and_backrefs() {
        assert!(m("\\(ab\\)\\1", "abab"));
        assert!(!m("\\(ab\\)\\1", "abba"));
        // The nfa-regex.sh pattern: four pairwise-repeated characters in
        // order (each character reappears before the next pair begins).
        let pat = "\\(.\\).*\\1\\(.\\).*\\2\\(.\\).*\\3\\(.\\).*\\4";
        assert!(m(pat, "aabbccdd"));
        assert!(m(pat, "Xa..aPQQP zz 11")); // a(1,4) Q(6,7) z(10,11) 1(13,14)
        assert!(!m(pat, "abcdefgh"));
        assert!(!m(pat, "abcdabcd")); // second 'b' never reappears after \1
    }

    #[test]
    fn escaped_metacharacters() {
        assert!(m("a\\.b", "a.b"));
        assert!(!m("a\\.b", "axb"));
        assert!(m("\\.", "end."));
        assert!(m("a\\*b", "a*b")); // escaped star is literal
    }

    #[test]
    fn star_is_literal_at_start() {
        assert!(m("*x", "*x"));
    }

    #[test]
    fn case_insensitive() {
        let re = Regex::new_case_insensitive("[aeiou]").unwrap();
        assert!(re.is_match("XYZA"));
        assert!(!re.is_match("XYZ"));
        let re = Regex::new_case_insensitive("bell").unwrap();
        assert!(re.is_match("BELL labs"));
    }

    #[test]
    fn plus_is_rejected_as_bre() {
        // '+' is an ERE quantifier; in our BRE subset it is a literal, so
        // "b+" matches the literal text "b+".
        assert!(m("b+", "ab+c"));
        assert!(!m("b+", "bbb"));
    }

    #[test]
    fn find_leftmost() {
        let re = Regex::new("bb*").unwrap();
        assert_eq!(re.find("abbbc"), Some((1, 4)));
        assert_eq!(re.find("x"), None);
    }

    #[test]
    fn replace_first_and_all() {
        let re = Regex::new("o").unwrap();
        assert_eq!(re.replace_first("foo", "0"), "f0o");
        assert_eq!(re.replace_all("foo", "0"), "f00");
        // sed 's/$/0s/' appends at end of line.
        let re = Regex::new("$").unwrap();
        assert_eq!(re.replace_first("197", "0s"), "1970s");
        // Group reference in the replacement.
        let re = Regex::new("T\\(..\\):..:..").unwrap();
        assert_eq!(
            re.replace_first("2020-01-01T08:15:59,v1", ",\\1"),
            "2020-01-01,08,v1"
        );
        // '&' inserts the whole match.
        let re = Regex::new("ab").unwrap();
        assert_eq!(re.replace_first("xaby", "<&>"), "x<ab>y");
    }

    #[test]
    fn replace_all_empty_match_advances() {
        // 's/x*/-/g' on "ab" must not loop forever.
        let re = Regex::new("x*").unwrap();
        assert_eq!(re.replace_all("ab", "-"), "-a-b-");
    }

    #[test]
    fn anchored_replace_start() {
        // sed "s;^;/books/;" prepends a prefix.
        let re = Regex::new("^").unwrap();
        assert_eq!(re.replace_first("pg100.txt", "/books/"), "/books/pg100.txt");
    }

    #[test]
    fn sampler_produces_matching_strings() {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(42);
        for pat in [
            "light.light",
            "light.*light",
            "^[A-Z][a-z]*$",
            "[0-9][0-9]*",
            "the land of",
            "\\(ab\\)\\1",
            "[[:punct:]]x",
        ] {
            let re = Regex::new(pat).unwrap();
            for _ in 0..50 {
                let s = re.sample(&mut rng, 3);
                assert!(re.is_match(&s), "pattern {pat:?} sample {s:?}");
                assert!(!s.contains('\n'));
            }
        }
    }

    proptest! {
        #[test]
        fn prop_sample_always_matches(seed in 0u64..500) {
            let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
            let pats = ["a[bc]*d", "^x.y$", "[^ ]*", "q\\(.\\)\\1"];
            for pat in pats {
                let re = Regex::new(pat).unwrap();
                let s = re.sample(&mut rng, 4);
                prop_assert!(re.is_match(&s), "pattern {} sample {:?}", pat, s);
            }
        }

        #[test]
        fn prop_literal_pattern_matches_itself(s in "[a-z]{1,12}") {
            prop_assert!(m(&s, &s));
        }

        #[test]
        fn prop_star_absorbs_repeats(n in 0usize..8) {
            let hay = format!("x{}y", "a".repeat(n));
            prop_assert!(m("xa*y", &hay));
        }
    }
}
