//! Generation of random strings matching a parsed pattern.
//!
//! KumQuat's preprocessing (paper §3.2, "Preprocessing") extracts regexes
//! such as `light.light` from commands like `grep` and builds a dictionary
//! of matching strings so that generated inputs exercise the command's
//! matching path (otherwise e.g. `grep -c` would only ever output zero and
//! the `add` combiner could never be validated). This module walks the AST
//! and emits one matching string per call.

use crate::parse::{Ast, Atom, ClassItem, Piece};
use rand::Rng;

/// Characters used for `.`, and as the candidate pool for negated classes.
const ALPHABET: &[char] = &[
    'a', 'b', 'c', 'd', 'e', 'g', 'k', 'm', 'p', 'r', 's', 't', 'u', 'w', 'x', 'z', 'A', 'B', 'K',
    'Q', 'R', 'N', '1', '3', '7', '9', '.', '!', '-',
];

struct Sampler<'r, R: Rng + ?Sized> {
    rng: &'r mut R,
    star_max: usize,
    groups: Vec<String>,
}

/// Samples a string matching `ast`. `star_max` bounds `*` repetitions.
pub fn sample<R: Rng + ?Sized>(ast: &Ast, rng: &mut R, star_max: usize) -> String {
    let ngroups = max_group(ast);
    let mut s = Sampler {
        rng,
        star_max,
        groups: vec![String::new(); ngroups],
    };
    let mut out = String::new();
    s.emit_seq(&ast.atoms, &mut out);
    out
}

fn max_group(ast: &Ast) -> usize {
    fn walk(atoms: &[Atom], max: &mut usize) {
        for a in atoms {
            if let Piece::Group(idx, inner) = &a.piece {
                *max = (*max).max(*idx);
                walk(&inner.atoms, max);
            }
        }
    }
    let mut max = 0;
    walk(&ast.atoms, &mut max);
    max
}

impl<R: Rng + ?Sized> Sampler<'_, R> {
    fn emit_seq(&mut self, atoms: &[Atom], out: &mut String) {
        for atom in atoms {
            let reps = if atom.star {
                self.rng.gen_range(0..=self.star_max)
            } else {
                1
            };
            for _ in 0..reps {
                self.emit_piece(&atom.piece, out);
            }
        }
    }

    fn emit_piece(&mut self, piece: &Piece, out: &mut String) {
        match piece {
            Piece::Literal(c) => out.push(*c),
            Piece::AnyChar => out.push(ALPHABET[self.rng.gen_range(0..ALPHABET.len())]),
            Piece::Class { negated, items } => out.push(self.pick_class(*negated, items)),
            Piece::Group(idx, inner) => {
                let mut part = String::new();
                self.emit_seq(&inner.atoms, &mut part);
                out.push_str(&part);
                self.groups[*idx - 1] = part;
            }
            Piece::Backref(idx) => {
                let text = self.groups[*idx - 1].clone();
                out.push_str(&text);
            }
        }
    }

    fn pick_class(&mut self, negated: bool, items: &[ClassItem]) -> char {
        if !negated {
            let item = &items[self.rng.gen_range(0..items.len())];
            match item {
                ClassItem::Char(c) => *c,
                ClassItem::Range(lo, hi) => {
                    let span = (*hi as u32) - (*lo as u32) + 1;
                    char::from_u32(*lo as u32 + self.rng.gen_range(0..span)).unwrap_or(*lo)
                }
                ClassItem::Posix(p) => {
                    let members = p.members();
                    members[self.rng.gen_range(0..members.len())]
                }
            }
        } else {
            let excluded = |c: char| {
                items.iter().any(|item| match item {
                    ClassItem::Char(x) => c == *x,
                    ClassItem::Range(lo, hi) => (*lo..=*hi).contains(&c),
                    ClassItem::Posix(p) => p.contains(c),
                })
            };
            let start = self.rng.gen_range(0..ALPHABET.len());
            for off in 0..ALPHABET.len() {
                let c = ALPHABET[(start + off) % ALPHABET.len()];
                if !excluded(c) && c != '\n' {
                    return c;
                }
            }
            // Every candidate excluded; fall back to an unusual but
            // printable character outside the pools above.
            '~'
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::Regex;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn sample_negated_class_avoids_members() {
        let re = Regex::new("[^a-z]").unwrap();
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            let s = re.sample(&mut rng, 2);
            assert_eq!(s.chars().count(), 1);
            assert!(!s.chars().next().unwrap().is_ascii_lowercase(), "{s:?}");
        }
    }

    #[test]
    fn sample_backref_repeats_group() {
        let re = Regex::new("\\(..\\)-\\1").unwrap();
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..50 {
            let s = re.sample(&mut rng, 2);
            let bytes: Vec<char> = s.chars().collect();
            assert_eq!(bytes.len(), 5);
            assert_eq!(bytes[0], bytes[3]);
            assert_eq!(bytes[1], bytes[4]);
            assert_eq!(bytes[2], '-');
        }
    }

    #[test]
    fn sample_star_respects_bound() {
        let re = Regex::new("a*").unwrap();
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..100 {
            let s = re.sample(&mut rng, 3);
            assert!(s.len() <= 3, "{s:?}");
        }
    }

    #[test]
    fn sample_ranges_stay_in_range() {
        let re = Regex::new("[f-k][0-3]").unwrap();
        let mut rng = SmallRng::seed_from_u64(11);
        for _ in 0..100 {
            let s = re.sample(&mut rng, 2);
            let cs: Vec<char> = s.chars().collect();
            assert!(('f'..='k').contains(&cs[0]));
            assert!(('0'..='3').contains(&cs[1]));
        }
    }
}
