//! # KumQuat — automatic synthesis of parallel Unix commands and pipelines
//!
//! A faithful Rust reproduction of the PPoPP 2022 paper *"Automatic
//! Synthesis of Parallel Unix Commands and Pipelines with KumQuat"* (Shen,
//! Rinard, Vasilakis).
//!
//! KumQuat takes a shell pipeline, treats every command `f` as a black
//! box, and automatically *synthesizes* the combiner `g` satisfying the
//! divide-and-conquer equation
//!
//! ```text
//! f(x1 ++ x2) = g(f(x1), f(x2))        for all input streams x1, x2
//! ```
//!
//! With combiners in hand it compiles the pipeline into a data-parallel
//! version: split the input into `w` line-aligned substreams, run `w`
//! instances of each command, and combine — eliminating intermediate
//! combiners where concatenation makes that sound (Theorem 5).
//!
//! ## Quick start
//!
//! ```
//! use kumquat::Kumquat;
//!
//! // Synthesize a combiner for one command.
//! let mut kq = Kumquat::new();
//! let report = kq.synthesize_command("wc -l").unwrap();
//! assert_eq!(
//!     report.combiner().unwrap().primary().to_string(),
//!     "((back '\\n' add) a b)"
//! );
//!
//! // Parallelize a whole pipeline and run it.
//! kq.write_file("/input.txt", "b\na\nb\nc\na\nb\n");
//! let run = kq
//!     .parallelize_and_run("cat /input.txt | sort | uniq -c", 4)
//!     .unwrap();
//! assert_eq!(run.output, "      2 a\n      3 b\n      1 c\n");
//! assert_eq!(run.parallelized, (2, 2)); // both stages parallelized
//! ```
//!
//! The heavy lifting lives in the sub-crates, re-exported here:
//! [`dsl`] (combiner language), [`synth`] (the synthesis algorithms),
//! [`pipeline`] (parsing/planning/execution), [`coreutils`] (the
//! in-process command substrate), [`pattern`] (the BRE engine), and
//! [`stream`] (the stream model).

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub use kq_coreutils as coreutils;
pub use kq_dsl as dsl;
pub use kq_pattern as pattern;
pub use kq_pipeline as pipeline;
pub use kq_stream as stream;
pub use kq_synth as synth;

use kq_coreutils::{CmdError, ExecContext};
use kq_pipeline::exec::{run_parallel, run_serial};
use kq_pipeline::parse::{parse_script, Script};
use kq_pipeline::plan::{PlannedScript, Planner};
use kq_synth::{SynthesisConfig, SynthesisReport};
use std::collections::HashMap;

/// The result of parallelizing and running a script.
#[derive(Debug)]
pub struct ParallelRun {
    /// The pipeline's output (verified equal to the serial output).
    pub output: String,
    /// `(parallelized, total)` stage counts.
    pub parallelized: (usize, usize),
    /// Intermediate combiners eliminated by the Theorem 5 optimization.
    pub eliminated: usize,
}

/// The top-level façade: an execution context (virtual filesystem), a
/// synthesis configuration, and a per-command combiner cache.
pub struct Kumquat {
    /// Execution context shared by probes, synthesis, and pipeline runs.
    pub ctx: ExecContext,
    config: SynthesisConfig,
    planner: Planner,
    env: HashMap<String, String>,
}

impl Kumquat {
    /// A fresh instance with default synthesis settings.
    pub fn new() -> Kumquat {
        Kumquat::with_config(SynthesisConfig::default())
    }

    /// A fresh instance with explicit synthesis settings.
    pub fn with_config(config: SynthesisConfig) -> Kumquat {
        Kumquat {
            ctx: ExecContext::default(),
            planner: Planner::new(config.clone()),
            config,
            env: HashMap::new(),
        }
    }

    /// Writes a file into the virtual filesystem visible to pipelines.
    /// Accepts anything convertible to shared [`stream::Bytes`]; handing
    /// in a `Bytes` stores the slice without copying.
    pub fn write_file(&self, path: impl Into<String>, content: impl Into<kq_stream::Bytes>) {
        self.ctx.vfs.write(path, content);
    }

    /// Sets a shell variable for script parsing (`$IN` etc.).
    pub fn set_var(&mut self, name: impl Into<String>, value: impl Into<String>) {
        self.env.insert(name.into(), value.into());
    }

    /// Synthesizes a combiner for a single command line (Figure 2's middle
    /// box; Algorithm 1).
    pub fn synthesize_command(&mut self, command_line: &str) -> Result<SynthesisReport, CmdError> {
        let command = kq_coreutils::parse_command(command_line)?;
        Ok(kq_synth::synthesize(&command, &self.ctx, &self.config))
    }

    /// Parses a script against the configured variables.
    pub fn parse(&self, script_text: &str) -> Result<Script, CmdError> {
        parse_script(script_text, &self.env).map_err(CmdError::from)
    }

    /// Parses, plans, and executes a script with `workers`-way data
    /// parallelism, verifying the parallel output against the serial one.
    pub fn parallelize_and_run(
        &mut self,
        script_text: &str,
        workers: usize,
    ) -> Result<ParallelRun, CmdError> {
        let script = self.parse(script_text)?;
        let serial = run_serial(&script, &self.ctx)?;
        let plan = self.plan(&script)?;
        let parallel = run_parallel(&script, &plan, &self.ctx, workers, true)?;
        if parallel.output != serial.output {
            return Err(CmdError::new(
                "kumquat",
                "parallel output diverged from serial output (combiner bug)",
            ));
        }
        Ok(ParallelRun {
            output: parallel.output.into_string(),
            parallelized: plan.parallelized_counts(),
            eliminated: plan.eliminated_count(),
        })
    }

    /// Plans a parsed script (synthesizing combiners as needed).
    pub fn plan(&mut self, script: &Script) -> Result<PlannedScript, CmdError> {
        let sample = self.planning_sample(script)?;
        Ok(self.planner.plan(script, &self.ctx, &sample))
    }

    /// Synthesis reports accumulated so far (one per unique command).
    pub fn reports(&self) -> &[SynthesisReport] {
        &self.planner.reports
    }

    /// Unique commands whose combiner came from the static effect
    /// lattice instead of dynamic synthesis (no report is produced).
    pub fn lattice_short_circuits(&self) -> usize {
        self.planner.lattice_short_circuits
    }

    /// A sample of the script's own input for the planner's cost probes,
    /// falling back to generic text when the script has no file input.
    fn planning_sample(&self, script: &Script) -> Result<String, CmdError> {
        use kq_pipeline::parse::InputSource;
        for statement in &script.statements {
            if let InputSource::Files(files) = &statement.input {
                if let Some(content) = files.first().and_then(|f| self.ctx.vfs.read(f)) {
                    let cap = content.len().min(64 * 1024);
                    let mut sample = content[..cap].to_owned();
                    if !sample.ends_with('\n') {
                        sample.push('\n');
                    }
                    return Ok(sample);
                }
            }
        }
        Ok("the quick brown fox\njumps over the lazy dog\nthe end\n".repeat(30))
    }
}

impl Default for Kumquat {
    fn default() -> Self {
        Kumquat::new()
    }
}
