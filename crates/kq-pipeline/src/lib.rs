//! Pipeline parsing, parallelization planning, and execution.
//!
//! This crate implements the KumQuat workflow of Figure 2: parse a shell
//! script into pipelines ([`parse`]), synthesize a combiner per stage and
//! decide which stages parallelize ([`plan`] — including the Theorem 5
//! intermediate-combiner elimination and the §2 rerun-cost heuristic),
//! execute serially or with `w`-way data parallelism ([`exec`]), and
//! compute the virtual wall-clock times the paper's performance tables
//! report ([`sim`] — a measured-cost scheduler replaying per-piece
//! durations, the honest substitute for the paper's 80-core testbed on a
//! single-core host; see DESIGN.md).
//!
//! # The zero-copy data plane
//!
//! All executors move stream payloads as [`kq_stream::Bytes`] — refcounted
//! slices of shared buffers — rather than owned `String`s:
//!
//! * input gathering reads the virtual filesystem by refcount bump
//!   (multi-file inputs gather through a [`kq_stream::Rope`], one memcpy
//!   total);
//! * splitting a stage input into `w` substreams ([`exec::run_parallel`])
//!   or into load-balanced chunks ([`chunked::run_chunked`]) allocates
//!   O(pieces): each piece is a slice of the parent buffer, and worker
//!   threads receive it as an `Arc` clone;
//! * a stage whose combiner is eliminated (Theorem 5) forwards its
//!   substream *vector* to the next stage with zero copies;
//! * k-way `concat` combining gathers segments with at most one memcpy,
//!   and `> file` redirection stores the shared slice directly.
//!
//! Commands still allocate their own transformed output once (that's the
//! command's job); what the data plane eliminates is every copy *between*
//! stages. `crates/bench/benches/bytes_dataplane.rs` measures the
//! difference against the legacy copy-per-piece path.
//!
//! # The executor matrix
//!
//! Five executors share the data plane and produce byte-identical output
//! (asserted across the whole corpus by `tests/streaming_differential.rs`
//! and `tests/dataflow_differential.rs`); they differ in how work is
//! scheduled:
//!
//! | executor | parallelism | barriers | wins when |
//! |---|---|---|---|
//! | [`exec::run_serial`] | none | every stage | correctness baseline; tiny inputs |
//! | [`exec::run_parallel`] | `w` static pieces per stage | every segment | uniform per-line cost (the paper's executor) |
//! | [`chunked::run_chunked`] | many chunks over a `w`-thread pool | every segment | skewed per-line cost (dynamic balancing) |
//! | [`streaming::run_streaming`] | pool per segment, segments pipelined | only where a stage truly needs its whole input | multi-segment pipelines: chunk-local stages (`grep`/`tr`/`cut`) flow chunks onward immediately, and barrier stages (`sort`, `uniq -c`) fold their combiner *while upstream still computes* |
//! | [`scheduler::run_dataflow`] | one work-stealing pool of `w` threads for the *whole script* | graph properties, not thread boundaries | multi-statement scripts: every statement's [`dataflow`] graph shares the same fixed pool (no per-statement spawn/teardown), independent statements overlap, and early exit tears down queued upstream work |
//!
//! The streaming executor's segment classification (chunk-local versus
//! barrier versus sequential) lives in
//! [`plan::PlannedStatement::stream_segments`]; the dataflow executor
//! reifies the same classification as a graph IR ([`dataflow`]) and
//! executes it with a shared scheduler ([`scheduler`]).
//! `crates/bench/benches/streaming_exec.rs` measures streaming against
//! chunked on a multi-stage pipeline, and
//! `crates/bench/benches/dataflow_exec.rs` measures dataflow against
//! streaming on a multi-statement script.
//!
//! # Fold finalization protocol
//!
//! Both pipelined executors fold barrier-stage outputs incrementally, and
//! both must answer the same question without a central coordinator:
//! *who runs `finish()` when the last piece lands?* The streaming
//! executor answers structurally — each barrier has one collector thread,
//! and end-of-input is its result channel disconnecting. The dataflow
//! scheduler has no such thread: any pool worker may integrate a fold's
//! chunk, so finalization is a *claim*: a task that observes
//! `input closed && inflight == 0 && queue empty` flips the node's phase
//! to `Running` under the node lock and runs the finish outside it.
//!
//! The protocol's invariant: **every task that pops a chunk or observes
//! the closed edge re-evaluates the finalization condition after
//! integrating its own work** — unconditionally, not only on the path
//! that "should" be last. The condition is stable once true, so the extra
//! checks are idempotent; skipping one is how the lost-finalization race
//! happened (a task popped the final chunk, saw *its own* inflight claim
//! still counted, and only rescheduled upstream, while the concurrent
//! observer of the closed edge had already bailed on the nonzero
//! inflight — nobody checked again, and the run hung with the pool
//! idle). `tests/fold_finalize_stress.rs` hammers the window at both
//! gather and combine folds under tiny chunks and a shallow queue.
//!
//! # Spill lifecycle (bounded-memory barrier folds)
//!
//! A merge-combiner fold normally keeps every sorted run on the heap
//! until the final k-way merge, so a big `sort`'s peak memory is O(input).
//! Under a [`kq_dsl::SpillPolicy`] (CLI `--spill-mb`, carried by
//! [`StreamingOptions::spill`] / [`DataflowOptions::spill`]) each barrier
//! stage derives a per-stage [`kq_dsl::SpillConfig`] and the fold spills:
//!
//! 1. runs accumulate on the heap only while their total stays within
//!    the budget; past it, each completed run is written to a temp file
//!    (`kq_io::RunWriter`) and **immediately mapped back and unlinked** —
//!    the inode survives while mapped, so cleanup is structural on every
//!    exit path (success, error, cancellation, even SIGKILL once the
//!    process dies);
//! 2. `finish()` then streams the k-way merge of the mapped runs through
//!    a bounded fragment sink into one output run file, releasing each
//!    run's consumed pages as the merge frontier passes them
//!    ([`kq_stream::ReleaseCursor`]), and maps that output back the same
//!    way — so neither the runs nor the merged result are ever fully
//!    heap-resident;
//! 3. the executor snapshots the stage's [`kq_dsl::SpillMetrics`] into
//!    [`StageTiming::spill`] ([`exec::SpillTelemetry`]), which the CLI
//!    reports as `spill: ...` notes.
//!
//! `tests/spill_differential.rs` pins byte-identity with the serial
//! oracle under a one-byte budget (every run spills) on both executors,
//! plus the no-leftover-files property across success, failure, and
//! early-exit teardowns; `crates/bench/benches/spill_fold.rs` records
//! peak RSS for a 256 MiB sort with and without a budget
//! (`BENCH_spill.json`).
//!
//! # The adaptive control loop
//!
//! The dataflow executor can run two of its knobs closed-loop
//! ([`scheduler::ChunkSizing::Auto`] / [`scheduler::QueueCredit::Auto`],
//! CLI `--chunk-kb auto` / `--queue-depth auto` under the default
//! `--exec dataflow`):
//!
//! * **Adaptive chunk sizing.** Each statement's base chunk target is
//!   derived from its input size and the worker count when the statement
//!   starts (≈8 chunks per worker, clamped to [128 KiB, 8 MiB]), and
//!   producers feeding a combine fold *coarsen* geometrically as they cut
//!   — doubling the target every 8 chunks, up to 6 doublings. The first
//!   wave of small chunks gets every worker busy; later, larger chunks
//!   amortize per-chunk overhead and shrink the fold's merge frontier
//!   (fewer, bigger sorted runs to k-way merge).
//! * **Queue-credit rebalancing.** Edges start at the default credit and
//!   a controller tick — piggybacked on the worker loop between tasks, no
//!   extra thread — samples per-edge gate/starve event deltas and moves
//!   one chunk of credit per tick from the most starved edge to the most
//!   gated one (floor 1, cap 8× the seed).
//! * **Spill-aware run sizing.** Under a spill budget a merge fold
//!   accumulates incoming pieces until a quarter of the budget before
//!   sorting/spilling a run ([`kq_dsl` `kway`]), so run count tracks the
//!   budget rather than the chunk count.
//!
//! The invariant that makes all three safe: **adaptation moves chunk
//! boundaries and scheduling, never bytes**. Chunk targets are pure
//! functions of (statement base, chunks already cut) — independent of
//! timing, credit, and worker interleaving — and reorder buffers already
//! make every node's output order-deterministic, so serial byte-equality
//! holds with the knobs on; `tests/dataflow_differential.rs` sweeps the
//! corpus with both knobs on at several worker counts. Decisions are
//! traced (`adaptive` instants) and summarized in
//! [`TimingLog::adaptive`](exec::AdaptiveTelemetry);
//! `crates/bench/benches/adaptive_exec.rs` measures auto against static
//! configurations (`BENCH_adaptive.json`).
//!
//! # The trace plane
//!
//! Every executor is instrumented through [`kq_trace`]: node-task spans
//! (`dataflow`/`streaming`/`chunked`/`static`/`serial` categories), graph
//! structure metas, and per-node counters (bytes in/out, tasks,
//! max-queued, send/recv stall time). Instrumentation is off unless a
//! `kq_trace::TraceSession` is live — a disabled probe is one relaxed
//! atomic load, so the executors' hot loops carry no tracing cost on
//! normal runs (`crates/bench/benches/trace_overhead.rs` guards this).
//! Span identity is `(kind, cat, name, si, ni, seq, label)`: `si` the
//! statement index, `ni` the dataflow node / stage index, `seq` the chunk
//! ordinal. Chunk cuts are deterministic for a given input and chunk
//! size, so the identity multiset is stable across runs and worker counts
//! (absent early-exit cancellation) — `tests/trace_plane.rs` pins that
//! contract, plus graph coverage: every node of every statement's graph
//! appears with at least one task span. The CLI exports sessions via
//! `--trace-out` (JSONL + a Chrome `trace_event` file for Perfetto) and
//! summarizes them with `kumquat trace report` (per-node busy time and
//! the critical path).

//! ```
//! use kq_pipeline::exec::{run_parallel, run_serial};
//! use kq_pipeline::parse::parse_script;
//! use kq_pipeline::plan::Planner;
//! use kq_coreutils::ExecContext;
//! use kq_synth::SynthesisConfig;
//!
//! let script = parse_script("cat /in | sort | uniq -c", &Default::default()).unwrap();
//! let ctx = ExecContext::default();
//! ctx.vfs.write("/in", "b\na\nb\n".repeat(40));
//! let mut planner = Planner::new(SynthesisConfig::default());
//! let plan = planner.plan(&script, &ctx, "b\na\nb\n");
//! let serial = run_serial(&script, &ctx).unwrap();
//! let parallel = run_parallel(&script, &plan, &ctx, 4, true).unwrap();
//! assert_eq!(parallel.output, serial.output);
//! ```

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod chunked;
pub mod dataflow;
pub mod dist;
pub mod exec;
pub mod lattice;
pub mod parse;
pub mod plan;
pub mod scheduler;
pub mod sim;
pub mod streaming;

pub use cache::{cache_key, CacheStats, CombinerCache};
pub use dataflow::{DataflowGraph, DataflowNode, FoldMode, NodeKind};
pub use exec::{
    AdaptiveTelemetry, EarlyExit, ExecutionResult, QueueTelemetry, SpillTelemetry, StageTiming,
    TimingLog,
};
pub use lattice::{classify, EffectClass, EffectSet};
pub use parse::{InputSource, ParseError, Script, SourceSpan, Stage, Statement};
pub use plan::{PlannedScript, PlannedStage, Planner, StageMode, StreamSegment, StreamSegmentKind};
pub use scheduler::{
    run_dataflow, ChunkSizing, DataflowOptions, QueueCredit, DEFAULT_CHUNK_BYTES,
    DEFAULT_QUEUE_DEPTH,
};
pub use sim::{PipelineCosts, SimParams};
pub use streaming::{run_streaming, StreamingOptions};
