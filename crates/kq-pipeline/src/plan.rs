//! Parallelization planning (paper §2, §3.5).
//!
//! For every stage the planner synthesizes a combiner (caching by command
//! line — the paper synthesizes once per unique command/flag combination)
//! and decides the stage's execution mode:
//!
//! * no combiner, or a command that does not read its standard input →
//!   **sequential**;
//! * a rerun-only combiner on a command that does not significantly shrink
//!   its input (e.g. `tr -cs A-Za-z '\n'`) → **sequential**, per §2's cost
//!   observation;
//! * otherwise → **parallel**.
//!
//! A parallel stage whose combiner is plain `concat` and whose successor is
//! also parallel has its intermediate combiner *eliminated* (Theorem 5):
//! the worker substreams flow directly into the next stage. The elimination
//! additionally requires the stage's outputs to be newline-terminated
//! streams — `tr -d '\n'` fails that precondition and keeps its combiner.

use crate::parse::{Script, Statement};
use kq_coreutils::ExecContext;
use kq_synth::{synthesize, SynthesisConfig, SynthesisReport, SynthesizedCombiner};
use std::collections::HashMap;
use std::sync::Arc;

/// How a planned stage executes.
#[derive(Debug, Clone)]
pub enum StageMode {
    /// Run one instance on the whole stream.
    Sequential,
    /// Run `w` instances on substreams and combine.
    Parallel {
        /// The synthesized combiner.
        combiner: Arc<SynthesizedCombiner>,
        /// Theorem 5: the combiner is skipped and the substreams feed the
        /// next (parallel) stage directly.
        eliminated: bool,
    },
}

impl StageMode {
    /// True for either parallel variant.
    pub fn is_parallel(&self) -> bool {
        matches!(self, StageMode::Parallel { .. })
    }

    /// True when the intermediate combiner was eliminated.
    pub fn is_eliminated(&self) -> bool {
        matches!(
            self,
            StageMode::Parallel {
                eliminated: true,
                ..
            }
        )
    }
}

/// A stage with its planned mode (indexes into the source statement).
#[derive(Debug)]
pub struct PlannedStage {
    /// Index of the stage within its statement.
    pub stage_idx: usize,
    /// Planned execution mode.
    pub mode: StageMode,
    /// Chunk-local: the stage's combiner is plain `concat` and its outputs
    /// are newline-terminated streams, so `f(c1 ++ c2) = f(c1) ++ f(c2)`
    /// for line-aligned chunks and the streaming executor can let chunk
    /// outputs flow to the next stage without ever materializing the whole
    /// substream (`grep`, `tr`, `cut`, per-line `sed` qualify; `sort` and
    /// `uniq -c` do not and must barrier). Always `false` for sequential
    /// stages.
    pub streamable: bool,
}

/// Planning result for one statement.
#[derive(Debug)]
pub struct PlannedStatement {
    /// Per-stage plans, parallel to `Statement::stages`.
    pub stages: Vec<PlannedStage>,
}

impl PlannedStatement {
    /// `(parallelized, total)` stage counts — one Table 3 pair.
    pub fn parallelized_counts(&self) -> (usize, usize) {
        let k = self.stages.iter().filter(|s| s.mode.is_parallel()).count();
        (k, self.stages.len())
    }

    /// Number of eliminated intermediate combiners.
    pub fn eliminated_count(&self) -> usize {
        self.stages
            .iter()
            .filter(|s| s.mode.is_eliminated())
            .count()
    }

    /// Groups the statement's stages into execution segments.
    ///
    /// A *segment* is either one sequential stage, or a maximal run of
    /// parallel stages linked by eliminated intermediate combiners and
    /// closed by the run's final (combining) stage. With
    /// `honor_elimination = false`, every parallel stage forms its own
    /// segment (the paper's unoptimized `u_w` configuration).
    ///
    /// Segments are what executors and the shell emitter iterate over:
    /// split once per segment, pipe the whole command run per piece,
    /// combine once.
    pub fn segments(&self, honor_elimination: bool) -> Vec<StageSegment> {
        let mut out = Vec::new();
        let mut idx = 0;
        while idx < self.stages.len() {
            match &self.stages[idx].mode {
                StageMode::Sequential => {
                    out.push(StageSegment::Sequential { stage: idx });
                    idx += 1;
                }
                StageMode::Parallel { .. } => {
                    let start = idx;
                    while honor_elimination
                        && self.stages[idx].mode.is_eliminated()
                        && idx + 1 < self.stages.len()
                        && self.stages[idx + 1].mode.is_parallel()
                    {
                        idx += 1;
                    }
                    out.push(StageSegment::Parallel {
                        stages: start..idx + 1,
                    });
                    idx += 1;
                }
            }
        }
        out
    }

    /// Groups the statement's stages into *streaming* segments — the unit
    /// the bounded-queue streaming executor spawns workers for.
    ///
    /// Unlike [`segments`](Self::segments) (which fuses an eliminated run
    /// *into* its closing combiner stage for split-once/combine-once
    /// execution), streaming segmentation breaks at every stage that must
    /// see its whole input:
    ///
    /// * a maximal run of consecutive [`streamable`](PlannedStage::streamable)
    ///   stages forms one [`StreamSegmentKind::Streaming`] segment — chunks
    ///   are piped through the run's commands and flow straight downstream,
    ///   no combiner ever runs (the Theorem 5 argument, applied per chunk);
    /// * a parallel stage that is not chunk-local (`sort`, `uniq -c`,
    ///   `wc`, …) is a [`StreamSegmentKind::Barrier`]: chunks are still
    ///   processed as they arrive, but the outputs fold through the
    ///   stage's combiner and only the combined stream moves on;
    /// * a sequential stage is [`StreamSegmentKind::Sequential`]: the
    ///   input is re-gathered, the command runs once, and the output is
    ///   re-chunked.
    ///
    /// With `fuse_streamable = false` every streamable stage forms its own
    /// single-stage streaming segment (more hand-offs, same semantics) —
    /// the differential suite uses this to exercise the channel plumbing
    /// harder.
    pub fn stream_segments(&self, fuse_streamable: bool) -> Vec<StreamSegment> {
        let mut out = Vec::new();
        let mut idx = 0;
        while idx < self.stages.len() {
            let stage = &self.stages[idx];
            if stage.streamable {
                let start = idx;
                idx += 1;
                while fuse_streamable && idx < self.stages.len() && self.stages[idx].streamable {
                    idx += 1;
                }
                out.push(StreamSegment {
                    stages: start..idx,
                    kind: StreamSegmentKind::Streaming,
                });
            } else {
                let kind = match &stage.mode {
                    StageMode::Sequential => StreamSegmentKind::Sequential,
                    StageMode::Parallel { .. } => StreamSegmentKind::Barrier,
                };
                out.push(StreamSegment {
                    stages: idx..idx + 1,
                    kind,
                });
                idx += 1;
            }
        }
        out
    }
}

/// How a [`StreamSegment`] moves data (see
/// [`PlannedStatement::stream_segments`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamSegmentKind {
    /// Chunk-local stages: chunk outputs flow downstream uncombined.
    Streaming,
    /// A parallel stage whose outputs fold through its combiner; only the
    /// combined stream continues.
    Barrier,
    /// A sequential stage: gather, run once, re-chunk.
    Sequential,
}

/// One streaming-executor segment: a stage range plus how its data moves.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamSegment {
    /// Stage index range (`start..end`, end exclusive; length 1 except for
    /// fused streamable runs).
    pub stages: std::ops::Range<usize>,
    /// Data movement.
    pub kind: StreamSegmentKind,
}

/// One execution segment of a planned statement (see
/// [`PlannedStatement::segments`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StageSegment {
    /// A single stage running on the whole stream.
    Sequential {
        /// Stage index within the statement.
        stage: usize,
    },
    /// A run of parallel stages piped per piece, combined once at the end
    /// (with the last stage's combiner).
    Parallel {
        /// Stage index range (`start..end`, end exclusive).
        stages: std::ops::Range<usize>,
    },
}

/// Planning result for a whole script.
#[derive(Debug)]
pub struct PlannedScript {
    /// Per-statement plans, parallel to `Script::statements`.
    pub statements: Vec<PlannedStatement>,
}

impl PlannedScript {
    /// Script-level `(parallelized, total)` sums (Table 3's leading pair).
    pub fn parallelized_counts(&self) -> (usize, usize) {
        self.statements
            .iter()
            .map(PlannedStatement::parallelized_counts)
            .fold((0, 0), |(a, b), (k, n)| (a + k, b + n))
    }

    /// Script-level eliminated-combiner count.
    pub fn eliminated_count(&self) -> usize {
        self.statements
            .iter()
            .map(PlannedStatement::eliminated_count)
            .sum()
    }
}

/// The planner: synthesis cache plus heuristics.
pub struct Planner {
    config: SynthesisConfig,
    /// Cache keyed by command display line. `None` records a synthesis
    /// failure (no combiner).
    cache: HashMap<String, Option<Arc<SynthesizedCombiner>>>,
    /// Synthesis reports for every unique command seen (Table 10 rows).
    pub reports: Vec<SynthesisReport>,
    /// Input shrink ratio below which a rerun-only stage still pays off.
    pub rerun_shrink_threshold: f64,
}

impl Planner {
    /// A planner with the given synthesis configuration.
    pub fn new(config: SynthesisConfig) -> Planner {
        Planner {
            config,
            cache: HashMap::new(),
            reports: Vec::new(),
            rerun_shrink_threshold: 0.5,
        }
    }

    /// Registers a manually written combiner for a command line,
    /// bypassing synthesis — the workflow of the POSH/PaSh systems the
    /// paper compares against (§5), kept as an escape hatch for commands
    /// whose combiners synthesis cannot certify (e.g. a command reading
    /// files produced earlier in the same script). The caller asserts
    /// correctness; the executors still verify outputs against serial
    /// runs.
    pub fn register_manual(
        &mut self,
        command_line: impl Into<String>,
        combiner: SynthesizedCombiner,
    ) {
        self.cache
            .insert(command_line.into(), Some(Arc::new(combiner)));
    }

    /// Synthesizes (or recalls) the combiner for one command.
    pub fn combiner_for(
        &mut self,
        command: &kq_coreutils::Command,
        ctx: &ExecContext,
    ) -> Option<Arc<SynthesizedCombiner>> {
        let key = command.display();
        if let Some(cached) = self.cache.get(&key) {
            return cached.clone();
        }
        let report = synthesize(command, ctx, &self.config);
        let combiner = report.combiner().cloned().map(Arc::new);
        self.reports.push(report);
        self.cache.insert(key, combiner.clone());
        combiner
    }

    /// Plans a whole script against a sample input (used for the shrink
    /// and stream-output probes).
    pub fn plan(&mut self, script: &Script, ctx: &ExecContext, sample: &str) -> PlannedScript {
        let statements = script
            .statements
            .iter()
            .map(|st| self.plan_statement(st, ctx, sample))
            .collect();
        PlannedScript { statements }
    }

    fn plan_statement(
        &mut self,
        statement: &Statement,
        ctx: &ExecContext,
        sample: &str,
    ) -> PlannedStatement {
        // First pass: decide sequential/parallel per stage.
        let mut modes: Vec<StageMode> = Vec::with_capacity(statement.stages.len());
        for stage in &statement.stages {
            let cmd = &stage.command;
            if !cmd.reads_stdin() {
                modes.push(StageMode::Sequential);
                continue;
            }
            let Some(combiner) = self.combiner_for(cmd, ctx) else {
                modes.push(StageMode::Sequential);
                continue;
            };
            if combiner.is_rerun() && !self.shrinks_enough(cmd, ctx, sample) {
                // §2: parallelizing with a rerun combiner only pays when
                // the command significantly reduces the stream.
                modes.push(StageMode::Sequential);
                continue;
            }
            modes.push(StageMode::Parallel {
                combiner,
                eliminated: false,
            });
        }
        // Second pass: probe once per parallel stage whether its outputs
        // are newline-terminated streams, then derive both chunk-locality
        // (a concat combiner on a stream-emitting stage) and the Theorem 5
        // elimination (chunk-local and followed by another parallel stage).
        let streamable: Vec<bool> = statement
            .stages
            .iter()
            .zip(&modes)
            .map(|(stage, mode)| match mode {
                StageMode::Parallel { combiner, .. } => {
                    combiner.is_concat() && Self::outputs_streams(&stage.command, ctx, sample)
                }
                StageMode::Sequential => false,
            })
            .collect();
        for i in 0..modes.len() {
            let next_parallel = modes
                .get(i + 1)
                .map(StageMode::is_parallel)
                .unwrap_or(false);
            if !(streamable[i] && next_parallel) {
                continue;
            }
            let StageMode::Parallel { eliminated, .. } = &mut modes[i] else {
                unreachable!("streamable implies parallel");
            };
            *eliminated = true;
        }
        PlannedStatement {
            stages: modes
                .into_iter()
                .zip(streamable)
                .enumerate()
                .map(|(stage_idx, (mode, streamable))| PlannedStage {
                    stage_idx,
                    mode,
                    streamable,
                })
                .collect(),
        }
    }

    /// Probes whether the command shrinks the sample enough to justify a
    /// rerun combiner.
    ///
    /// Byte-plane probe on purpose: a source command (`cat big-file`)
    /// ignores the sample and returns the file handle — under `run` that
    /// is a refcount bump whose length is O(1) to read, where `run_str`
    /// would copy a possibly mapped multi-GB output just to measure it.
    fn shrinks_enough(&self, cmd: &kq_coreutils::Command, ctx: &ExecContext, sample: &str) -> bool {
        match cmd.run(kq_coreutils::Bytes::from(sample), ctx) {
            Ok(out) => {
                let ratio = out.len() as f64 / sample.len().max(1) as f64;
                ratio <= self.rerun_shrink_threshold
            }
            Err(_) => false,
        }
    }

    /// Theorem 5 precondition: outputs terminate with newlines. (Same
    /// byte-plane reasoning as [`Planner::shrinks_enough`]: only the final
    /// byte is inspected.)
    fn outputs_streams(cmd: &kq_coreutils::Command, ctx: &ExecContext, sample: &str) -> bool {
        match cmd.run(kq_coreutils::Bytes::from(sample), ctx) {
            Ok(out) => out.is_empty() || out.ends_with_newline(),
            Err(_) => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_script;
    use std::collections::HashMap as Map;

    fn sample_text() -> String {
        let mut s = String::new();
        for i in 0..200 {
            s.push_str(&format!("the quick brown fox {i} jumps over dogs\n"));
        }
        s
    }

    fn plan(script_text: &str) -> (PlannedScript, Planner) {
        let env: Map<String, String> = [("IN".to_owned(), "/in.txt".to_owned())].into();
        let script = parse_script(script_text, &env).unwrap();
        let ctx = ExecContext::default();
        ctx.vfs.write("/in.txt", sample_text());
        let mut planner = Planner::new(SynthesisConfig::default());
        let planned = planner.plan(&script, &ctx, &sample_text());
        (planned, planner)
    }

    #[test]
    fn wf_pipeline_plan_matches_paper() {
        // §2: wf.sh — tr -cs runs sequentially (rerun, no shrink); the
        // other four stages parallelize; tr A-Z a-z's concat combiner is
        // eliminated into the following sort.
        let (planned, _) =
            plan("cat $IN | tr -cs A-Za-z '\\n' | tr A-Z a-z | sort | uniq -c | sort -rn");
        let st = &planned.statements[0];
        assert_eq!(st.parallelized_counts(), (4, 5));
        assert_eq!(st.eliminated_count(), 1);
        assert!(
            !st.stages[0].mode.is_parallel(),
            "tr -cs must be sequential"
        );
        assert!(st.stages[1].mode.is_eliminated(), "tr A-Z a-z feeds sort");
        assert!(!st.stages[4].mode.is_eliminated(), "final combiner stays");
    }

    #[test]
    fn tr_d_newline_blocks_elimination() {
        // tr -d '\n' violates the Theorem 5 stream precondition; it still
        // parallelizes (concat combiner) but keeps its combiner.
        let (planned, _) = plan("cat $IN | tr -d '\\n' | wc -c");
        let st = &planned.statements[0];
        assert!(st.stages[0].mode.is_parallel());
        assert!(!st.stages[0].mode.is_eliminated());
    }

    #[test]
    fn no_combiner_stage_is_sequential() {
        let (planned, _) = plan("cat $IN | sed 1d | sort");
        let st = &planned.statements[0];
        assert!(!st.stages[0].mode.is_parallel());
        assert!(st.stages[1].mode.is_parallel());
        assert_eq!(st.parallelized_counts(), (1, 2));
    }

    #[test]
    fn synthesis_cache_reused_across_statements() {
        let (_, planner) = plan("cat $IN | sort\ncat $IN | sort");
        let sort_reports = planner
            .reports
            .iter()
            .filter(|r| r.command == "sort")
            .count();
        assert_eq!(sort_reports, 1);
    }

    #[test]
    fn last_stage_combiner_never_eliminated() {
        let (planned, _) = plan("cat $IN | tr A-Z a-z | tr a-z A-Z");
        let st = &planned.statements[0];
        assert!(st.stages[0].mode.is_eliminated());
        assert!(st.stages[1].mode.is_parallel());
        assert!(!st.stages[1].mode.is_eliminated());
    }

    #[test]
    fn manual_combiner_overrides_synthesis() {
        // `sed 1d` has no synthesizable combiner; a POSH-style manual
        // registration makes the stage parallel anyway (and a manual
        // rerun for `sed 1d` is wrong — this only checks plumbing; the
        // executor's serial-vs-parallel verification is what catches bad
        // manual combiners).
        use kq_dsl::ast::{Candidate, RecOp};
        use kq_synth::SynthesizedCombiner;
        let env: Map<String, String> = [("IN".to_owned(), "/in.txt".to_owned())].into();
        let script = parse_script("cat $IN | grep fox | sort", &env).unwrap();
        let ctx = ExecContext::default();
        ctx.vfs.write("/in.txt", sample_text());
        let mut planner = Planner::new(SynthesisConfig::default());
        planner.register_manual(
            "grep fox",
            SynthesizedCombiner::from_plausible(vec![Candidate::rec(RecOp::Concat)]),
        );
        let planned = planner.plan(&script, &ctx, &sample_text());
        assert!(planned.statements[0].stages[0].mode.is_parallel());
        // No synthesis report was produced for the manual command.
        assert!(planner.reports.iter().all(|r| r.command != "grep fox"));
    }

    #[test]
    fn grep_then_count_parallelizes_fully() {
        let (planned, _) = plan("cat $IN | grep fox | wc -l");
        let st = &planned.statements[0];
        assert_eq!(st.parallelized_counts(), (2, 2));
        // grep's concat feeds wc -l directly.
        assert_eq!(st.eliminated_count(), 1);
    }

    #[test]
    fn streamable_stages_are_chunk_local_commands() {
        // grep/tr/cut stream; sort (merge) and uniq -c (stitch) barrier;
        // the final stage is streamable even with nothing after it
        // (unlike Theorem 5 elimination, chunk-locality does not depend
        // on the successor).
        let (planned, _) = plan("cat $IN | grep fox | tr A-Z a-z | sort | uniq -c");
        let st = &planned.statements[0];
        let flags: Vec<bool> = st.stages.iter().map(|s| s.streamable).collect();
        assert_eq!(flags, vec![true, true, false, false]);
        let (planned, _) = plan("cat $IN | cut -d ' ' -f 1 | grep fox");
        let st = &planned.statements[0];
        assert!(st.stages.iter().all(|s| s.streamable));
    }

    #[test]
    fn tr_d_newline_is_not_streamable() {
        // Concat combiner but non-stream outputs: chunk boundaries would
        // land mid-line downstream.
        let (planned, _) = plan("cat $IN | tr -d '\\n' | wc -c");
        assert!(!planned.statements[0].stages[0].streamable);
    }

    #[test]
    fn stream_segments_fuse_streamable_runs_and_isolate_barriers() {
        let (planned, _) =
            plan("cat $IN | tr -cs A-Za-z '\\n' | tr A-Z a-z | grep o | sort | uniq -c | sort -rn");
        let st = &planned.statements[0];
        let segs = st.stream_segments(true);
        let shape: Vec<(StreamSegmentKind, std::ops::Range<usize>)> =
            segs.iter().map(|s| (s.kind, s.stages.clone())).collect();
        assert_eq!(
            shape,
            vec![
                (StreamSegmentKind::Sequential, 0..1), // tr -cs (rerun, no shrink)
                (StreamSegmentKind::Streaming, 1..3),  // tr | grep fused
                (StreamSegmentKind::Barrier, 3..4),    // sort
                (StreamSegmentKind::Barrier, 4..5),    // uniq -c
                (StreamSegmentKind::Barrier, 5..6),    // sort -rn
            ]
        );
        // Unfused: the streamable run splits into single-stage segments.
        let unfused = st.stream_segments(false);
        assert_eq!(unfused.len(), 6);
        assert!(unfused.iter().all(|s| s.stages.len() == 1));
    }
}
