//! Parallelization planning (paper §2, §3.5).
//!
//! Planning is two-phase: the planner first walks the script to collect
//! its *distinct* stdin-reading commands and synthesizes the uncached
//! ones concurrently on a [`kq_synth::SynthPool`] (the paper synthesizes
//! once per unique command/flag combination; combiners are cached under a
//! normalized command signature, optionally persisted on disk — see
//! [`crate::cache`]). It then assembles each statement's plan from the
//! cache, deciding the stage's execution mode:
//!
//! * no combiner, or a command that does not read its standard input →
//!   **sequential**;
//! * a rerun-only combiner on a command that does not significantly shrink
//!   its input (e.g. `tr -cs A-Za-z '\n'`) → **sequential**, per §2's cost
//!   observation;
//! * otherwise → **parallel**.
//!
//! A parallel stage whose combiner is plain `concat` and whose successor is
//! also parallel has its intermediate combiner *eliminated* (Theorem 5):
//! the worker substreams flow directly into the next stage. The elimination
//! additionally requires the stage's outputs to be newline-terminated
//! streams — `tr -d '\n'` fails that precondition and keeps its combiner.

use crate::cache::{cache_key, CacheLookup, CacheStats, CombinerCache};
use crate::lattice;
use crate::parse::{Script, Statement};
use kq_coreutils::ExecContext;
use kq_synth::{
    spot_check, synthesize, InputProfile, SynthPool, SynthesisConfig, SynthesisReport,
    SynthesizedCombiner,
};
use std::collections::HashMap;
use std::sync::Arc;

/// How a planned stage executes.
#[derive(Debug, Clone)]
pub enum StageMode {
    /// Run one instance on the whole stream.
    Sequential,
    /// Run `w` instances on substreams and combine.
    Parallel {
        /// The synthesized combiner.
        combiner: Arc<SynthesizedCombiner>,
        /// Theorem 5: the combiner is skipped and the substreams feed the
        /// next (parallel) stage directly.
        eliminated: bool,
    },
}

impl StageMode {
    /// True for either parallel variant.
    pub fn is_parallel(&self) -> bool {
        matches!(self, StageMode::Parallel { .. })
    }

    /// True when the intermediate combiner was eliminated.
    pub fn is_eliminated(&self) -> bool {
        matches!(
            self,
            StageMode::Parallel {
                eliminated: true,
                ..
            }
        )
    }
}

/// A stage with its planned mode (indexes into the source statement).
#[derive(Debug)]
pub struct PlannedStage {
    /// Index of the stage within its statement.
    pub stage_idx: usize,
    /// Planned execution mode.
    pub mode: StageMode,
    /// Chunk-local: the stage's combiner is plain `concat` and its outputs
    /// are newline-terminated streams, so `f(c1 ++ c2) = f(c1) ++ f(c2)`
    /// for line-aligned chunks and the streaming executor can let chunk
    /// outputs flow to the next stage without ever materializing the whole
    /// substream (`grep`, `tr`, `cut`, per-line `sed` qualify; `sort` and
    /// `uniq -c` do not and must barrier). Always `false` for sequential
    /// stages.
    pub streamable: bool,
    /// Prefix bound ([`kq_synth::prefix_bound`]): `Some(k)` when the
    /// stage's output depends only on the first `k` complete lines of its
    /// input (`head -n k`, `sed kq`). Such a stage is a *bounded
    /// consumer*: the streaming executor runs it as a
    /// [`StreamSegmentKind::Bounded`] segment that stops demanding input
    /// — and cancels everything upstream — the moment `k` lines exist.
    /// Independent of the sequential/parallel mode decision: running the
    /// command once on a `k`-line prefix is exact under either plan.
    pub line_bound: Option<usize>,
}

/// Planning result for one statement.
#[derive(Debug)]
pub struct PlannedStatement {
    /// Per-stage plans, parallel to `Statement::stages`.
    pub stages: Vec<PlannedStage>,
}

impl PlannedStatement {
    /// `(parallelized, total)` stage counts — one Table 3 pair.
    pub fn parallelized_counts(&self) -> (usize, usize) {
        let k = self.stages.iter().filter(|s| s.mode.is_parallel()).count();
        (k, self.stages.len())
    }

    /// Number of eliminated intermediate combiners.
    pub fn eliminated_count(&self) -> usize {
        self.stages
            .iter()
            .filter(|s| s.mode.is_eliminated())
            .count()
    }

    /// Groups the statement's stages into execution segments.
    ///
    /// A *segment* is either one sequential stage, or a maximal run of
    /// parallel stages linked by eliminated intermediate combiners and
    /// closed by the run's final (combining) stage. With
    /// `honor_elimination = false`, every parallel stage forms its own
    /// segment (the paper's unoptimized `u_w` configuration).
    ///
    /// Segments are what executors and the shell emitter iterate over:
    /// split once per segment, pipe the whole command run per piece,
    /// combine once.
    pub fn segments(&self, honor_elimination: bool) -> Vec<StageSegment> {
        let mut out = Vec::new();
        let mut idx = 0;
        while idx < self.stages.len() {
            match &self.stages[idx].mode {
                StageMode::Sequential => {
                    out.push(StageSegment::Sequential { stage: idx });
                    idx += 1;
                }
                StageMode::Parallel { .. } => {
                    let start = idx;
                    while honor_elimination
                        && self.stages[idx].mode.is_eliminated()
                        && idx + 1 < self.stages.len()
                        && self.stages[idx + 1].mode.is_parallel()
                    {
                        idx += 1;
                    }
                    out.push(StageSegment::Parallel {
                        stages: start..idx + 1,
                    });
                    idx += 1;
                }
            }
        }
        out
    }

    /// Groups the statement's stages into *streaming* segments — the unit
    /// the bounded-queue streaming executor spawns workers for.
    ///
    /// Unlike [`segments`](Self::segments) (which fuses an eliminated run
    /// *into* its closing combiner stage for split-once/combine-once
    /// execution), streaming segmentation breaks at every stage that must
    /// see its whole input:
    ///
    /// * a maximal run of consecutive [`streamable`](PlannedStage::streamable)
    ///   stages forms one [`StreamSegmentKind::Streaming`] segment — chunks
    ///   are piped through the run's commands and flow straight downstream,
    ///   no combiner ever runs (the Theorem 5 argument, applied per chunk);
    /// * a parallel stage that is not chunk-local (`sort`, `uniq -c`,
    ///   `wc`, …) is a [`StreamSegmentKind::Barrier`]: chunks are still
    ///   processed as they arrive, but the outputs fold through the
    ///   stage's combiner and only the combined stream moves on;
    /// * a sequential stage is [`StreamSegmentKind::Sequential`]: the
    ///   input is re-gathered, the command runs once, and the output is
    ///   re-chunked;
    /// * a prefix-bounded stage (`head -n k`, `sed kq` — see
    ///   [`PlannedStage::line_bound`]) is [`StreamSegmentKind::Bounded`]
    ///   whatever its mode: it consumes chunks only until `k` complete
    ///   lines exist, then cancels everything upstream by dropping its
    ///   receiver and runs the command once on the prefix.
    ///
    /// With `fuse_streamable = false` every streamable stage forms its own
    /// single-stage streaming segment (more hand-offs, same semantics) —
    /// the differential suite uses this to exercise the channel plumbing
    /// harder.
    pub fn stream_segments(&self, fuse_streamable: bool) -> Vec<StreamSegment> {
        let mut out = Vec::new();
        let mut idx = 0;
        while idx < self.stages.len() {
            let stage = &self.stages[idx];
            if let Some(lines) = stage.line_bound {
                // A bounded consumer gets its own demand-token segment
                // regardless of mode: the collector stops pulling chunks
                // (and tears upstream down) once `lines` complete lines
                // arrived. Checked before streamability — a prefix-bounded
                // command is never chunk-local anyway (`head`/`sed kq`
                // synthesize first/rerun combiners, not concat).
                out.push(StreamSegment {
                    stages: idx..idx + 1,
                    kind: StreamSegmentKind::Bounded { lines },
                });
                idx += 1;
            } else if stage.streamable {
                let start = idx;
                idx += 1;
                while fuse_streamable && idx < self.stages.len() && self.stages[idx].streamable {
                    idx += 1;
                }
                out.push(StreamSegment {
                    stages: start..idx,
                    kind: StreamSegmentKind::Streaming,
                });
            } else {
                let kind = match &stage.mode {
                    StageMode::Sequential => StreamSegmentKind::Sequential,
                    StageMode::Parallel { .. } => StreamSegmentKind::Barrier,
                };
                out.push(StreamSegment {
                    stages: idx..idx + 1,
                    kind,
                });
                idx += 1;
            }
        }
        out
    }
}

/// How a [`StreamSegment`] moves data (see
/// [`PlannedStatement::stream_segments`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamSegmentKind {
    /// Chunk-local stages: chunk outputs flow downstream uncombined.
    Streaming,
    /// A parallel stage whose outputs fold through its combiner; only the
    /// combined stream continues.
    Barrier,
    /// A sequential stage: gather, run once, re-chunk.
    Sequential,
    /// A prefix-bounded consumer (`head -n k`, `sed kq`): gathers chunks
    /// only until `lines` complete lines exist, then drops its receiver —
    /// the demand token — so every upstream producer unwinds without
    /// draining the rest of the input, runs the command once on the
    /// prefix, and re-chunks the output downstream. See
    /// [`PlannedStage::line_bound`].
    Bounded {
        /// The stage's prefix bound in complete lines.
        lines: usize,
    },
}

/// One streaming-executor segment: a stage range plus how its data moves.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamSegment {
    /// Stage index range (`start..end`, end exclusive; length 1 except for
    /// fused streamable runs).
    pub stages: std::ops::Range<usize>,
    /// Data movement.
    pub kind: StreamSegmentKind,
}

/// One execution segment of a planned statement (see
/// [`PlannedStatement::segments`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StageSegment {
    /// A single stage running on the whole stream.
    Sequential {
        /// Stage index within the statement.
        stage: usize,
    },
    /// A run of parallel stages piped per piece, combined once at the end
    /// (with the last stage's combiner).
    Parallel {
        /// Stage index range (`start..end`, end exclusive).
        stages: std::ops::Range<usize>,
    },
}

/// Planning result for a whole script.
#[derive(Debug)]
pub struct PlannedScript {
    /// Per-statement plans, parallel to `Script::statements`.
    pub statements: Vec<PlannedStatement>,
}

impl PlannedScript {
    /// Script-level `(parallelized, total)` sums (Table 3's leading pair).
    pub fn parallelized_counts(&self) -> (usize, usize) {
        self.statements
            .iter()
            .map(PlannedStatement::parallelized_counts)
            .fold((0, 0), |(a, b), (k, n)| (a + k, b + n))
    }

    /// Script-level eliminated-combiner count.
    pub fn eliminated_count(&self) -> usize {
        self.statements
            .iter()
            .map(PlannedStatement::eliminated_count)
            .sum()
    }
}

/// The planner: synthesis cache plus heuristics.
pub struct Planner {
    config: SynthesisConfig,
    /// Combiner cache keyed by normalized command signature
    /// ([`cache_key`]); optionally backed by a versioned on-disk store.
    cache: CombinerCache,
    /// Synthesis reports for every unique command actually synthesized
    /// this process (Table 10 rows); cache hits produce none.
    pub reports: Vec<SynthesisReport>,
    /// Output/input size ratio at or below which a rerun-only combiner
    /// still pays off (paper §2's cost observation, probed on the
    /// planning sample). A rerun combiner re-executes the command on the
    /// concatenated worker outputs, so parallelizing only wins when the
    /// command *shrinks* its stream — `sort -u` or `grep -c` do,
    /// `tr -cs A-Za-z '\n'` does not. `0.5` (the default) demands at
    /// least a 2× reduction; `1.0` accepts any non-growing stage; values
    /// near `0` effectively disable rerun parallelism. Exposed on the CLI
    /// as `--rerun-threshold`, validated to be a real number in `(0, 1]`.
    pub rerun_shrink_threshold: f64,
    /// Memoized `(output length, ends-with-newline)` probe results per
    /// (command display, sample fingerprint): identical commands used to
    /// re-run both planning probes in every statement mentioning them.
    /// `None` records a probe failure. Cleared at the start of every
    /// [`Planner::plan`] call: probe outputs can depend on `ExecContext`
    /// file state (`comm - dict`), so memoization is scoped to one
    /// (script, context) planning pass and must not leak across the
    /// fresh-context-per-script pattern corpus planning uses.
    probe_memo: HashMap<(String, u64), Option<(usize, bool)>>,
    /// Consult the static effect lattice ([`crate::lattice`]) before
    /// synthesizing: a [`lattice::EffectClass::Stateless`] command's
    /// combiner is plain `concat` by construction, so synthesis is
    /// short-circuited for it. The resulting plan is identical to the
    /// synthesis-only path (the combiner is the same, and the mode/
    /// streamability probes still run); the switch exists so the
    /// plan-identity differential test can pin exactly that.
    pub use_lattice: bool,
    /// Unique commands whose synthesis the lattice short-circuited this
    /// process (reported by the CLI's planning notes).
    pub lattice_short_circuits: usize,
}

impl Planner {
    /// A planner with the given synthesis configuration and a
    /// process-local cache.
    pub fn new(config: SynthesisConfig) -> Planner {
        let cache = CombinerCache::in_memory(&config);
        Planner::with_cache(config, cache)
    }

    /// A planner over an explicit combiner cache (e.g. one attached to an
    /// on-disk store via [`CombinerCache::open`]).
    pub fn with_cache(config: SynthesisConfig, cache: CombinerCache) -> Planner {
        Planner {
            config,
            cache,
            reports: Vec::new(),
            rerun_shrink_threshold: 0.5,
            probe_memo: HashMap::new(),
            use_lattice: true,
            lattice_short_circuits: 0,
        }
    }

    /// Lookup/validation counters for the combiner cache.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats
    }

    /// Warnings accumulated while loading the on-disk cache.
    pub fn cache_warnings(&self) -> &[String] {
        &self.cache.warnings
    }

    /// The combiner cache's on-disk path, when disk-backed.
    pub fn cache_path(&self) -> Option<&std::path::Path> {
        self.cache.path()
    }

    /// Persists the combiner cache when it is disk-backed and dirty.
    /// Returns whether a write happened.
    pub fn save_cache(&mut self) -> Result<bool, String> {
        self.cache.save()
    }

    /// Registers a manually written combiner for a command line,
    /// bypassing synthesis — the workflow of the POSH/PaSh systems the
    /// paper compares against (§5), kept as an escape hatch for commands
    /// whose combiners synthesis cannot certify (e.g. a command reading
    /// files produced earlier in the same script). The caller asserts
    /// correctness; the executors still verify outputs against serial
    /// runs. Manual entries stay process-local: they are never persisted
    /// to the on-disk store (no synthesis provenance to validate).
    pub fn register_manual(
        &mut self,
        command_line: impl Into<String>,
        combiner: SynthesizedCombiner,
    ) {
        let line = command_line.into();
        // Key like any other lookup so stages naming this command find it.
        let key = match kq_coreutils::parse_command(&line) {
            Ok(cmd) => cache_key(&cmd),
            Err(_) => crate::cache::raw_key(&line),
        };
        self.cache.insert(key, Some(Arc::new(combiner)), false);
    }

    /// Synthesizes (or recalls) the combiner for one command: an
    /// in-memory hit returns immediately, a disk hit is validated by
    /// replaying its candidates against a fresh observation
    /// ([`kq_synth::spot_check`]), and anything else synthesizes.
    pub fn combiner_for(
        &mut self,
        command: &kq_coreutils::Command,
        ctx: &ExecContext,
    ) -> Option<Arc<SynthesizedCombiner>> {
        let key = cache_key(command);
        if let Some(resolved) = self.resolve_cached(&key, command, ctx) {
            return resolved;
        }
        if let Some(combiner) = self.lattice_shortcut(&key, command) {
            return Some(combiner);
        }
        let report = synthesize(command, ctx, &self.config);
        self.record_synthesis(key, report)
    }

    /// The static short-circuit: a [`lattice::EffectClass::Stateless`]
    /// command gets its `concat` combiner without synthesis. The entry is
    /// cached process-locally but never persisted — the on-disk store
    /// stays purely synthesis-proven. Any other class returns `None`:
    /// those classes only promise a combiner *exists*, and planning from
    /// the promise instead of the observed plausible set could change the
    /// plan (rerun cost, elimination) relative to the synthesis path.
    fn lattice_shortcut(
        &mut self,
        key: &str,
        command: &kq_coreutils::Command,
    ) -> Option<Arc<SynthesizedCombiner>> {
        if !self.use_lattice {
            return None;
        }
        let class = lattice::classify(command);
        let combiner = Arc::new(lattice::static_combiner(class)?);
        kq_trace::instant("lattice", "short-circuit")
            .label(key)
            .emit();
        self.lattice_short_circuits += 1;
        self.cache
            .insert(key.to_owned(), Some(combiner.clone()), false);
        Some(combiner)
    }

    /// Resolves `key` from the cache when possible: trusted in-memory
    /// entries outright, disk entries after replaying their candidates
    /// against a fresh observation. `None` means synthesis is required
    /// (a true miss, or a disk entry that failed validation).
    fn resolve_cached(
        &mut self,
        key: &str,
        command: &kq_coreutils::Command,
        ctx: &ExecContext,
    ) -> Option<Option<Arc<SynthesizedCombiner>>> {
        match self.cache.lookup(key) {
            CacheLookup::Ready(combiner) => {
                kq_trace::instant("cache", "hit").label(key).emit();
                Some(combiner)
            }
            CacheLookup::NeedsValidation(candidates) => {
                let span = kq_trace::span("cache", "validate")
                    .label(key)
                    .v(candidates.len() as f64);
                let valid = spot_check(command, ctx, &self.config, &candidates);
                span.done();
                let resolved = self
                    .cache
                    .resolve_validation(key, candidates, valid)
                    .map(Some);
                let verdict = if resolved.is_some() {
                    "validated"
                } else {
                    "rejected"
                };
                kq_trace::instant("cache", verdict).label(key).emit();
                resolved
            }
            CacheLookup::Miss => {
                kq_trace::instant("cache", "miss").label(key).emit();
                None
            }
        }
    }

    /// Records one synthesis result: the report, the miss, and the cache
    /// entry. Unsupported-profile negatives describe the probe
    /// environment (e.g. a file the script writes later), not the
    /// command — they stay out of the persistent store.
    fn record_synthesis(
        &mut self,
        key: String,
        report: SynthesisReport,
    ) -> Option<Arc<SynthesizedCombiner>> {
        let combiner = report.combiner().cloned().map(Arc::new);
        let persist = combiner.is_some() || !matches!(report.profile, InputProfile::Unsupported);
        self.cache.stats.misses += 1;
        self.reports.push(report);
        self.cache.insert(key, combiner.clone(), persist);
        combiner
    }

    /// Plans a whole script against a sample input (used for the shrink
    /// and stream-output probes).
    ///
    /// Planning is two-phase: first the script is walked to collect its
    /// *distinct* uncached stdin-reading commands, which are synthesized
    /// concurrently on a [`SynthPool`] (one job per command — synthesis
    /// output is worker-count independent, so the fan-out is invisible in
    /// the plan); then the per-statement plans are assembled from cache
    /// hits alone.
    pub fn plan(&mut self, script: &Script, ctx: &ExecContext, sample: &str) -> PlannedScript {
        let _plan_span = kq_trace::span("plan", "plan").v(script.statements.len() as f64);
        // Probe results depend on context file state; scope the memo to
        // this (script, context) pass.
        self.probe_memo.clear();
        self.synthesize_script_commands(script, ctx);
        let statements = script
            .statements
            .iter()
            .map(|st| self.plan_statement(st, ctx, sample))
            .collect();
        PlannedScript { statements }
    }

    /// Phase one of [`Planner::plan`]: resolve every distinct
    /// stdin-reading command — validating disk entries in order, then
    /// fanning the remaining cold syntheses out over the pool. Reports
    /// and cache entries land in first-appearance order regardless of
    /// which worker finishes first.
    fn synthesize_script_commands(&mut self, script: &Script, ctx: &ExecContext) {
        let mut pending: Vec<(String, &kq_coreutils::Command)> = Vec::new();
        for statement in &script.statements {
            for stage in &statement.stages {
                let cmd = &stage.command;
                if !cmd.reads_stdin() {
                    continue;
                }
                let key = cache_key(cmd);
                if pending.iter().any(|(k, _)| *k == key) {
                    continue;
                }
                if self.resolve_cached(&key, cmd, ctx).is_some() {
                    continue;
                }
                if self.lattice_shortcut(&key, cmd).is_some() {
                    continue;
                }
                pending.push((key, cmd));
            }
        }
        if pending.is_empty() {
            return;
        }
        // Distinct commands synthesize concurrently; each job keeps its
        // intra-command phases serial (workers = 1) so the machine is not
        // oversubscribed workers² wide. Either split yields the same
        // reports — parallelism here is a pure wall-clock choice.
        let pool = SynthPool::new(self.config.workers);
        let per_command = if pending.len() >= pool.workers() {
            1
        } else {
            (pool.workers() / pending.len()).max(1)
        };
        let mut job_config = self.config.clone();
        job_config.workers = per_command;
        let reports = pool.map(&pending, |_, (_, cmd)| synthesize(cmd, ctx, &job_config));
        for ((key, _), report) in pending.into_iter().zip(reports) {
            self.record_synthesis(key, report);
        }
    }

    fn plan_statement(
        &mut self,
        statement: &Statement,
        ctx: &ExecContext,
        sample: &str,
    ) -> PlannedStatement {
        // First pass: decide sequential/parallel per stage.
        let mut modes: Vec<StageMode> = Vec::with_capacity(statement.stages.len());
        for stage in &statement.stages {
            let cmd = &stage.command;
            if !cmd.reads_stdin() {
                modes.push(StageMode::Sequential);
                continue;
            }
            let Some(combiner) = self.combiner_for(cmd, ctx) else {
                modes.push(StageMode::Sequential);
                continue;
            };
            if combiner.is_rerun() && !self.shrinks_enough(cmd, ctx, sample) {
                // §2: parallelizing with a rerun combiner only pays when
                // the command significantly reduces the stream.
                modes.push(StageMode::Sequential);
                continue;
            }
            modes.push(StageMode::Parallel {
                combiner,
                eliminated: false,
            });
        }
        // Second pass: probe once per parallel stage whether its outputs
        // are newline-terminated streams, then derive both chunk-locality
        // (a concat combiner on a stream-emitting stage) and the Theorem 5
        // elimination (chunk-local and followed by another parallel stage).
        let mut streamable: Vec<bool> = Vec::with_capacity(modes.len());
        for (stage, mode) in statement.stages.iter().zip(&modes) {
            streamable.push(match mode {
                StageMode::Parallel { combiner, .. } => {
                    combiner.is_concat() && self.outputs_streams(&stage.command, ctx, sample)
                }
                StageMode::Sequential => false,
            });
        }
        for i in 0..modes.len() {
            let next_parallel = modes
                .get(i + 1)
                .map(StageMode::is_parallel)
                .unwrap_or(false);
            if !(streamable[i] && next_parallel) {
                continue;
            }
            let StageMode::Parallel { eliminated, .. } = &mut modes[i] else {
                unreachable!("streamable implies parallel");
            };
            *eliminated = true;
        }
        PlannedStatement {
            stages: modes
                .into_iter()
                .zip(streamable)
                .enumerate()
                .map(|(stage_idx, (mode, streamable))| PlannedStage {
                    stage_idx,
                    mode,
                    streamable,
                    // The early-exit contract comes from the parsed
                    // command itself (exact, never widened) — a stage
                    // with a file operand reads no stdin and reports
                    // no bound.
                    line_bound: kq_synth::prefix_bound(&statement.stages[stage_idx].command),
                })
                .collect(),
        }
    }

    /// One memoized probe run per (command display, sample): executes the
    /// command on the sample once and records everything both planning
    /// heuristics need — the output length (shrink ratio) and whether the
    /// output ends with a newline (Theorem 5's stream precondition).
    /// Identical commands used to pay both probe executions again in
    /// every statement that mentioned them.
    ///
    /// Byte-plane probe on purpose: a source command (`cat big-file`)
    /// ignores the sample and returns the file handle — under `run` that
    /// is a refcount bump whose length is O(1) to read, where `run_str`
    /// would copy a possibly mapped multi-GB output just to measure it.
    fn probe(
        &mut self,
        cmd: &kq_coreutils::Command,
        ctx: &ExecContext,
        sample: &str,
    ) -> Option<(usize, bool)> {
        let key = (cmd.display(), sample_fingerprint(sample));
        if let Some(memo) = self.probe_memo.get(&key) {
            return *memo;
        }
        let result = cmd
            .run(kq_coreutils::Bytes::from(sample), ctx)
            .ok()
            .map(|out| (out.len(), out.is_empty() || out.ends_with_newline()));
        self.probe_memo.insert(key, result);
        result
    }

    /// Probes whether the command shrinks the sample enough to justify a
    /// rerun combiner (see [`Planner::rerun_shrink_threshold`]).
    fn shrinks_enough(
        &mut self,
        cmd: &kq_coreutils::Command,
        ctx: &ExecContext,
        sample: &str,
    ) -> bool {
        match self.probe(cmd, ctx, sample) {
            Some((out_len, _)) => {
                let ratio = out_len as f64 / sample.len().max(1) as f64;
                ratio <= self.rerun_shrink_threshold
            }
            None => false,
        }
    }

    /// Theorem 5 precondition: outputs terminate with newlines.
    fn outputs_streams(
        &mut self,
        cmd: &kq_coreutils::Command,
        ctx: &ExecContext,
        sample: &str,
    ) -> bool {
        match self.probe(cmd, ctx, sample) {
            Some((_, ends_with_newline)) => ends_with_newline,
            None => false,
        }
    }
}

/// FNV-1a over the sample, so the probe memo distinguishes plan calls
/// with different samples while staying O(sample) once per call site.
fn sample_fingerprint(sample: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in sample.as_bytes() {
        hash ^= u64::from(*b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash ^ (sample.len() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_script;
    use std::collections::HashMap as Map;

    fn sample_text() -> String {
        let mut s = String::new();
        for i in 0..200 {
            s.push_str(&format!("the quick brown fox {i} jumps over dogs\n"));
        }
        s
    }

    fn plan(script_text: &str) -> (PlannedScript, Planner) {
        let env: Map<String, String> = [("IN".to_owned(), "/in.txt".to_owned())].into();
        let script = parse_script(script_text, &env).unwrap();
        let ctx = ExecContext::default();
        ctx.vfs.write("/in.txt", sample_text());
        let mut planner = Planner::new(SynthesisConfig::default());
        let planned = planner.plan(&script, &ctx, &sample_text());
        (planned, planner)
    }

    #[test]
    fn wf_pipeline_plan_matches_paper() {
        // §2: wf.sh — tr -cs runs sequentially (rerun, no shrink); the
        // other four stages parallelize; tr A-Z a-z's concat combiner is
        // eliminated into the following sort.
        let (planned, _) =
            plan("cat $IN | tr -cs A-Za-z '\\n' | tr A-Z a-z | sort | uniq -c | sort -rn");
        let st = &planned.statements[0];
        assert_eq!(st.parallelized_counts(), (4, 5));
        assert_eq!(st.eliminated_count(), 1);
        assert!(
            !st.stages[0].mode.is_parallel(),
            "tr -cs must be sequential"
        );
        assert!(st.stages[1].mode.is_eliminated(), "tr A-Z a-z feeds sort");
        assert!(!st.stages[4].mode.is_eliminated(), "final combiner stays");
    }

    #[test]
    fn tr_d_newline_blocks_elimination() {
        // tr -d '\n' violates the Theorem 5 stream precondition; it still
        // parallelizes (concat combiner) but keeps its combiner.
        let (planned, _) = plan("cat $IN | tr -d '\\n' | wc -c");
        let st = &planned.statements[0];
        assert!(st.stages[0].mode.is_parallel());
        assert!(!st.stages[0].mode.is_eliminated());
    }

    #[test]
    fn no_combiner_stage_is_sequential() {
        let (planned, _) = plan("cat $IN | sed 1d | sort");
        let st = &planned.statements[0];
        assert!(!st.stages[0].mode.is_parallel());
        assert!(st.stages[1].mode.is_parallel());
        assert_eq!(st.parallelized_counts(), (1, 2));
    }

    #[test]
    fn synthesis_cache_reused_across_statements() {
        let (_, planner) = plan("cat $IN | sort\ncat $IN | sort");
        let sort_reports = planner
            .reports
            .iter()
            .filter(|r| r.command == "sort")
            .count();
        assert_eq!(sort_reports, 1);
    }

    #[test]
    fn last_stage_combiner_never_eliminated() {
        let (planned, _) = plan("cat $IN | tr A-Z a-z | tr a-z A-Z");
        let st = &planned.statements[0];
        assert!(st.stages[0].mode.is_eliminated());
        assert!(st.stages[1].mode.is_parallel());
        assert!(!st.stages[1].mode.is_eliminated());
    }

    #[test]
    fn manual_combiner_overrides_synthesis() {
        // `sed 1d` has no synthesizable combiner; a POSH-style manual
        // registration makes the stage parallel anyway (and a manual
        // rerun for `sed 1d` is wrong — this only checks plumbing; the
        // executor's serial-vs-parallel verification is what catches bad
        // manual combiners).
        use kq_dsl::ast::{Candidate, RecOp};
        use kq_synth::SynthesizedCombiner;
        let env: Map<String, String> = [("IN".to_owned(), "/in.txt".to_owned())].into();
        let script = parse_script("cat $IN | grep fox | sort", &env).unwrap();
        let ctx = ExecContext::default();
        ctx.vfs.write("/in.txt", sample_text());
        let mut planner = Planner::new(SynthesisConfig::default());
        planner.register_manual(
            "grep fox",
            SynthesizedCombiner::from_plausible(vec![Candidate::rec(RecOp::Concat)]),
        );
        let planned = planner.plan(&script, &ctx, &sample_text());
        assert!(planned.statements[0].stages[0].mode.is_parallel());
        // No synthesis report was produced for the manual command.
        assert!(planner.reports.iter().all(|r| r.command != "grep fox"));
    }

    #[test]
    fn lattice_short_circuits_stateless_commands_without_changing_the_plan() {
        let text = "cat $IN | grep fox | tr A-Z a-z | sort | uniq -c";
        let env: Map<String, String> = [("IN".to_owned(), "/in.txt".to_owned())].into();
        let script = parse_script(text, &env).unwrap();
        let shape = |planner: &mut Planner| {
            let ctx = ExecContext::default();
            ctx.vfs.write("/in.txt", sample_text());
            let planned = planner.plan(&script, &ctx, &sample_text());
            planned.statements[0]
                .stages
                .iter()
                .map(|s| {
                    (
                        s.mode.is_parallel(),
                        s.mode.is_eliminated(),
                        s.streamable,
                        s.line_bound,
                    )
                })
                .collect::<Vec<_>>()
        };
        let mut with = Planner::new(SynthesisConfig::default());
        let mut without = Planner::new(SynthesisConfig::default());
        without.use_lattice = false;
        assert_eq!(shape(&mut with), shape(&mut without));
        // grep and tr are stateless: neither synthesized with the lattice
        // on; both did with it off. sort/uniq -c always synthesize.
        assert_eq!(with.lattice_short_circuits, 2);
        assert_eq!(without.lattice_short_circuits, 0);
        let synthesized = |p: &Planner, c: &str| p.reports.iter().any(|r| r.command == c);
        assert!(!synthesized(&with, "grep fox"));
        assert!(!synthesized(&with, "tr A-Z a-z"));
        assert!(synthesized(&without, "grep fox"));
        assert!(synthesized(&with, "sort"));
        assert!(synthesized(&with, "uniq -c"));
    }

    #[test]
    fn grep_then_count_parallelizes_fully() {
        let (planned, _) = plan("cat $IN | grep fox | wc -l");
        let st = &planned.statements[0];
        assert_eq!(st.parallelized_counts(), (2, 2));
        // grep's concat feeds wc -l directly.
        assert_eq!(st.eliminated_count(), 1);
    }

    #[test]
    fn streamable_stages_are_chunk_local_commands() {
        // grep/tr/cut stream; sort (merge) and uniq -c (stitch) barrier;
        // the final stage is streamable even with nothing after it
        // (unlike Theorem 5 elimination, chunk-locality does not depend
        // on the successor).
        let (planned, _) = plan("cat $IN | grep fox | tr A-Z a-z | sort | uniq -c");
        let st = &planned.statements[0];
        let flags: Vec<bool> = st.stages.iter().map(|s| s.streamable).collect();
        assert_eq!(flags, vec![true, true, false, false]);
        let (planned, _) = plan("cat $IN | cut -d ' ' -f 1 | grep fox");
        let st = &planned.statements[0];
        assert!(st.stages.iter().all(|s| s.streamable));
    }

    #[test]
    fn tr_d_newline_is_not_streamable() {
        // Concat combiner but non-stream outputs: chunk boundaries would
        // land mid-line downstream.
        let (planned, _) = plan("cat $IN | tr -d '\\n' | wc -c");
        assert!(!planned.statements[0].stages[0].streamable);
    }

    #[test]
    fn stream_segments_fuse_streamable_runs_and_isolate_barriers() {
        let (planned, _) =
            plan("cat $IN | tr -cs A-Za-z '\\n' | tr A-Z a-z | grep o | sort | uniq -c | sort -rn");
        let st = &planned.statements[0];
        let segs = st.stream_segments(true);
        let shape: Vec<(StreamSegmentKind, std::ops::Range<usize>)> =
            segs.iter().map(|s| (s.kind, s.stages.clone())).collect();
        assert_eq!(
            shape,
            vec![
                (StreamSegmentKind::Sequential, 0..1), // tr -cs (rerun, no shrink)
                (StreamSegmentKind::Streaming, 1..3),  // tr | grep fused
                (StreamSegmentKind::Barrier, 3..4),    // sort
                (StreamSegmentKind::Barrier, 4..5),    // uniq -c
                (StreamSegmentKind::Barrier, 5..6),    // sort -rn
            ]
        );
        // Unfused: the streamable run splits into single-stage segments.
        let unfused = st.stream_segments(false);
        assert_eq!(unfused.len(), 6);
        assert!(unfused.iter().all(|s| s.stages.len() == 1));
    }

    #[test]
    fn prefix_bounded_stages_surface_their_line_bound() {
        let (planned, _) = plan("cat $IN | grep fox | head -n 1");
        let st = &planned.statements[0];
        assert_eq!(st.stages[0].line_bound, None);
        assert_eq!(st.stages[1].line_bound, Some(1));
        let (planned, _) = plan("cat $IN | sed 100q | sort");
        assert_eq!(planned.statements[0].stages[0].line_bound, Some(100));
        // Non-prefix-bounded line-windows stay unbounded.
        let (planned, _) = plan("cat $IN | sed 1d | sort");
        assert_eq!(planned.statements[0].stages[0].line_bound, None);
        let (planned, _) = plan("cat $IN | tail -n 1");
        assert_eq!(planned.statements[0].stages[0].line_bound, None);
    }

    #[test]
    fn bounded_stages_form_their_own_stream_segment_in_any_mode() {
        // head -n 1 plans parallel (First combiner); sed 100q plans with a
        // rerun combiner — both must segment as Bounded regardless.
        let (planned, _) = plan("cat $IN | grep fox | head -n 1");
        let segs = planned.statements[0].stream_segments(true);
        assert_eq!(
            segs.last().map(|s| s.kind),
            Some(StreamSegmentKind::Bounded { lines: 1 })
        );
        let (planned, _) = plan("cat $IN | sed 100q | sort");
        let segs = planned.statements[0].stream_segments(true);
        assert_eq!(segs[0].kind, StreamSegmentKind::Bounded { lines: 100 });
        assert_eq!(segs[0].stages, 0..1);
        // A bounded stage never fuses into a neighboring streamable run.
        let (planned, _) = plan("cat $IN | grep fox | head -n 2 | grep o");
        let segs = planned.statements[0].stream_segments(true);
        assert_eq!(segs.len(), 3);
        assert_eq!(segs[1].kind, StreamSegmentKind::Bounded { lines: 2 });
    }
}
