//! Dataflow-graph IR for the work-stealing executor.
//!
//! [`crate::plan::PlannedStatement::stream_segments`] describes a statement
//! as a list of segment kinds that the streaming executor interprets with
//! dedicated threads. This module reifies that description into an explicit
//! graph the shared scheduler ([`crate::scheduler`]) can execute: a
//! statement becomes a linear chain of [`DataflowNode`]s connected by
//! *edges* — bounded queues of line-aligned [`kq_stream::Bytes`] chunks —
//! where edge `i` carries node `i`'s output into node `i + 1` and the last
//! node's edge drains into the statement sink.
//!
//! # Node semantics
//!
//! | node | input | output | parallelism |
//! |---|---|---|---|
//! | [`NodeKind::Split`] | the statement's gathered input | line-aligned chunks, cut lazily | one task at a time |
//! | [`NodeKind::StageWorker`] | chunks | per-chunk outputs of a chunk-local command run, re-normalized by an incremental chunker and forwarded **in input order** | one scheduler task per chunk, any number in flight |
//! | [`NodeKind::Fold`] ([`FoldMode::Combine`]) | chunks | the stage's synthesized combiner folded over per-chunk outputs in input order; only the combined stream moves on, re-chunked | per-chunk map tasks in parallel, the fold itself in arrival order |
//! | [`NodeKind::Fold`] ([`FoldMode::Gather`]) | chunks | the command run once over the gathered input, re-chunked | one task at a time |
//! | [`NodeKind::BoundedConsumer`] | chunks, **in stream order**, only until `lines` complete lines exist | the command run once on the prefix, re-chunked | one task at a time |
//!
//! # Fusion rewrite
//!
//! The graph is first built *unfused* — one node per planned stage — and
//! adjacent chunk-local stages are then merged by a graph rewrite
//! ([`DataflowGraph::fuse_streamable`]): two neighboring
//! [`NodeKind::StageWorker`] nodes collapse into one whose stage range is
//! the concatenation, eliminating the edge between them (`grep | tr | cut`
//! becomes a single node piping each chunk through all three commands).
//! The rewrite is semantics-preserving by the chunk-local property — each
//! stage's combiner is plain concat over newline-terminated chunk outputs,
//! so per-chunk composition commutes with concatenation — and produces
//! exactly the shape [`stream_segments`]`(true)` describes, but as a
//! mechanical rewrite instead of a special case in segment planning.
//!
//! # Cancellation propagation
//!
//! Early exit is edge teardown propagated through the graph. When a
//! [`NodeKind::BoundedConsumer`] at position `b` meets its `lines` demand
//! before its input closes, the scheduler marks nodes `0..b` cancelled and
//! **clears** every edge feeding them *and* the bounded node's own input
//! edge — chunks already queued are dropped, not processed, which is the
//! piece of work the channel-based streaming executor could not reclaim
//! (its pool workers drain whatever was already buffered before noticing
//! the teardown). In-flight tasks at cancelled nodes discard their output
//! when they complete. The propagation matrix:
//!
//! | event | upstream nodes | queued chunks | downstream nodes | statement result |
//! |---|---|---|---|---|
//! | **bound satisfied** | cancelled; telemetry keeps the work actually done | dropped from every edge at or above the bound | receive the bounded stage's re-chunked prefix output, then end-of-input | `Ok`, with `StageTiming::early_exit` set |
//! | **command error** | cancelled | dropped from every edge of the statement | cancelled | the statement's first recorded error surfaces |
//! | **sibling statement error** | statements already running finish their own way; statements still waiting on dependencies are abandoned | — | — | the lowest-indexed failing statement's error surfaces |
//!
//! # Demand propagation
//!
//! [`DataflowNode::eager_flush`] mirrors the streaming executor's rule: a
//! `StageWorker` whose downstream chain reaches a bounded consumer through
//! chunk-local nodes only ships complete lines immediately instead of
//! re-normalizing to the chunk-size target, so a sparse stage (`grep` with
//! one match) cannot sit on the very lines that would satisfy the bound.
//!
//! [`stream_segments`]: crate::plan::PlannedStatement::stream_segments

use crate::plan::{PlannedStatement, StreamSegmentKind};
use std::ops::Range;

/// What a [`NodeKind::Fold`] node does with its gathered input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FoldMode {
    /// A parallel stage whose combiner is not plain concat (`sort`,
    /// `uniq -c`, `wc`): chunks map through the command in parallel and
    /// the outputs fold through the synthesized combiner in input order.
    Combine,
    /// A sequential stage (no combiner, or a rerun that does not pay):
    /// chunks gather into a rope and the command runs once.
    Gather,
}

/// The operation a dataflow node performs (see the [module docs](self)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// Cuts the statement input into line-aligned chunks.
    Split,
    /// A run of chunk-local stages: each chunk pipes through the run's
    /// commands independently; outputs flow on uncombined (Theorem 5
    /// applied per chunk).
    StageWorker,
    /// A stage that must see its whole input before emitting.
    Fold {
        /// How the gathered input turns into output.
        mode: FoldMode,
    },
    /// A prefix-bounded stage (`head -n k`, `sed kq`): consumes in-order
    /// chunks only until `lines` complete lines exist, then cancels
    /// everything upstream and runs the command once on the prefix.
    BoundedConsumer {
        /// The stage's prefix bound in complete lines.
        lines: usize,
    },
}

/// One node of a statement's dataflow graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataflowNode {
    /// The operation.
    pub kind: NodeKind,
    /// Stage index range within the statement (`start..end`, end
    /// exclusive). Empty (`0..0`) for [`NodeKind::Split`]; length > 1 only
    /// for fused [`NodeKind::StageWorker`] runs.
    pub stages: Range<usize>,
    /// Demand propagation: this node's output chain reaches a
    /// [`NodeKind::BoundedConsumer`] through chunk-local nodes only, so
    /// complete lines must ship immediately (see the [module docs](self)).
    pub eager_flush: bool,
}

/// A statement's dataflow graph: a linear node chain; edge `i` connects
/// node `i` to node `i + 1`, and the last node feeds the statement sink.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataflowGraph {
    /// The nodes, in stream order. `nodes[0]` is always [`NodeKind::Split`].
    pub nodes: Vec<DataflowNode>,
}

impl DataflowGraph {
    /// Builds the graph for one planned statement.
    ///
    /// The graph is assembled unfused — one node per stage — and, with
    /// `fuse_streamable`, adjacent [`NodeKind::StageWorker`] nodes are then
    /// merged by the [fusion rewrite](Self::fuse_streamable). The resulting
    /// node list (ignoring the leading `Split`) corresponds one-to-one with
    /// [`stream_segments`]`(fuse_streamable)`.
    ///
    /// [`stream_segments`]: crate::plan::PlannedStatement::stream_segments
    pub fn build(planned: &PlannedStatement, fuse_streamable: bool) -> DataflowGraph {
        let mut nodes = vec![DataflowNode {
            kind: NodeKind::Split,
            stages: 0..0,
            eager_flush: false,
        }];
        for segment in planned.stream_segments(false) {
            let kind = match segment.kind {
                StreamSegmentKind::Streaming => NodeKind::StageWorker,
                StreamSegmentKind::Barrier => NodeKind::Fold {
                    mode: FoldMode::Combine,
                },
                StreamSegmentKind::Sequential => NodeKind::Fold {
                    mode: FoldMode::Gather,
                },
                StreamSegmentKind::Bounded { lines } => NodeKind::BoundedConsumer { lines },
            };
            nodes.push(DataflowNode {
                kind,
                stages: segment.stages,
                eager_flush: false,
            });
        }
        let mut graph = DataflowGraph { nodes };
        if fuse_streamable {
            graph.fuse_streamable();
        }
        graph.compute_eager_flush();
        graph
    }

    /// The fusion rewrite: merges every adjacent pair of
    /// [`NodeKind::StageWorker`] nodes into one node spanning both stage
    /// ranges, deleting the edge between them. Applied to fixpoint, this
    /// turns each maximal run of chunk-local stages into a single node.
    pub fn fuse_streamable(&mut self) {
        let mut i = 0;
        while i + 1 < self.nodes.len() {
            let fusable = self.nodes[i].kind == NodeKind::StageWorker
                && self.nodes[i + 1].kind == NodeKind::StageWorker;
            if fusable {
                debug_assert_eq!(self.nodes[i].stages.end, self.nodes[i + 1].stages.start);
                self.nodes[i].stages.end = self.nodes[i + 1].stages.end;
                self.nodes.remove(i + 1);
            } else {
                i += 1;
            }
        }
    }

    /// Checks the structural invariants every well-formed statement graph
    /// satisfies, returning one human-readable violation per breach (empty
    /// means valid). The scheduler asserts this under `debug_assertions`
    /// right after building its graphs, and `kumquat check` runs it as the
    /// graph-verification layer of static analysis.
    ///
    /// Invariants:
    ///
    /// 1. the graph starts with exactly one [`NodeKind::Split`] owning no
    ///    stages, and no other `Split` appears;
    /// 2. the remaining nodes' stage ranges partition `0..n_stages`
    ///    contiguously and in order — no gap, overlap, or inversion;
    /// 3. only [`NodeKind::StageWorker`] nodes (fused chunk-local runs) may
    ///    span more than one stage;
    /// 4. [`DataflowNode::eager_flush`] agrees with the canonical
    ///    right-to-left demand propagation — a stale flag after a rewrite
    ///    would let a sparse stage sit on the lines a bounded consumer
    ///    needs;
    /// 5. every edge carries at least one chunk of queue credit
    ///    (`queue_seed >= 1`) — a [`NodeKind::Fold`] buffers its whole
    ///    input before emitting, so a zero-credit edge upstream of a fold
    ///    deadlocks the statement.
    pub fn validate(&self, n_stages: usize, queue_seed: usize) -> Vec<String> {
        let mut problems = Vec::new();
        match self.nodes.first() {
            Some(n) if n.kind == NodeKind::Split && n.stages == (0..0) => {}
            Some(n) => problems.push(format!(
                "node 0 must be a Split owning no stages, got {:?} over stages {:?}",
                n.kind, n.stages
            )),
            None => problems.push("graph has no nodes".to_owned()),
        }
        let mut cursor = 0usize;
        for (i, node) in self.nodes.iter().enumerate().skip(1) {
            if node.kind == NodeKind::Split {
                problems.push(format!("node {i} is a Split; only node 0 may split"));
                continue;
            }
            if node.stages.start != cursor {
                problems.push(format!(
                    "node {i} covers stages {:?} but the previous node ended at stage {cursor}",
                    node.stages
                ));
            }
            if node.stages.end <= node.stages.start {
                problems.push(format!(
                    "node {i} ({:?}) owns an empty or inverted stage range {:?}",
                    node.kind, node.stages
                ));
            }
            if node.stages.len() > 1 && node.kind != NodeKind::StageWorker {
                problems.push(format!(
                    "node {i} ({:?}) spans stages {:?}; only fused StageWorker runs may \
                     span more than one stage",
                    node.kind, node.stages
                ));
            }
            cursor = cursor.max(node.stages.end);
        }
        if cursor != n_stages {
            problems.push(format!(
                "graph covers stages 0..{cursor} but the statement has {n_stages} stage(s)"
            ));
        }
        let mut canonical = self.clone();
        canonical.compute_eager_flush();
        for (i, (have, want)) in self.nodes.iter().zip(&canonical.nodes).enumerate() {
            if have.eager_flush != want.eager_flush {
                problems.push(format!(
                    "node {i} has eager_flush={} but demand propagation requires {}",
                    have.eager_flush, want.eager_flush
                ));
            }
        }
        if queue_seed == 0 && self.nodes.len() > 1 {
            problems.push(
                "queue credit is 0: no edge can carry a chunk, so every fold deadlocks".to_owned(),
            );
        }
        problems
    }

    /// Recomputes [`DataflowNode::eager_flush`] right-to-left: a node
    /// flushes eagerly when its successor is a bounded consumer, or is a
    /// chunk-local node that itself flushes eagerly. Folds need their whole
    /// input regardless, so the propagation stops there.
    fn compute_eager_flush(&mut self) {
        for i in (0..self.nodes.len().saturating_sub(1)).rev() {
            self.nodes[i].eager_flush = match self.nodes[i + 1].kind {
                NodeKind::BoundedConsumer { .. } => true,
                NodeKind::StageWorker => self.nodes[i + 1].eager_flush,
                NodeKind::Fold { .. } | NodeKind::Split => false,
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_script;
    use crate::plan::Planner;
    use kq_coreutils::ExecContext;
    use kq_synth::SynthesisConfig;
    use std::collections::HashMap;

    fn sample_text() -> String {
        let mut s = String::new();
        for i in 0..200 {
            s.push_str(&format!("the quick brown fox {i} jumps over dogs\n"));
        }
        s
    }

    fn graph(script_text: &str, fuse: bool) -> DataflowGraph {
        let env: HashMap<String, String> = HashMap::new();
        let script = parse_script(script_text, &env).unwrap();
        let ctx = ExecContext::default();
        ctx.vfs.write("/in.txt", sample_text());
        let mut planner = Planner::new(SynthesisConfig::default());
        let planned = planner.plan(&script, &ctx, &sample_text());
        DataflowGraph::build(&planned.statements[0], fuse)
    }

    #[test]
    fn graph_mirrors_stream_segments() {
        let g = graph(
            "cat /in.txt | tr -cs A-Za-z '\\n' | tr A-Z a-z | grep o | sort | uniq -c | sort -rn",
            true,
        );
        let shape: Vec<(NodeKind, Range<usize>)> =
            g.nodes.iter().map(|n| (n.kind, n.stages.clone())).collect();
        assert_eq!(
            shape,
            vec![
                (NodeKind::Split, 0..0),
                (
                    NodeKind::Fold {
                        mode: FoldMode::Gather
                    },
                    0..1
                ), // tr -cs: rerun, no shrink
                (NodeKind::StageWorker, 1..3), // tr | grep fused by the rewrite
                (
                    NodeKind::Fold {
                        mode: FoldMode::Combine
                    },
                    3..4
                ), // sort
                (
                    NodeKind::Fold {
                        mode: FoldMode::Combine
                    },
                    4..5
                ), // uniq -c
                (
                    NodeKind::Fold {
                        mode: FoldMode::Combine
                    },
                    5..6
                ), // sort -rn
            ]
        );
    }

    #[test]
    fn unfused_graph_has_one_node_per_stage() {
        let g = graph(
            "cat /in.txt | grep o | tr A-Z a-z | cut -c 1-5 | sort",
            false,
        );
        // Split + 4 stage nodes, streamables unfused.
        assert_eq!(g.nodes.len(), 5);
        assert!(g.nodes[1..4]
            .iter()
            .all(|n| n.kind == NodeKind::StageWorker && n.stages.len() == 1));
    }

    #[test]
    fn fusion_rewrite_merges_maximal_streamable_runs() {
        let mut g = graph(
            "cat /in.txt | grep o | tr A-Z a-z | cut -c 1-5 | sort",
            false,
        );
        g.fuse_streamable();
        let workers: Vec<Range<usize>> = g
            .nodes
            .iter()
            .filter(|n| n.kind == NodeKind::StageWorker)
            .map(|n| n.stages.clone())
            .collect();
        assert_eq!(workers, vec![0..3], "three chunk-local stages fuse");
    }

    #[test]
    fn bounded_stage_becomes_bounded_consumer_node() {
        let g = graph("cat /in.txt | grep fox | head -n 2 | grep o", true);
        assert_eq!(g.nodes[2].kind, NodeKind::BoundedConsumer { lines: 2 });
        // A bounded node never fuses into a neighboring streamable run.
        assert_eq!(g.nodes.len(), 4);
    }

    #[test]
    fn validate_accepts_built_graphs_and_rejects_broken_ones() {
        let script = "cat /in.txt | grep fox | tr A-Z a-z | sort | head -n 2";
        for fuse in [false, true] {
            let g = graph(script, fuse);
            assert_eq!(g.validate(4, 8), Vec::<String>::new());
        }

        let mut g = graph(script, true);
        // A gap in the stage partition.
        let last = g.nodes.len() - 1;
        g.nodes[last].stages.start += 1;
        assert!(g.validate(4, 8).iter().any(|p| p.contains("previous node")));

        // A fold pretending to span a fused run.
        let mut g = graph(script, true);
        let fold = g
            .nodes
            .iter()
            .position(|n| matches!(n.kind, NodeKind::Fold { .. }))
            .unwrap();
        g.nodes[fold - 1].stages.end -= 1;
        g.nodes[fold].stages.start -= 1;
        assert!(g
            .validate(4, 8)
            .iter()
            .any(|p| p.contains("span more than one stage")));

        // A stale eager_flush flag after a rewrite.
        let mut g = graph(script, true);
        g.nodes[0].eager_flush = !g.nodes[0].eager_flush;
        assert!(g.validate(4, 8).iter().any(|p| p.contains("eager_flush")));

        // Zero queue credit deadlocks every fold.
        let g = graph(script, true);
        assert!(g.validate(4, 0).iter().any(|p| p.contains("queue credit")));

        // Wrong stage count.
        let g = graph(script, true);
        assert!(g
            .validate(5, 8)
            .iter()
            .any(|p| p.contains("has 5 stage(s)")));
    }

    #[test]
    fn eager_flush_propagates_through_chunk_local_nodes_only() {
        let g = graph("cat /in.txt | grep fox | grep o | head -n 1", false);
        // Split, grep, grep, head: both greps and the split flush eagerly.
        assert_eq!(
            g.nodes.iter().map(|n| n.eager_flush).collect::<Vec<_>>(),
            vec![true, true, true, false]
        );
        let g = graph("cat /in.txt | sort | head -n 1", true);
        // The fold blocks the propagation: split need not flush eagerly.
        assert_eq!(
            g.nodes.iter().map(|n| n.eager_flush).collect::<Vec<_>>(),
            vec![false, true, false]
        );
    }
}
