//! Distributed-execution cost model.
//!
//! The paper's combiners are exactly what distributed shells (POSH [18],
//! PaSh [26]) need to run pipeline stages on *multiple machines*: split
//! the stream across nodes, run the unmodified command per node, and
//! combine. This module extends the measured-cost scheduler
//! ([`crate::sim`]) with a network: it replays a measured [`TimingLog`]
//! on a cluster of `n` nodes × `w` workers connected by finite-bandwidth
//! links, and prices the two combine placements:
//!
//! * **central** — every piece output travels to the coordinator, which
//!   runs the synthesized combiner once (what a naive port of the
//!   single-machine executor would do);
//! * **hierarchical** — each node combines its local pieces first and
//!   ships only the *combined* output; the coordinator merges the `n`
//!   node-level results. Sound because KumQuat combiners are associative
//!   over adjacent pieces (the same property the k-way tree fold relies
//!   on, §3.5).
//!
//! The model shows the interaction the ablation bench quantifies: for
//! *shrinking* combiners (`uniq -c`'s stitch2, `sort`'s duplicate-free
//! merges, `wc -l`'s sums) hierarchical combining moves a fraction of the
//! bytes and wins by up to the shrink factor; for `concat` there is
//! nothing to shrink and the placements tie.

use crate::exec::TimingLog;
use std::time::Duration;

/// Cluster shape and network parameters.
#[derive(Debug, Clone)]
pub struct ClusterParams {
    /// Number of nodes; node 0 is the coordinator holding the input.
    pub nodes: usize,
    /// Worker slots per node.
    pub workers_per_node: usize,
    /// One-way message latency per transfer.
    pub net_latency: Duration,
    /// Per-link bandwidth in bytes/second (the coordinator's NIC is the
    /// shared bottleneck for scatter and central gather).
    pub net_bandwidth: f64,
    /// Fixed overhead per stage invocation per node (process spawn).
    pub spawn: Duration,
}

impl ClusterParams {
    /// A `nodes × workers` cluster over a 1 Gbit/s network with 100 µs
    /// latency — commodity-cluster defaults.
    pub fn commodity(nodes: usize, workers_per_node: usize) -> ClusterParams {
        ClusterParams {
            nodes,
            workers_per_node,
            net_latency: Duration::from_micros(100),
            net_bandwidth: 125_000_000.0, // 1 Gbit/s in bytes/s
            spawn: Duration::from_micros(300),
        }
    }

    fn transfer(&self, bytes: f64) -> Duration {
        if bytes <= 0.0 {
            return Duration::ZERO;
        }
        self.net_latency + Duration::from_secs_f64(bytes / self.net_bandwidth)
    }
}

/// Where the combiner runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CombinePlacement {
    /// All piece outputs travel to the coordinator; one combine.
    Central,
    /// Per-node combine first, then a coordinator merge of `n` results.
    Hierarchical,
}

/// Predicted cost of one distributed schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DistCosts {
    /// Predicted wall-clock.
    pub wall: Duration,
    /// Bytes moved over the network.
    pub net_bytes: u64,
}

/// Greedy longest-processing-time assignment of piece durations onto
/// `slots` workers; returns the makespan.
fn makespan(piece_times: &[Duration], slots: usize) -> Duration {
    if piece_times.is_empty() || slots == 0 {
        return Duration::ZERO;
    }
    let mut sorted: Vec<Duration> = piece_times.to_vec();
    sorted.sort_unstable_by(|a, b| b.cmp(a));
    let mut loads = vec![Duration::ZERO; slots.min(sorted.len())];
    for t in sorted {
        let min = loads.iter_mut().min().expect("at least one slot");
        *min += t;
    }
    loads.into_iter().max().unwrap_or(Duration::ZERO)
}

/// Replays a measured log on the cluster and prices the schedule.
///
/// The log must come from
/// [`run_parallel_measured`](crate::exec::run_parallel_measured) with
/// elimination *off* and `workers = nodes × workers_per_node`, so each
/// stage's piece list matches the cluster's total slot count and every
/// stage records its real combine cost.
pub fn distributed_time(
    log: &TimingLog,
    cluster: &ClusterParams,
    placement: CombinePlacement,
) -> DistCosts {
    let n = cluster.nodes.max(1);
    let mut wall = Duration::ZERO;
    let mut net_bytes = 0u64;
    for stages in &log.statements {
        for st in stages {
            if !st.parallel || n == 1 {
                // Sequential stage (or single node): runs on the
                // coordinator where the data already lives.
                wall += cluster.spawn + st.piece_times.iter().sum::<Duration>() + st.combine_time;
                continue;
            }
            // Scatter: (n-1)/n of the input leaves the coordinator's NIC.
            let remote_in = st.bytes_in as f64 * (n as f64 - 1.0) / n as f64;
            wall += cluster.transfer(remote_in);
            net_bytes += remote_in as u64;

            // Compute: pieces spread over all slots.
            let slots = n * cluster.workers_per_node.max(1);
            wall += cluster.spawn + makespan(&st.piece_times, slots);

            // Gather + combine.
            let out = st.bytes_out as f64;
            let piece_out_total = (st.bytes_out_pieces as f64).max(out);
            match placement {
                CombinePlacement::Central => {
                    // Every piece output travels: the pre-combine total.
                    let remote_out = piece_out_total * (n as f64 - 1.0) / n as f64;
                    wall += cluster.transfer(remote_out);
                    net_bytes += remote_out as u64;
                    wall += st.combine_time;
                }
                CombinePlacement::Hierarchical => {
                    // Each node combines its local share first (the
                    // combine cost is linear in bytes for every DSL
                    // combiner, so a 1/n share costs ~1/n; node combines
                    // run concurrently).
                    let local_combine = st.combine_time.div_f64(n as f64);
                    wall += local_combine;
                    // Only the node-level results move: the combined
                    // output shrinks to `bytes_out`, of which (n-1)/n is
                    // remote.
                    let shrunk = out * (n as f64 - 1.0) / n as f64;
                    wall += cluster.transfer(shrunk);
                    net_bytes += shrunk as u64;
                    // Coordinator merges n node results: n/pieces of the
                    // original combine work.
                    let pieces = st.piece_times.len().max(1) as f64;
                    wall += st.combine_time.mul_f64((n as f64 / pieces).min(1.0));
                }
            }
        }
    }
    DistCosts { wall, net_bytes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::StageTiming;

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    /// A parallel stage: 8 pieces of 10 ms, 1 MiB in/out of the pieces,
    /// combined output `bytes_out` (the shrink), combine `combine_ms`.
    fn stage(bytes_out: usize, combine_ms: u64) -> StageTiming {
        StageTiming {
            label: "stage".into(),
            parallel: true,
            eliminated: false,
            piece_times: vec![ms(10); 8],
            combine_time: ms(combine_ms),
            bytes_in: 1 << 20,
            bytes_out,
            bytes_out_pieces: 1 << 20,
            early_exit: None,
            queue: None,
            spill: None,
        }
    }

    fn log_of(st: StageTiming) -> TimingLog {
        TimingLog {
            statements: vec![vec![st]],
            adaptive: None,
        }
    }

    #[test]
    fn single_node_is_serial_plus_combine() {
        let log = log_of(stage(1 << 20, 4));
        let cluster = ClusterParams::commodity(1, 8);
        let got = distributed_time(&log, &cluster, CombinePlacement::Central);
        assert_eq!(got.net_bytes, 0, "one node moves nothing");
        assert!(got.wall >= ms(84), "8×10ms + 4ms combine: {:?}", got.wall);
    }

    #[test]
    fn makespan_balances_greedily() {
        let times = [ms(9), ms(1), ms(1), ms(1), ms(8), ms(2)];
        assert_eq!(makespan(&times, 2), ms(11)); // {9,2} vs {8,1,1,1}
        assert_eq!(makespan(&times, 1), ms(22));
        assert_eq!(makespan(&times, 100), ms(9));
    }

    #[test]
    fn shrinking_combiner_prefers_hierarchical() {
        // Output shrinks to 4 KiB (a wc/uniq-style reduction): the
        // central placement ships the same 4 KiB, but hierarchical also
        // parallelizes the combine — and for stages whose *piece* outputs
        // are large relative to the final output the byte savings
        // dominate. Model both effects via a large piece count.
        let log = log_of(stage(4 << 10, 40));
        let cluster = ClusterParams::commodity(4, 4);
        let central = distributed_time(&log, &cluster, CombinePlacement::Central);
        let hier = distributed_time(&log, &cluster, CombinePlacement::Hierarchical);
        assert!(
            hier.wall < central.wall,
            "hierarchical {:?} !< central {:?}",
            hier.wall,
            central.wall
        );
        assert!(
            hier.net_bytes < central.net_bytes,
            "hierarchical must ship fewer bytes: {} vs {}",
            hier.net_bytes,
            central.net_bytes
        );
    }

    #[test]
    fn more_nodes_move_more_input_bytes() {
        let log = log_of(stage(1 << 20, 4));
        let two = distributed_time(
            &log,
            &ClusterParams::commodity(2, 4),
            CombinePlacement::Central,
        );
        let eight = distributed_time(
            &log,
            &ClusterParams::commodity(8, 4),
            CombinePlacement::Central,
        );
        assert!(eight.net_bytes > two.net_bytes);
    }

    #[test]
    fn sequential_stage_is_network_free() {
        let st = StageTiming {
            label: "seq".into(),
            parallel: false,
            eliminated: false,
            piece_times: vec![ms(30)],
            combine_time: Duration::ZERO,
            bytes_in: 1 << 20,
            bytes_out: 1 << 20,
            bytes_out_pieces: 1 << 20,
            early_exit: None,
            queue: None,
            spill: None,
        };
        let got = distributed_time(
            &log_of(st),
            &ClusterParams::commodity(8, 4),
            CombinePlacement::Central,
        );
        assert_eq!(got.net_bytes, 0);
    }
}
