//! Shell script parsing.
//!
//! The benchmark scripts are sequences of statements, one per line (or
//! separated by `;`), each either a variable assignment or a pipeline with
//! optional input/output redirections:
//!
//! ```text
//! IN=${IN:-/inputs/books.txt}
//! cat $IN | tr -cs A-Za-z '\n' | tr A-Z a-z | sort | uniq -c > counts
//! sort -rn counts
//! ```
//!
//! A leading `cat FILE...` (or a `< FILE` redirection) becomes the
//! statement's [`InputSource`] rather than a stage, matching the paper's
//! stage counting ("excluding initial cat commands that read input files",
//! Table 1 footnote).

use kq_coreutils::{split_words, CmdError, Command};
use std::collections::HashMap;
use std::fmt;

/// A position range in the original script text.
///
/// Offsets are byte offsets into the text given to [`parse_script`];
/// `line` and `col` are 1-based (column counts characters, tab = 1).
/// Statement spans are exact. Positions *inside* a statement (stage
/// spans, error columns) are computed on the variable-expanded text and
/// re-anchored at the statement start, so they are exact for
/// variable-free statements and shift by the expansion delta after a
/// `$VAR` — still inside the right statement, at worst off within it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SourceSpan {
    /// 1-based source line.
    pub line: usize,
    /// 1-based character column of the span's first character.
    pub col: usize,
    /// Byte offset of the span's first byte.
    pub offset: usize,
    /// Byte length of the spanned source text.
    pub len: usize,
}

/// A parse failure carrying its source position (see [`SourceSpan`] for
/// the exactness contract).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 0-based statement ordinal (displayed 1-based).
    pub statement: usize,
    /// 1-based source line.
    pub line: usize,
    /// 1-based character column.
    pub col: usize,
    /// Byte offset into the script text.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "statement {}, line {}, col {}: {}",
            self.statement + 1,
            self.line,
            self.col,
            self.message
        )
    }
}

impl std::error::Error for ParseError {}

impl From<ParseError> for CmdError {
    fn from(e: ParseError) -> CmdError {
        CmdError::new("sh", e.to_string())
    }
}

/// Where a statement reads its input from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InputSource {
    /// No input (source commands like `ls`, or commands reading files
    /// themselves).
    None,
    /// Files named by an initial `cat` or a `< file` redirection.
    Files(Vec<String>),
}

/// One pipeline stage: a parsed command.
#[derive(Debug)]
pub struct Stage {
    /// The runnable command.
    pub command: Command,
    /// Source position of the stage's pipe segment (see [`SourceSpan`]).
    pub span: SourceSpan,
}

/// A statement: a pipeline plus its input source and optional `> file`
/// output redirection.
#[derive(Debug)]
pub struct Statement {
    /// The pipeline stages, in order. May be empty when the statement was
    /// only an input/output plumbing line (`cat a > b`).
    pub stages: Vec<Stage>,
    /// Input source.
    pub input: InputSource,
    /// Output redirection target, `None` when the statement's output is
    /// the script's output.
    pub output: Option<String>,
    /// Source position of the whole statement (exact byte offsets into
    /// the original text).
    pub span: SourceSpan,
}

impl Statement {
    /// True when this statement is a *pipeline* in the paper's counting
    /// sense (two or more commands connected by pipes, including the
    /// initial `cat`).
    pub fn is_pipeline(&self) -> bool {
        let cat = match &self.input {
            InputSource::Files(_) => 1,
            InputSource::None => 0,
        };
        cat + self.stages.len() >= 2
    }
}

/// A parsed script.
#[derive(Debug, Default)]
pub struct Script {
    /// The statements, in execution order.
    pub statements: Vec<Statement>,
}

impl Script {
    /// Total stage count (paper convention: commands excluding initial
    /// `cat`s).
    pub fn stage_count(&self) -> usize {
        self.statements.iter().map(|s| s.stages.len()).sum()
    }
}

/// Expands `$VAR`, `${VAR}`, and `${VAR:-default}` against `env`, with
/// shell quoting semantics: no expansion inside single quotes, and `\$`
/// suppresses expansion elsewhere (so `awk '$1 >= 1000'` and
/// `awk "\$1 >= 2"` both reach the command untouched).
pub fn expand_vars(text: &str, env: &HashMap<String, String>) -> String {
    let mut out = String::with_capacity(text.len());
    let chars: Vec<char> = text.chars().collect();
    let mut i = 0;
    let mut in_single = false;
    let mut in_double = false;
    while i < chars.len() {
        match chars[i] {
            '\'' if !in_double => {
                in_single = !in_single;
                out.push('\'');
                i += 1;
                continue;
            }
            '"' if !in_single => {
                in_double = !in_double;
                out.push('"');
                i += 1;
                continue;
            }
            '\\' if !in_single && chars.get(i + 1) == Some(&'$') => {
                out.push('\\');
                out.push('$');
                i += 2;
                continue;
            }
            _ => {}
        }
        if in_single || chars[i] != '$' || i + 1 >= chars.len() {
            out.push(chars[i]);
            i += 1;
            continue;
        }
        if chars[i + 1] == '{' {
            let Some(close_rel) = chars[i + 2..].iter().position(|&c| c == '}') else {
                out.push(chars[i]);
                i += 1;
                continue;
            };
            let body: String = chars[i + 2..i + 2 + close_rel].iter().collect();
            let (name, default) = match body.split_once(":-") {
                Some((n, d)) => (n.to_owned(), Some(d.to_owned())),
                None => (body.clone(), None),
            };
            match env.get(&name) {
                Some(v) => out.push_str(v),
                None => out.push_str(&default.unwrap_or_default()),
            }
            i += 2 + close_rel + 1;
        } else {
            let start = i + 1;
            let mut end = start;
            while end < chars.len() && (chars[end].is_ascii_alphanumeric() || chars[end] == '_') {
                end += 1;
            }
            if end == start {
                out.push('$');
                i += 1;
                continue;
            }
            let name: String = chars[start..end].iter().collect();
            if let Some(v) = env.get(&name) {
                out.push_str(v);
            }
            i = end;
        }
    }
    out
}

/// Parses a script. `env` provides initial variable bindings (e.g. `IN`);
/// assignments inside the script update it. Errors carry source
/// positions ([`ParseError`]).
pub fn parse_script(text: &str, env: &HashMap<String, String>) -> Result<Script, ParseError> {
    let mut env = env.clone();
    let mut script = Script::default();
    let mut line_start = 0usize;
    for (line_idx, raw_line) in text.split_inclusive('\n').enumerate() {
        let line = raw_line
            .strip_suffix('\n')
            .unwrap_or(raw_line)
            .strip_suffix('\r')
            .unwrap_or(raw_line);
        let stripped = strip_comment(line);
        for (start, end) in split_unquoted_ranges(stripped, ';') {
            let piece = &stripped[start..end];
            let trimmed = piece.trim();
            if trimmed.is_empty() {
                continue;
            }
            let lead = piece.len() - piece.trim_start().len();
            let span = SourceSpan {
                line: line_idx + 1,
                col: stripped[..start + lead].chars().count() + 1,
                offset: line_start + start + lead,
                len: trimmed.len(),
            };
            // Variable assignment statement: VAR=VALUE (no command after).
            if let Some((name, value)) = try_assignment(trimmed) {
                let expanded = expand_vars(&value, &env);
                env.insert(name, trim_quotes(&expanded));
                continue;
            }
            let expanded = expand_vars(trimmed, &env);
            let statement = script.statements.len();
            script
                .statements
                .push(parse_statement(&expanded, span, statement)?);
        }
        line_start += raw_line.len();
    }
    Ok(script)
}

fn trim_quotes(s: &str) -> String {
    let t = s.trim();
    if (t.starts_with('"') && t.ends_with('"') && t.len() >= 2)
        || (t.starts_with('\'') && t.ends_with('\'') && t.len() >= 2)
    {
        t[1..t.len() - 1].to_owned()
    } else {
        t.to_owned()
    }
}

fn strip_comment(line: &str) -> &str {
    // A '#' outside quotes starts a comment.
    let mut in_single = false;
    let mut in_double = false;
    let mut escaped = false;
    for (idx, c) in line.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if !in_single => escaped = true,
            '\'' if !in_double => in_single = !in_single,
            '"' if !in_single => in_double = !in_double,
            '#' if !in_single && !in_double => {
                // Keep shebangs and `$#`-style text out of scope; the
                // corpus only has full-line or trailing comments.
                return &line[..idx];
            }
            _ => {}
        }
    }
    line
}

/// Splits `text` at unquoted, unescaped occurrences of `sep`, returning
/// the byte ranges *between* separators (so callers keep exact source
/// offsets for spans and error positions).
fn split_unquoted_ranges(text: &str, sep: char) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut start = 0;
    let mut in_single = false;
    let mut in_double = false;
    let mut escaped = false;
    for (idx, c) in text.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if !in_single => escaped = true,
            '\'' if !in_double => in_single = !in_single,
            '"' if !in_single => in_double = !in_double,
            c if c == sep && !in_single && !in_double => {
                out.push((start, idx));
                start = idx + c.len_utf8();
            }
            _ => {}
        }
    }
    out.push((start, text.len()));
    out
}

fn try_assignment(piece: &str) -> Option<(String, String)> {
    let eq = piece.find('=')?;
    let name = &piece[..eq];
    if name.is_empty()
        || !name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
        || name.chars().next().is_some_and(|c| c.is_ascii_digit())
    {
        return None;
    }
    let value = &piece[eq + 1..];
    if value.contains('|') && !value.starts_with('"') && !value.starts_with('\'') {
        return None;
    }
    Some((name.to_owned(), value.to_owned()))
}

fn parse_statement(
    text: &str,
    span: SourceSpan,
    statement: usize,
) -> Result<Statement, ParseError> {
    // Positions inside the (expanded) statement re-anchor at the
    // statement's source span — exact when no variable expanded before
    // them (see `SourceSpan`).
    let err_at = |expanded_offset: usize, message: &str| ParseError {
        statement,
        line: span.line,
        col: span.col + text[..expanded_offset.min(text.len())].chars().count(),
        offset: span.offset + expanded_offset.min(span.len),
        message: message.to_owned(),
    };
    let span_at = |range: (usize, usize)| SourceSpan {
        line: span.line,
        col: span.col + text[..range.0].chars().count(),
        offset: span.offset + range.0.min(span.len),
        len: range.1 - range.0,
    };
    // Pipe segments as source ranges; redirections shrink them in place.
    let mut segments = split_unquoted_ranges(text, '|');
    // Output redirection on the last segment.
    let mut output = None;
    if let Some((ls, le)) = segments.last_mut() {
        if let Some(gt) = find_unquoted(&text[*ls..*le], '>') {
            let target = text[*ls + gt + 1..*le].trim().to_owned();
            if target.is_empty() {
                return Err(err_at(*ls + gt, "missing redirection target"));
            }
            *le = *ls + gt;
            output = Some(target);
        }
    }
    // Input redirection on the first segment.
    let mut input = InputSource::None;
    if let Some((fs, fe)) = segments.first_mut() {
        if let Some(lt) = find_unquoted(&text[*fs..*fe], '<') {
            let target = text[*fs + lt + 1..*fe].trim().to_owned();
            if target.is_empty() {
                return Err(err_at(*fs + lt, "missing input redirection"));
            }
            *fe = *fs + lt;
            input = InputSource::Files(vec![target]);
        }
    }
    let segment_count = segments.len();
    let mut stages = Vec::new();
    for (i, (s, e)) in segments.into_iter().enumerate() {
        let raw = &text[s..e];
        let seg = raw.trim();
        let seg_off = s + (raw.len() - raw.trim_start().len());
        if seg.is_empty() {
            if i == 0 && matches!(input, InputSource::Files(_)) {
                // `< file cmd` parsed as empty first segment — not in the
                // corpus; treat an empty segment elsewhere as an error.
                continue;
            }
            return Err(err_at(s, "empty pipeline segment"));
        }
        let words = split_words(seg).map_err(|e| err_at(seg_off, &e))?;
        // Initial `cat FILE...` is the input source, not a stage.
        if i == 0
            && words.first().is_some_and(|w| w == "cat")
            && words.len() > 1
            && segment_count > 1
            && matches!(input, InputSource::None)
        {
            input = InputSource::Files(words[1..].to_vec());
            continue;
        }
        stages.push(Stage {
            command: kq_coreutils::from_argv(&words)
                .map_err(|e| err_at(seg_off, &e.to_string()))?,
            span: span_at((seg_off, seg_off + seg.len())),
        });
    }
    Ok(Statement {
        stages,
        input,
        output,
        span,
    })
}

fn find_unquoted(text: &str, needle: char) -> Option<usize> {
    let mut in_single = false;
    let mut in_double = false;
    let mut escaped = false;
    for (idx, c) in text.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if !in_single => escaped = true,
            '\'' if !in_double => in_single = !in_single,
            '"' if !in_single => in_double = !in_double,
            c if c == needle && !in_single && !in_double => return Some(idx),
            _ => {}
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env(pairs: &[(&str, &str)]) -> HashMap<String, String> {
        pairs
            .iter()
            .map(|(k, v)| ((*k).to_owned(), (*v).to_owned()))
            .collect()
    }

    #[test]
    fn parses_figure1_pipeline() {
        let script = parse_script(
            "cat $IN | tr -cs A-Za-z '\\n' | tr A-Z a-z | sort | uniq -c | sort -rn",
            &env(&[("IN", "/in/books.txt")]),
        )
        .unwrap();
        assert_eq!(script.statements.len(), 1);
        let st = &script.statements[0];
        assert_eq!(
            st.input,
            InputSource::Files(vec!["/in/books.txt".to_owned()])
        );
        assert_eq!(st.stages.len(), 5); // cat excluded
        assert_eq!(st.stages[0].command.program(), "tr");
        assert_eq!(st.stages[4].command.display(), "sort -rn");
        assert!(st.is_pipeline());
        assert_eq!(script.stage_count(), 5);
    }

    #[test]
    fn variable_defaults_expand() {
        let script =
            parse_script("IN=${IN:-/default.txt}\ncat $IN | wc -l", &HashMap::new()).unwrap();
        assert_eq!(
            script.statements[0].input,
            InputSource::Files(vec!["/default.txt".to_owned()])
        );
    }

    #[test]
    fn provided_env_overrides_default() {
        let script = parse_script(
            "IN=${IN:-/default.txt}\ncat $IN | wc -l",
            &env(&[("IN", "/given.txt")]),
        )
        .unwrap();
        assert_eq!(
            script.statements[0].input,
            InputSource::Files(vec!["/given.txt".to_owned()])
        );
    }

    #[test]
    fn redirections_parse() {
        let script = parse_script(
            "cat /in.txt | sort > sorted\npaste sorted sorted | uniq",
            &HashMap::new(),
        )
        .unwrap();
        assert_eq!(script.statements[0].output.as_deref(), Some("sorted"));
        assert_eq!(script.statements[1].stages.len(), 2);
        assert_eq!(script.statements[1].output, None);
    }

    #[test]
    fn input_redirect_via_lt() {
        let script = parse_script("sort < /in.txt", &HashMap::new()).unwrap();
        // `sort < file`: redirection binds to the statement.
        assert_eq!(
            script.statements[0].input,
            InputSource::Files(vec!["/in.txt".to_owned()])
        );
        assert_eq!(script.statements[0].stages.len(), 1);
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let script = parse_script(
            "#!/bin/sh\n# word frequencies\n\ncat /x | wc -l # trailing\n",
            &HashMap::new(),
        )
        .unwrap();
        assert_eq!(script.statements.len(), 1);
        assert_eq!(script.stage_count(), 1);
    }

    #[test]
    fn semicolons_split_statements() {
        let script = parse_script("cat /a | sort; cat /b | uniq", &HashMap::new()).unwrap();
        assert_eq!(script.statements.len(), 2);
    }

    #[test]
    fn quoted_pipe_is_not_a_stage_separator() {
        let script = parse_script("grep 'a|b' ", &HashMap::new()).unwrap();
        assert_eq!(script.statements[0].stages.len(), 1);
    }

    #[test]
    fn single_command_is_not_a_pipeline() {
        let script = parse_script("sort", &HashMap::new()).unwrap();
        assert!(!script.statements[0].is_pipeline());
        // But `cat f | sort` is.
        let script = parse_script("cat /f | sort", &HashMap::new()).unwrap();
        assert!(script.statements[0].is_pipeline());
    }

    #[test]
    fn unknown_command_errors() {
        assert!(parse_script("cat /x | frobnicate", &HashMap::new()).is_err());
    }

    #[test]
    fn statement_spans_are_exact_byte_ranges() {
        let text = "cat /a | sort\ncat /b | uniq; cat /c | wc -l\n";
        let script = parse_script(text, &HashMap::new()).unwrap();
        let spans: Vec<(usize, usize, usize, usize)> = script
            .statements
            .iter()
            .map(|s| (s.span.line, s.span.col, s.span.offset, s.span.len))
            .collect();
        assert_eq!(spans, vec![(1, 1, 0, 13), (2, 1, 14, 13), (2, 16, 29, 14)]);
        // The span must reproduce the statement's source text.
        let texts: Vec<&str> = script
            .statements
            .iter()
            .map(|s| &text[s.span.offset..s.span.offset + s.span.len])
            .collect();
        assert_eq!(
            texts,
            vec!["cat /a | sort", "cat /b | uniq", "cat /c | wc -l"]
        );
    }

    #[test]
    fn stage_spans_point_at_pipe_segments() {
        let text = "cat /in.txt | grep foo | wc -l";
        let script = parse_script(text, &HashMap::new()).unwrap();
        let st = &script.statements[0];
        let spans: Vec<&str> = st
            .stages
            .iter()
            .map(|s| &text[s.span.offset..s.span.offset + s.span.len])
            .collect();
        assert_eq!(spans, vec!["grep foo", "wc -l"]);
        assert_eq!(st.stages[0].span.col, 15);
    }

    #[test]
    fn parse_errors_carry_statement_line_and_column() {
        let err =
            parse_script("cat /a | sort\ncat /b | frobnicate -x", &HashMap::new()).unwrap_err();
        assert_eq!(err.statement, 1);
        assert_eq!(err.line, 2);
        assert_eq!(err.col, 10); // the failing pipe segment's first char
        assert_eq!(err.offset, 23);
        assert!(
            err.to_string().starts_with("statement 2, line 2, col 10:"),
            "{err}"
        );
        assert!(err.to_string().contains("frobnicate"), "{err}");

        let err = parse_script("cat /a | sort >", &HashMap::new()).unwrap_err();
        assert_eq!((err.statement, err.line, err.col), (0, 1, 15));
        assert_eq!(err.message, "missing redirection target");

        let err = parse_script("cat /a |  | wc -l", &HashMap::new()).unwrap_err();
        assert_eq!(err.message, "empty pipeline segment");
        assert_eq!(err.col, 9);
    }

    #[test]
    fn single_quotes_suppress_expansion() {
        let script = parse_script(
            "cat $IN | awk '$1 >= 1000'",
            &env(&[("IN", "/f"), ("1", "BAD")]),
        )
        .unwrap();
        assert_eq!(
            script.statements[0].stages[0].command.display(),
            "awk '$1 >= 1000'"
        );
    }

    #[test]
    fn escaped_dollar_suppresses_expansion() {
        let script =
            parse_script(r#"cat /f | awk "\$1 >= 2 {print \$2}""#, &HashMap::new()).unwrap();
        assert_eq!(
            script.statements[0].stages[0].command.display(),
            "awk '$1 >= 2 {print $2}'"
        );
    }
}
