//! Chunked, dynamically load-balanced parallel executor.
//!
//! [`run_parallel`](crate::exec::run_parallel) splits each stage input
//! into exactly `w` equal pieces — static assignment, one piece per
//! worker. That replicates the paper's executor, but a piece whose lines
//! are expensive (long lines for a backtracking `grep`, say) straggles and
//! the whole stage waits on it.
//!
//! This executor instead cuts the input into many small line-aligned
//! chunks ([`kq_stream::split_chunks`]) and feeds them to a fixed pool of
//! `workers` threads over a bounded [crossbeam channel]: workers pull the
//! next chunk as they finish (work stealing by queue), so uneven chunk
//! costs even out. Chunk outputs are reassembled in input order — the
//! combiners assume adjacent pieces — and combined once per segment with
//! the synthesized combiner, exactly like the static executor.
//!
//! The result is byte-identical to the serial execution (asserted across
//! the corpus in `tests/chunked_executor.rs`): correctness comes from the
//! combiner equation, not from the schedule.
//!
//! [crossbeam channel]: crossbeam::channel

use crate::exec::{ExecutionResult, StageTiming, TimingLog};
use crate::parse::Script;
use crate::plan::{PlannedScript, StageMode, StageSegment};
use crossbeam::channel;
use kq_coreutils::{CmdError, Command, ExecContext};
use kq_dsl::eval::CommandEnv;
use kq_stream::{Bytes, Rope};
use std::time::{Duration, Instant};

/// Tuning for the chunked executor.
#[derive(Debug, Clone)]
pub struct ChunkedOptions {
    /// Worker threads in the pool.
    pub workers: usize,
    /// Target chunk size in bytes; the chunk count per segment is
    /// `input_len / chunk_bytes` (at least 1). Smaller chunks balance
    /// better but pay more per-chunk overhead and more combine work.
    pub chunk_bytes: usize,
    /// Apply the Theorem 5 elimination (segments span eliminated
    /// combiners). `false` reproduces the unoptimized configuration.
    pub honor_elimination: bool,
}

impl Default for ChunkedOptions {
    fn default() -> Self {
        ChunkedOptions {
            workers: 4,
            chunk_bytes: 64 * 1024,
            honor_elimination: true,
        }
    }
}

/// Runs `chain` (one segment's commands) over one chunk. The chunk enters
/// the first command as the refcounted slice itself — no per-chunk copy.
/// Shared with the streaming executor's per-segment pools.
pub(crate) fn run_chain(
    chain: &[&Command],
    chunk: Bytes,
    ctx: &ExecContext,
) -> Result<Bytes, CmdError> {
    let mut cur = chunk;
    for cmd in chain {
        cur = cmd.run(cur, ctx)?;
    }
    Ok(cur)
}

/// Processes `input` through `chain` on a pool of `workers` threads,
/// returning the per-chunk outputs in input order together with each
/// chunk's wall-clock cost.
fn pooled_map(
    (si, ni): (usize, usize),
    chain: &[&Command],
    input: &Bytes,
    ctx: &ExecContext,
    opts: &ChunkedOptions,
) -> Result<(Vec<Bytes>, Vec<Duration>), CmdError> {
    let chunks = input.split_chunks(opts.chunk_bytes);
    let n = chunks.len();
    if n == 0 {
        return Ok((Vec::new(), Vec::new()));
    }
    let mut outputs: Vec<Option<Bytes>> = vec![None; n];
    let mut times: Vec<Duration> = vec![Duration::ZERO; n];
    let workers = opts.workers.max(1).min(n);

    // Bounded task channel: the feeder blocks once the pool is saturated,
    // so in-flight chunk *handles* stay bounded by `2 × workers` even for
    // huge streams (each handle is a refcounted slice, so the payload is
    // shared either way). Results are collected unordered and slotted by
    // index.
    let (task_tx, task_rx) = channel::bounded::<(usize, Bytes)>(workers * 2);
    let (result_tx, result_rx) = channel::unbounded::<(usize, Duration, Result<Bytes, CmdError>)>();

    std::thread::scope(|scope| {
        for _ in 0..workers {
            let task_rx = task_rx.clone();
            let result_tx = result_tx.clone();
            scope.spawn(move || {
                for (idx, chunk) in task_rx.iter() {
                    let span = kq_trace::span("chunked", "map")
                        .si(si)
                        .ni(ni)
                        .seq(idx)
                        .v(chunk.len() as f64);
                    let t0 = Instant::now();
                    let out = run_chain(chain, chunk, ctx);
                    span.done();
                    if result_tx.send((idx, t0.elapsed(), out)).is_err() {
                        break;
                    }
                }
            });
        }
        drop(task_rx);
        drop(result_tx);
        // Feed from this thread; workers drain concurrently. Sending a
        // chunk moves a handle (Arc bump), not the payload.
        for (idx, chunk) in chunks.into_iter().enumerate() {
            task_tx
                .send((idx, chunk))
                .expect("worker pool hung up before consuming all chunks");
        }
        drop(task_tx);
        // Collect every result (also drains errors so workers never block).
        let mut first_err: Option<CmdError> = None;
        for (idx, elapsed, out) in result_rx.iter() {
            times[idx] = elapsed;
            match out {
                Ok(o) => outputs[idx] = Some(o),
                Err(e) => first_err = first_err.or(Some(e)),
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    })?;

    let outputs: Vec<Bytes> = outputs
        .into_iter()
        .map(|o| o.expect("every chunk produced an output"))
        .collect();
    Ok((outputs, times))
}

/// Runs a planned script with the chunked executor.
///
/// Sequential stages run whole; each parallel segment is chunk-mapped on
/// the worker pool and combined once with the segment's closing combiner.
pub fn run_chunked(
    script: &Script,
    plan: &PlannedScript,
    ctx: &ExecContext,
    opts: &ChunkedOptions,
) -> Result<ExecutionResult, CmdError> {
    let mut output = Rope::new();
    let mut timings = TimingLog::default();
    for (si, (statement, planned)) in script.statements.iter().zip(&plan.statements).enumerate() {
        let mut stream = crate::exec::gather_files(&statement.input, ctx)?;
        let mut stage_timings = Vec::new();
        for (seg_idx, segment) in planned
            .segments(opts.honor_elimination)
            .into_iter()
            .enumerate()
        {
            match segment {
                StageSegment::Sequential { stage } => {
                    let cmd = &statement.stages[stage].command;
                    let bytes_in = stream.len();
                    let span = kq_trace::span("chunked", "stage")
                        .si(si)
                        .ni(seg_idx)
                        .label(cmd.display())
                        .v(bytes_in as f64);
                    let t0 = Instant::now();
                    let out = cmd.run(stream, ctx)?;
                    span.done();
                    stage_timings.push(StageTiming {
                        label: cmd.display(),
                        parallel: false,
                        eliminated: false,
                        piece_times: vec![t0.elapsed()],
                        combine_time: Duration::ZERO,
                        bytes_in,
                        bytes_out: out.len(),
                        bytes_out_pieces: out.len(),
                        early_exit: None,
                        queue: None,
                        spill: None,
                    });
                    stream = out;
                }
                StageSegment::Parallel { stages } => {
                    let chain: Vec<&Command> = stages
                        .clone()
                        .map(|i| &statement.stages[i].command)
                        .collect();
                    let closing = stages.end - 1;
                    let StageMode::Parallel { combiner, .. } = &planned.stages[closing].mode else {
                        unreachable!("parallel segment ends on a parallel stage");
                    };
                    let bytes_in = stream.len();
                    let (pieces, piece_times) =
                        pooled_map((si, seg_idx), &chain, &stream, ctx, opts)?;
                    let closing_cmd = &statement.stages[closing].command;
                    let env = CommandEnv {
                        command: closing_cmd,
                        ctx,
                    };
                    let bytes_out_pieces: usize = pieces.iter().map(Bytes::len).sum();
                    let span = kq_trace::span("chunked", "combine")
                        .si(si)
                        .ni(seg_idx)
                        .label(closing_cmd.display())
                        .v(pieces.len() as f64);
                    let t0 = Instant::now();
                    let combined = combiner
                        .combine_all(&pieces, &env)
                        .map_err(|e| CmdError::new(closing_cmd.display(), e.to_string()))?;
                    let combine_time = t0.elapsed();
                    span.done();
                    stage_timings.push(StageTiming {
                        label: chain
                            .iter()
                            .map(|c| c.display())
                            .collect::<Vec<_>>()
                            .join(" | "),
                        parallel: true,
                        eliminated: false,
                        piece_times,
                        combine_time,
                        bytes_in,
                        bytes_out: combined.len(),
                        bytes_out_pieces,
                        early_exit: None,
                        queue: None,
                        spill: None,
                    });
                    stream = combined;
                }
            }
        }
        timings.statements.push(stage_timings);
        match &statement.output {
            // Redirection stores the shared slice — no copy.
            Some(target) => ctx.vfs.write(target.clone(), stream),
            None => output.push(stream),
        }
    }
    Ok(ExecutionResult {
        output: output.into_bytes(),
        timings,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::run_serial;
    use crate::parse::parse_script;
    use crate::plan::Planner;
    use kq_synth::SynthesisConfig;
    use std::collections::HashMap;

    fn make_input(lines: usize) -> String {
        let words = ["apple", "dog", "cat", "apple", "bird", "cat", "fox"];
        let mut s = String::new();
        for i in 0..lines {
            s.push_str(&format!(
                "{} {} line {}\n",
                words[i % words.len()],
                words[(i * 3 + 1) % words.len()],
                i % 11
            ));
        }
        s
    }

    fn check(script_text: &str, chunk_bytes: usize) {
        let env: HashMap<String, String> = HashMap::new();
        let script = parse_script(script_text, &env).unwrap();
        let ctx = ExecContext::default();
        ctx.vfs.write("/in.txt", make_input(500));
        let serial = run_serial(&script, &ctx).unwrap();
        let mut planner = Planner::new(SynthesisConfig::default());
        let plan = planner.plan(&script, &ctx, &make_input(100));
        for workers in [1, 3, 8] {
            for honor in [true, false] {
                let opts = ChunkedOptions {
                    workers,
                    chunk_bytes,
                    honor_elimination: honor,
                };
                let got = run_chunked(&script, &plan, &ctx, &opts).unwrap();
                assert_eq!(
                    got.output, serial.output,
                    "{script_text:?} differs (w={workers}, chunk={chunk_bytes}, opt={honor})"
                );
            }
        }
    }

    #[test]
    fn word_frequency_many_small_chunks() {
        check(
            "cat /in.txt | cut -d ' ' -f 1 | sort | uniq -c | sort -rn",
            256,
        );
    }

    #[test]
    fn counting_pipeline_chunks() {
        check("cat /in.txt | grep apple | wc -l", 512);
    }

    #[test]
    fn uniq_boundary_chunks() {
        check("cat /in.txt | sort | uniq", 300);
    }

    #[test]
    fn chunk_larger_than_input_degenerates_to_serial() {
        check("cat /in.txt | sort | uniq -c", 10_000_000);
    }

    #[test]
    fn rerun_segment_chunks() {
        check("cat /in.txt | sort -u | head -n 3", 400);
    }

    #[test]
    fn empty_input_is_fine() {
        let env: HashMap<String, String> = HashMap::new();
        let script = parse_script("cat /empty | sort | uniq -c", &env).unwrap();
        let ctx = ExecContext::default();
        ctx.vfs.write("/empty", "");
        let mut planner = Planner::new(SynthesisConfig::default());
        let plan = planner.plan(&script, &ctx, &make_input(50));
        let got = run_chunked(&script, &plan, &ctx, &ChunkedOptions::default()).unwrap();
        assert_eq!(got.output, "");
    }

    #[test]
    fn timing_log_reports_chunk_counts() {
        let env: HashMap<String, String> = HashMap::new();
        let script = parse_script("cat /in.txt | tr A-Z a-z | sort", &env).unwrap();
        let ctx = ExecContext::default();
        let input = make_input(400);
        ctx.vfs.write("/in.txt", &input);
        let mut planner = Planner::new(SynthesisConfig::default());
        let plan = planner.plan(&script, &ctx, &input);
        let opts = ChunkedOptions {
            workers: 2,
            chunk_bytes: 1024,
            honor_elimination: true,
        };
        let got = run_chunked(&script, &plan, &ctx, &opts).unwrap();
        let stages = &got.timings.statements[0];
        // tr|sort fuse into one segment; ~input/1024 chunks.
        assert_eq!(stages.len(), 1);
        assert!(
            stages[0].piece_times.len() >= input.len() / 1024,
            "expected many chunks, got {}",
            stages[0].piece_times.len()
        );
        assert!(stages[0].label.contains('|'));
    }

    #[test]
    fn command_error_propagates_cleanly() {
        let env: HashMap<String, String> = HashMap::new();
        // comm errors on unsorted input pieces.
        let script = parse_script("cat /in.txt | comm -23 - /dict", &env).unwrap();
        let ctx = ExecContext::default();
        ctx.vfs
            .write("/in.txt", "zebra\napple\nzebra\napple\n".repeat(50));
        ctx.vfs.write("/dict", "apple\n");
        let mut planner = Planner::new(SynthesisConfig::default());
        let plan = planner.plan(&script, &ctx, "b\na\n");
        // Regardless of the plan, execution either succeeds with serial
        // semantics or surfaces the command error — it must not hang.
        let serial = run_serial(&script, &ctx);
        let chunked = run_chunked(&script, &plan, &ctx, &ChunkedOptions::default());
        match (serial, chunked) {
            (Ok(s), Ok(c)) => assert_eq!(s.output, c.output),
            (Err(_), Err(_)) => {}
            (Ok(_), Err(e)) => {
                // The chunked run may only fail if the plan kept the stage
                // parallel with a rerun combiner that hits comm's sorted
                // check; the planner probes prevent that, so flag it.
                panic!("chunked failed where serial succeeded: {e}");
            }
            (Err(e), Ok(_)) => panic!("serial failed unexpectedly: {e}"),
        }
    }
}
