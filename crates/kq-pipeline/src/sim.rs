//! The measured-cost scheduler.
//!
//! The paper's performance tables (Tables 1, 4–7) report wall-clock times
//! on an 80-core server. This reproduction runs on whatever host it gets —
//! possibly a single core — so parallel wall-clock is computed, not raced:
//! the executors measure every piece's actual duration, and this module
//! replays those measurements on `w` virtual workers:
//!
//! * **staged/unoptimized** (`u_w`): every stage is a barrier —
//!   `Σ_stages (spawn + max_piece + combine)`;
//! * **optimized** (`T_w`): runs of combiner-eliminated stages fuse — each
//!   virtual worker executes its chain of pieces back to back, so the
//!   segment costs `max_over_workers(Σ chain) + final combine`, which also
//!   reproduces the paper's super-linear speedups from cross-stage overlap;
//! * **pipelined original** (`T_orig`): the shell's natural streaming
//!   overlap, modelled as a chunked wavefront over the serial stage times.
//!
//! Per-stage spawn overhead models process startup; it is what makes the
//! paper's sub-second scripts *slow down* under parallelisation (Table 4's
//! `0.5×` rows).

use crate::exec::TimingLog;
use std::time::Duration;

/// Cost-model parameters.
#[derive(Debug, Clone)]
pub struct SimParams {
    /// Virtual worker count `w`.
    pub workers: usize,
    /// Fixed overhead per stage invocation (process spawn, pipe setup).
    pub spawn_base: Duration,
    /// Additional overhead per worker instance of a parallel stage.
    pub per_worker: Duration,
    /// Chunk count for the pipelined-overlap model of `T_orig`.
    pub chunks: usize,
}

impl SimParams {
    /// Parameters for a `w`-way schedule with the default overheads
    /// (process spawn and pipe setup, scaled to the in-process stage
    /// costs of the scaled-down corpus; the paper's sub-second scripts
    /// slow down under parallelisation for the same structural reason).
    pub fn with_workers(workers: usize) -> SimParams {
        SimParams {
            workers,
            spawn_base: Duration::from_micros(300),
            per_worker: Duration::from_micros(60),
            chunks: 16,
        }
    }

    fn spawn_cost(&self, instances: usize) -> Duration {
        self.spawn_base + self.per_worker * instances as u32
    }
}

/// Scheduled times for one script execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineCosts {
    /// Virtual wall-clock of the schedule.
    pub wall: Duration,
    /// Total work (sum over all pieces and combines).
    pub work: Duration,
}

fn max_piece(times: &[Duration]) -> Duration {
    times.iter().copied().max().unwrap_or(Duration::ZERO)
}

/// Staged schedule: barrier after every stage (`u_w` when the log was
/// recorded with elimination off, and the serial `u_1` at one worker).
pub fn staged_time(log: &TimingLog, params: &SimParams) -> PipelineCosts {
    let mut wall = Duration::ZERO;
    let mut work = Duration::ZERO;
    for stages in &log.statements {
        for st in stages {
            work += st.total_work();
            if st.parallel {
                wall += params.spawn_cost(st.piece_times.len())
                    + max_piece(&st.piece_times)
                    + st.combine_time;
            } else {
                wall += params.spawn_cost(1) + max_piece(&st.piece_times);
            }
        }
    }
    PipelineCosts { wall, work }
}

/// Optimized schedule: consecutive eliminated stages fuse into worker
/// chains (`T_w`). The log must come from a `honor_elimination = true`
/// execution so eliminated stages carry split outputs.
pub fn optimized_time(log: &TimingLog, params: &SimParams) -> PipelineCosts {
    let mut wall = Duration::ZERO;
    let mut work = Duration::ZERO;
    for stages in &log.statements {
        let mut i = 0;
        while i < stages.len() {
            let st = &stages[i];
            work += st.total_work();
            if !st.parallel {
                wall += params.spawn_cost(1) + max_piece(&st.piece_times);
                i += 1;
                continue;
            }
            // Collect the fused segment: this stage plus all following
            // stages reached through eliminated combiners.
            let mut segment = vec![st];
            let mut j = i;
            while stages[j].eliminated && j + 1 < stages.len() && stages[j + 1].parallel {
                j += 1;
                segment.push(&stages[j]);
                work += stages[j].total_work();
            }
            // Per-worker chain time: worker p executes piece p of every
            // stage in the segment back to back.
            let width = segment
                .iter()
                .map(|s| s.piece_times.len())
                .max()
                .unwrap_or(1);
            let mut chain_max = Duration::ZERO;
            for p in 0..width {
                let chain: Duration = segment
                    .iter()
                    .map(|s| s.piece_times.get(p).copied().unwrap_or(Duration::ZERO))
                    .sum();
                chain_max = chain_max.max(chain);
            }
            let combine = segment
                .last()
                .map(|s| s.combine_time)
                .unwrap_or(Duration::ZERO);
            wall += params.spawn_cost(width * segment.len()) + chain_max + combine;
            i = j + 1;
        }
    }
    PipelineCosts { wall, work }
}

/// Pipelined-overlap schedule for the original script (`T_orig`): the
/// shell runs all stages concurrently, streaming through pipes. Modelled
/// as a wavefront over `chunks` input chunks, where stage `s` processes
/// chunk `c` after stage `s-1` finished chunk `c` and stage `s` finished
/// chunk `c-1`. The log should come from a serial run (one piece per
/// stage).
pub fn pipelined_time(log: &TimingLog, params: &SimParams) -> PipelineCosts {
    let chunks = params.chunks.max(1) as u32;
    let mut wall = Duration::ZERO;
    let mut work = Duration::ZERO;
    for stages in &log.statements {
        let times: Vec<Duration> = stages
            .iter()
            .map(|s| {
                work += s.total_work();
                s.piece_times.iter().copied().sum::<Duration>() + s.combine_time
            })
            .collect();
        if times.is_empty() {
            continue;
        }
        // completion[s] tracks the finish time of the chunk most recently
        // produced by stage s.
        let mut completion: Vec<Duration> = vec![params.spawn_cost(1); times.len()];
        for _chunk in 0..chunks {
            let mut upstream = Duration::ZERO;
            for (s, t) in times.iter().enumerate() {
                let ready = completion[s].max(upstream);
                completion[s] = ready + *t / chunks;
                upstream = completion[s];
            }
        }
        wall += completion[times.len() - 1];
    }
    PipelineCosts { wall, work }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::StageTiming;

    fn ms(n: u64) -> Duration {
        Duration::from_millis(n)
    }

    fn stage(parallel: bool, eliminated: bool, pieces: &[u64], combine: u64) -> StageTiming {
        StageTiming {
            label: "t".to_owned(),
            parallel,
            eliminated,
            piece_times: pieces.iter().map(|&n| ms(n)).collect(),
            combine_time: ms(combine),
            bytes_in: 0,
            bytes_out: 0,
            bytes_out_pieces: 0,
            early_exit: None,
            queue: None,
            spill: None,
        }
    }

    fn log(stages: Vec<StageTiming>) -> TimingLog {
        TimingLog {
            statements: vec![stages],
            adaptive: None,
        }
    }

    fn params(w: usize) -> SimParams {
        SimParams {
            workers: w,
            spawn_base: Duration::ZERO,
            per_worker: Duration::ZERO,
            chunks: 4,
        }
    }

    #[test]
    fn staged_sums_barriers() {
        let l = log(vec![
            stage(true, false, &[10, 20, 15], 5),
            stage(false, false, &[40], 0),
        ]);
        let c = staged_time(&l, &params(3));
        assert_eq!(c.wall, ms(20 + 5 + 40));
        assert_eq!(c.work, ms(10 + 20 + 15 + 5 + 40));
    }

    #[test]
    fn optimized_fuses_eliminated_chains() {
        // Two fused parallel stages: worker chains are 10+30 and 20+10;
        // the segment costs max(40, 30) + final combine 5.
        let l = log(vec![
            stage(true, true, &[10, 20], 0),
            stage(true, false, &[30, 10], 5),
        ]);
        let c = optimized_time(&l, &params(2));
        assert_eq!(c.wall, ms(40 + 5));
        // Unfused (staged) would be 20 + 30 + 5 = 55.
        let u = staged_time(&l, &params(2));
        assert_eq!(u.wall, ms(55));
    }

    #[test]
    fn fused_chain_can_beat_stagewise_barriers() {
        // Complementary skew: barriers pay both maxima; fusion overlaps.
        let l = log(vec![
            stage(true, true, &[50, 10], 0),
            stage(true, false, &[10, 50], 0),
        ]);
        assert_eq!(optimized_time(&l, &params(2)).wall, ms(60));
        assert_eq!(staged_time(&l, &params(2)).wall, ms(100));
    }

    #[test]
    fn pipelined_is_between_max_and_sum() {
        let l = log(vec![
            stage(false, false, &[40], 0),
            stage(false, false, &[40], 0),
            stage(false, false, &[40], 0),
        ]);
        let p = pipelined_time(&l, &params(1));
        let serial = ms(120);
        let ideal = ms(40);
        assert!(
            p.wall < serial,
            "pipelined {:?} not faster than serial",
            p.wall
        );
        assert!(
            p.wall > ideal,
            "pipelined {:?} beats the bottleneck",
            p.wall
        );
    }

    #[test]
    fn pipelined_dominated_by_bottleneck_stage() {
        let balanced = log(vec![
            stage(false, false, &[30], 0),
            stage(false, false, &[30], 0),
        ]);
        let skewed = log(vec![
            stage(false, false, &[55], 0),
            stage(false, false, &[5], 0),
        ]);
        // Same total work; the skewed pipeline overlaps less.
        let b = pipelined_time(&balanced, &params(1)).wall;
        let s = pipelined_time(&skewed, &params(1)).wall;
        assert!(s > b, "skewed {s:?} should exceed balanced {b:?}");
    }

    #[test]
    fn spawn_overhead_penalizes_tiny_stages() {
        let l = log(vec![stage(true, false, &[1, 1, 1, 1], 0)]);
        let mut p = SimParams::with_workers(4);
        p.spawn_base = ms(5);
        p.per_worker = ms(1);
        let c = staged_time(&l, &p);
        // 5 + 4*1 + 1 = 10ms for 1ms of per-piece work: a slowdown, as in
        // the paper's sub-second scripts.
        assert_eq!(c.wall, ms(10));
    }

    #[test]
    fn empty_log_costs_nothing() {
        let c = staged_time(&TimingLog::default(), &params(4));
        assert_eq!(c.wall, Duration::ZERO);
        assert_eq!(c.work, Duration::ZERO);
    }
}
