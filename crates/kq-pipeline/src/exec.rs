//! Script executors.
//!
//! * [`run_serial`] — the paper's measurement infrastructure: every stage
//!   runs to completion before the next starts, outputs buffered between
//!   stages.
//! * [`run_parallel`] — KumQuat's generated data-parallel pipeline: each
//!   parallel stage splits its input into `w` line-aligned substreams, runs
//!   `w` command instances on real threads, and combines the outputs with
//!   the synthesized combiner — unless the combiner was eliminated
//!   (Theorem 5), in which case the substreams flow to the next stage.
//!
//! Both executors record a [`TimingLog`] of per-piece wall-clock durations;
//! the [`crate::sim`] scheduler replays those measurements on virtual
//! workers to produce the performance-table numbers.

use crate::parse::{InputSource, Script, Statement};
use crate::plan::{PlannedScript, StageMode};
use kq_coreutils::{CmdError, ExecContext};
use kq_dsl::eval::CommandEnv;
use kq_stream::{Bytes, Rope};
use std::time::{Duration, Instant};

/// Timing record for one executed stage.
#[derive(Debug, Clone)]
pub struct StageTiming {
    /// The command line.
    pub label: String,
    /// Whether the stage ran data-parallel.
    pub parallel: bool,
    /// Whether its combiner was eliminated (output stayed split).
    pub eliminated: bool,
    /// Wall-clock duration of each piece (length 1 for sequential stages).
    pub piece_times: Vec<Duration>,
    /// Wall-clock duration of the combine step (zero when eliminated or
    /// sequential).
    pub combine_time: Duration,
    /// Input bytes consumed by the stage.
    pub bytes_in: usize,
    /// Output bytes produced (post-combine for parallel stages).
    pub bytes_out: usize,
    /// Total piece output bytes *before* combining (equals `bytes_out`
    /// for sequential stages; the distributed cost model uses the
    /// difference as the combiner's shrink).
    pub bytes_out_pieces: usize,
    /// Early exit: set when this stage was a prefix-bounded consumer
    /// (`head -n k`, `sed kq`) under the streaming executor and satisfied
    /// its demand without waiting for end-of-input — it released its
    /// receiver (the demand token), so any upstream producer still running
    /// unwound without draining the rest of the stream. `None` for stages
    /// that read their whole input (every stage under the other
    /// executors). The CLI reports these as
    /// `early-exit: statement N stage M ... after K chunk(s)`.
    pub early_exit: Option<EarlyExit>,
    /// Queue-stall and occupancy counters for executors that move chunks
    /// through queues (streaming, dataflow). `None` under the batch
    /// executors, which have no inter-stage queues to stall on.
    pub queue: Option<QueueTelemetry>,
    /// Spill activity for barrier folds run under a spill budget
    /// (`--spill-mb`): `None` when no budget was configured for the stage
    /// (including every batch-executor stage); `Some` with zeroed counters
    /// when a budget was set but never crossed.
    pub spill: Option<SpillTelemetry>,
}

/// Out-of-core fold counters — a snapshot of [`kq_dsl::SpillMetrics`]
/// taken after the stage settles. The CLI prints a `spill:` note per
/// stage whose `runs_spilled` is non-zero.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpillTelemetry {
    /// Sorted runs (including the streamed final merge output) written to
    /// temp files.
    pub runs_spilled: u64,
    /// Total bytes written to spill files.
    pub bytes_written: u64,
    /// Total bytes mapped back for merging.
    pub bytes_mapped: u64,
}

impl SpillTelemetry {
    /// Snapshot of a stage's live spill counters.
    pub fn from_metrics(metrics: &kq_dsl::SpillMetrics) -> SpillTelemetry {
        let (runs_spilled, bytes_written, bytes_mapped) = metrics.snapshot();
        SpillTelemetry {
            runs_spilled,
            bytes_written,
            bytes_mapped,
        }
    }
}

/// Per-node queue telemetry — the measurable cost of moving chunks
/// between stages, feeding the future adaptive-tuning plane.
///
/// Under the streaming executor the stalls are literal blocking time in
/// channel `send`/`recv`; under the dataflow scheduler (which never
/// blocks a worker thread on a queue) they are the wall-clock intervals
/// during which the node *wanted* to make progress but could not — gated
/// on a full downstream edge (`send_stall`) or starved on an empty input
/// edge (`recv_stall`) — measured from the moment a task observed the
/// condition to the moment a later task found it cleared.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueTelemetry {
    /// Time the node spent unable to forward output: blocked in a channel
    /// `send` (streaming) or gated on a full downstream edge (dataflow).
    pub send_stall: Duration,
    /// Time the node spent waiting for input: blocked in a channel `recv`
    /// (streaming) or starved on an empty input edge (dataflow).
    pub recv_stall: Duration,
    /// High-water mark of chunks queued at this node: the input-edge
    /// length observed when a task claimed a chunk (dataflow), or the
    /// bounded-channel occupancy observed at each send/recv (streaming).
    pub max_queued: usize,
    /// Scheduler tasks executed for this node (dataflow), or chunks
    /// received (streaming) — the denominator for the stall averages.
    pub tasks: usize,
}

/// The record behind [`StageTiming::early_exit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EarlyExit {
    /// Index of the bounded stage within its statement (pipeline
    /// position, not the segment-timing position — chunk-local stages
    /// fuse, so the two can differ).
    pub stage: usize,
    /// Input chunks consumed before the demand was met.
    pub chunks: usize,
}

impl StageTiming {
    /// Total serial work in the stage (sum of pieces plus combine).
    pub fn total_work(&self) -> Duration {
        self.piece_times.iter().sum::<Duration>() + self.combine_time
    }
}

/// What the dataflow executor's closed-loop tuning layer actually did
/// during a run (`--chunk-kb auto`, `--queue-depth auto`): the run-level
/// summary behind the CLI's `adaptive:` report line. Per-decision detail
/// (every chunk-target growth, every credit shift) is emitted as
/// `adaptive` kq-trace instants.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdaptiveTelemetry {
    /// Chunk sizing ran in auto mode (input-size heuristic + online
    /// coarsening of barrier-feeding producers).
    pub auto_chunk: bool,
    /// Smallest initial chunk target the input-size heuristic chose for
    /// any statement (0 when no statement started).
    pub initial_chunk_bytes: usize,
    /// Largest chunk target any producer coarsened to.
    pub max_chunk_bytes: usize,
    /// Queue credit ran in auto mode (controller shifts credit from
    /// starved edges to gated ones).
    pub rebalanced: bool,
    /// Credit moves the controller performed.
    pub credit_shifts: u64,
}

/// Per-statement stage timings for a whole script run.
#[derive(Debug, Clone, Default)]
pub struct TimingLog {
    /// One vector of stage timings per statement.
    pub statements: Vec<Vec<StageTiming>>,
    /// Closed-loop tuning summary — `Some` only for dataflow runs with at
    /// least one `auto` knob active.
    pub adaptive: Option<AdaptiveTelemetry>,
}

/// The product of a script execution.
#[derive(Debug)]
pub struct ExecutionResult {
    /// Concatenated stdout of all non-redirected statements, as a shared
    /// byte slice (single-statement scripts hand their final stream
    /// through without copying).
    pub output: Bytes,
    /// Measured timings for the scheduler.
    pub timings: TimingLog,
}

/// Gathers a statement's input as shared bytes: a single input file is a
/// refcount bump on the VFS entry; multiple files gather through a
/// [`Rope`] with one memcpy total.
pub(crate) fn gather_input(statement: &Statement, ctx: &ExecContext) -> Result<Bytes, CmdError> {
    gather_files(&statement.input, ctx)
}

pub(crate) fn gather_files(input: &InputSource, ctx: &ExecContext) -> Result<Bytes, CmdError> {
    match input {
        InputSource::None => Ok(Bytes::new()),
        InputSource::Files(files) => {
            let mut rope = Rope::new();
            for f in files {
                match ctx.vfs.read_bytes(f) {
                    Some(content) => rope.push(content),
                    None => {
                        return Err(CmdError::new(
                            "cat",
                            format!("{f}: No such file or directory"),
                        ))
                    }
                }
            }
            Ok(rope.into_bytes())
        }
    }
}

/// Runs a script serially, stage to completion (the `u1` configuration and
/// the baseline for output-correctness checks).
pub fn run_serial(script: &Script, ctx: &ExecContext) -> Result<ExecutionResult, CmdError> {
    let mut output = Rope::new();
    let mut timings = TimingLog::default();
    for (si, statement) in script.statements.iter().enumerate() {
        let mut stream = gather_input(statement, ctx)?;
        let mut stage_timings = Vec::with_capacity(statement.stages.len());
        for (stage_idx, stage) in statement.stages.iter().enumerate() {
            let bytes_in = stream.len();
            let span = kq_trace::span("serial", "stage")
                .si(si)
                .ni(stage_idx)
                .label(stage.command.display())
                .v(bytes_in as f64);
            let t0 = Instant::now();
            let out = stage.command.run(stream, ctx)?;
            let elapsed = t0.elapsed();
            span.done();
            stage_timings.push(StageTiming {
                label: stage.command.display(),
                parallel: false,
                eliminated: false,
                piece_times: vec![elapsed],
                combine_time: Duration::ZERO,
                bytes_in,
                bytes_out: out.len(),
                bytes_out_pieces: out.len(),
                early_exit: None,
                queue: None,
                spill: None,
            });
            stream = out;
        }
        timings.statements.push(stage_timings);
        match &statement.output {
            // Redirection stores the shared slice — no copy.
            Some(target) => ctx.vfs.write(target.clone(), stream),
            None => output.push(stream),
        }
    }
    Ok(ExecutionResult {
        output: output.into_bytes(),
        timings,
    })
}

/// The stream state between stages of a parallel execution: either one
/// contiguous stream or the substream vector an eliminated combiner
/// forwarded (both refcounted; moving the state never copies payload).
enum State {
    Single(Bytes),
    Split(Vec<Bytes>),
}

/// Runs a planned script with `workers`-way data parallelism on real
/// threads.
///
/// `honor_elimination` selects the optimized pipeline (Theorem 5 applied)
/// versus the unoptimized one that combines after every parallel stage —
/// the paper's `T` versus `u` configurations.
///
/// Piece durations in the returned log are wall-clock times of genuinely
/// concurrent threads: on an oversubscribed host they include contention.
/// Use [`run_parallel_measured`] when the log feeds the [`crate::sim`]
/// scheduler.
pub fn run_parallel(
    script: &Script,
    plan: &PlannedScript,
    ctx: &ExecContext,
    workers: usize,
    honor_elimination: bool,
) -> Result<ExecutionResult, CmdError> {
    run_parallel_inner(script, plan, ctx, workers, honor_elimination, true)
}

/// Like [`run_parallel`], but executes the pieces of each parallel stage
/// one at a time so every recorded piece duration is that piece's own
/// cost. This is the measurement mode behind the performance tables: the
/// virtual scheduler in [`crate::sim`] replays these unbiased durations on
/// `w` virtual workers, which is the honest way to report parallel wall
/// clock from a host with fewer cores than the paper's 80 (see DESIGN.md).
pub fn run_parallel_measured(
    script: &Script,
    plan: &PlannedScript,
    ctx: &ExecContext,
    workers: usize,
    honor_elimination: bool,
) -> Result<ExecutionResult, CmdError> {
    run_parallel_inner(script, plan, ctx, workers, honor_elimination, false)
}

fn run_parallel_inner(
    script: &Script,
    plan: &PlannedScript,
    ctx: &ExecContext,
    workers: usize,
    honor_elimination: bool,
    use_threads: bool,
) -> Result<ExecutionResult, CmdError> {
    assert!(workers >= 1, "need at least one worker");
    let mut output = Rope::new();
    let mut timings = TimingLog::default();
    for (si, (statement, planned)) in script.statements.iter().zip(&plan.statements).enumerate() {
        let mut state = State::Single(gather_input(statement, ctx)?);
        let mut stage_timings = Vec::with_capacity(statement.stages.len());
        for (stage_idx, (stage, planned_stage)) in
            statement.stages.iter().zip(&planned.stages).enumerate()
        {
            let cmd = &stage.command;
            match &planned_stage.mode {
                StageMode::Sequential => {
                    let input = match state {
                        State::Single(s) => s,
                        State::Split(_) => {
                            unreachable!("planner never feeds split streams to a sequential stage")
                        }
                    };
                    let bytes_in = input.len();
                    let span = kq_trace::span("static", "stage")
                        .si(si)
                        .ni(stage_idx)
                        .label(cmd.display())
                        .v(bytes_in as f64);
                    let t0 = Instant::now();
                    let out = cmd.run(input, ctx)?;
                    span.done();
                    stage_timings.push(StageTiming {
                        label: cmd.display(),
                        parallel: false,
                        eliminated: false,
                        piece_times: vec![t0.elapsed()],
                        combine_time: Duration::ZERO,
                        bytes_in,
                        bytes_out: out.len(),
                        bytes_out_pieces: out.len(),
                        early_exit: None,
                        queue: None,
                        spill: None,
                    });
                    state = State::Single(out);
                }
                StageMode::Parallel {
                    combiner,
                    eliminated,
                } => {
                    // Zero-copy piece setup: a contiguous stream splits
                    // into O(workers) refcounted slices; an already-split
                    // state (eliminated upstream combiner) is forwarded
                    // as-is.
                    let pieces: Vec<Bytes> = match state {
                        State::Single(s) => s.split_stream(workers),
                        State::Split(p) => p,
                    };
                    let bytes_in: usize = pieces.iter().map(Bytes::len).sum();
                    // Run one command instance per piece: on real threads
                    // (correctness mode) or one at a time (measured mode).
                    // Threads receive their piece as a refcount bump.
                    let mut results: Vec<Result<(Bytes, Duration), CmdError>> =
                        Vec::with_capacity(pieces.len());
                    if use_threads {
                        std::thread::scope(|scope| {
                            let handles: Vec<_> = pieces
                                .iter()
                                .enumerate()
                                .map(|(pi, piece)| {
                                    let piece = piece.clone();
                                    scope.spawn(move || {
                                        let span = kq_trace::span("static", "piece")
                                            .si(si)
                                            .ni(stage_idx)
                                            .seq(pi)
                                            .v(piece.len() as f64);
                                        let t0 = Instant::now();
                                        let out = cmd.run(piece, ctx)?;
                                        span.done();
                                        Ok((out, t0.elapsed()))
                                    })
                                })
                                .collect();
                            for h in handles {
                                results.push(h.join().expect("worker thread panicked"));
                            }
                        });
                    } else {
                        for (pi, piece) in pieces.iter().enumerate() {
                            let span = kq_trace::span("static", "piece")
                                .si(si)
                                .ni(stage_idx)
                                .seq(pi)
                                .v(piece.len() as f64);
                            let t0 = Instant::now();
                            results
                                .push(cmd.run(piece.clone(), ctx).map(|out| (out, t0.elapsed())));
                            span.done();
                        }
                    }
                    let mut outputs = Vec::with_capacity(results.len());
                    let mut piece_times = Vec::with_capacity(results.len());
                    for r in results {
                        let (out, d) = r?;
                        outputs.push(out);
                        piece_times.push(d);
                    }
                    let bytes_out_pieces: usize = outputs.iter().map(Bytes::len).sum();
                    let eliminate_now = *eliminated && honor_elimination;
                    if eliminate_now {
                        // Theorem 5: the substream vector flows to the
                        // next stage with zero copies.
                        stage_timings.push(StageTiming {
                            label: cmd.display(),
                            parallel: true,
                            eliminated: true,
                            piece_times,
                            combine_time: Duration::ZERO,
                            bytes_in,
                            bytes_out: bytes_out_pieces,
                            bytes_out_pieces,
                            early_exit: None,
                            queue: None,
                            spill: None,
                        });
                        state = State::Split(outputs);
                    } else {
                        let env = CommandEnv { command: cmd, ctx };
                        let span = kq_trace::span("static", "combine")
                            .si(si)
                            .ni(stage_idx)
                            .label(cmd.display());
                        let t0 = Instant::now();
                        let combined = combiner
                            .combine_all(&outputs, &env)
                            .map_err(|e| CmdError::new(cmd.display(), e.to_string()))?;
                        let combine_time = t0.elapsed();
                        span.done();
                        stage_timings.push(StageTiming {
                            label: cmd.display(),
                            parallel: true,
                            eliminated: false,
                            piece_times,
                            combine_time,
                            bytes_in,
                            bytes_out: combined.len(),
                            bytes_out_pieces,
                            early_exit: None,
                            queue: None,
                            spill: None,
                        });
                        state = State::Single(combined);
                    }
                }
            }
        }
        let final_stream = match state {
            State::Single(s) => s,
            // The planner never eliminates the final combiner, but a
            // statement can *end* split if it had zero stages.
            State::Split(pieces) => kq_stream::concat_bytes(&pieces),
        };
        timings.statements.push(stage_timings);
        match &statement.output {
            // Redirection stores the shared slice — no copy.
            Some(target) => ctx.vfs.write(target.clone(), final_stream),
            None => output.push(final_stream),
        }
    }
    Ok(ExecutionResult {
        output: output.into_bytes(),
        timings,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_script;
    use crate::plan::Planner;
    use kq_synth::SynthesisConfig;
    use std::collections::HashMap;

    fn make_input() -> String {
        let words = ["apple", "dog", "cat", "apple", "bird", "cat", "fox"];
        let mut s = String::new();
        for i in 0..300 {
            s.push_str(&format!(
                "{} {} line {}\n",
                words[i % words.len()],
                words[(i * 3 + 1) % words.len()],
                i % 11
            ));
        }
        s
    }

    fn check_parallel_matches_serial(script_text: &str) {
        let env: HashMap<String, String> = [("IN".to_owned(), "/in.txt".to_owned())].into();
        let script = parse_script(script_text, &env).unwrap();
        let ctx = ExecContext::default();
        ctx.vfs.write("/in.txt", make_input());
        let serial = run_serial(&script, &ctx).unwrap();
        let mut planner = Planner::new(SynthesisConfig::default());
        let plan = planner.plan(&script, &ctx, &make_input());
        for workers in [1, 2, 3, 5, 8] {
            for honor in [false, true] {
                let par = run_parallel(&script, &plan, &ctx, workers, honor).unwrap();
                assert_eq!(
                    par.output, serial.output,
                    "script {script_text:?} differs at w={workers} honor={honor}"
                );
            }
        }
    }

    #[test]
    fn word_frequency_parallel_matches_serial() {
        check_parallel_matches_serial(
            "cat $IN | tr -cs A-Za-z '\\n' | tr A-Z a-z | sort | uniq -c | sort -rn",
        );
    }

    #[test]
    fn grep_count_parallel_matches_serial() {
        check_parallel_matches_serial("cat $IN | grep apple | wc -l");
    }

    #[test]
    fn uniq_boundaries_parallel_matches_serial() {
        check_parallel_matches_serial("cat $IN | sort | uniq");
        check_parallel_matches_serial("cat $IN | sort | uniq -c");
    }

    #[test]
    fn head_rerun_parallel_matches_serial() {
        check_parallel_matches_serial("cat $IN | cut -d ' ' -f 1 | sort -u | head -n 3");
    }

    #[test]
    fn redirect_chain_parallel_matches_serial() {
        check_parallel_matches_serial(
            "cat $IN | cut -d ' ' -f 1 | sort > /tmp1\ncat /tmp1 | uniq -c | sort -rn",
        );
    }

    #[test]
    fn timing_log_structure() {
        let env: HashMap<String, String> = [("IN".to_owned(), "/in.txt".to_owned())].into();
        let script = parse_script("cat $IN | grep apple | wc -l", &env).unwrap();
        let ctx = ExecContext::default();
        ctx.vfs.write("/in.txt", make_input());
        let mut planner = Planner::new(SynthesisConfig::default());
        let plan = planner.plan(&script, &ctx, &make_input());
        let result = run_parallel(&script, &plan, &ctx, 4, true).unwrap();
        let stages = &result.timings.statements[0];
        assert_eq!(stages.len(), 2);
        assert!(stages[0].parallel);
        assert!(stages[0].eliminated); // grep concat feeds wc -l
        assert_eq!(stages[0].piece_times.len(), 4);
        assert!(stages[1].parallel);
        assert!(!stages[1].eliminated);
        assert!(stages[1].bytes_out > 0);
    }

    #[test]
    fn worker_count_larger_than_lines() {
        let env: HashMap<String, String> = HashMap::new();
        let script = parse_script("cat /tiny | sort", &env).unwrap();
        let ctx = ExecContext::default();
        ctx.vfs.write("/tiny", "b\na\n");
        let serial = run_serial(&script, &ctx).unwrap();
        let mut planner = Planner::new(SynthesisConfig::default());
        let plan = planner.plan(&script, &ctx, "b\na\n");
        let par = run_parallel(&script, &plan, &ctx, 16, true).unwrap();
        assert_eq!(par.output, serial.output);
    }

    #[test]
    fn missing_input_file_is_an_error() {
        let script = parse_script("cat /absent | sort", &HashMap::new()).unwrap();
        let ctx = ExecContext::default();
        assert!(run_serial(&script, &ctx).is_err());
    }
}
