//! Bounded-queue streaming executor: chunks flow stage-to-stage before the
//! previous stage finishes.
//!
//! Every other executor in this crate barriers between stages — a stage's
//! whole output materializes before the next stage starts, even in
//! [`run_chunked`](crate::chunked::run_chunked), whose parallelism is
//! *within* a segment. This executor instead runs every planned segment
//! (see [`PlannedStatement::stream_segments`]) concurrently, connected by
//! bounded MPMC channels carrying line-aligned [`Bytes`] chunks:
//!
//! * a **feeder** splits the statement input into chunks and pushes them
//!   into the first channel;
//! * a **streaming segment** (a fused run of chunk-local stages — concat
//!   combiner, newline-terminated outputs: `grep`, `tr`, `cut`, per-line
//!   `sed`) runs a small worker pool over incoming chunks and forwards the
//!   outputs *in input order* as soon as they are contiguous, re-normalized
//!   to the target chunk size by an [`IncrementalChunker`]. No combiner
//!   ever runs — the Theorem 5 argument applied chunk-wise;
//! * a **barrier segment** (`sort`, `uniq -c`, `wc`, … — any parallel
//!   stage whose combiner is not plain concat) also processes chunks as
//!   they arrive on its pool, but folds the outputs through the stage's
//!   combiner incrementally ([`SynthesizedCombiner::incremental`]): the
//!   combine work — e.g. `sort`'s k-way merge — overlaps with upstream
//!   compute instead of serializing after it. Only the combined stream
//!   moves on, re-chunked;
//! * a **sequential segment** (no combiner, or a rerun that does not pay)
//!   re-gathers its input through a [`Rope`], runs the command once, and
//!   re-chunks the output;
//! * a **bounded segment** (`head -n k`, `sed kq` — a stage whose output
//!   depends only on its first `k` input lines, see
//!   [`PlannedStage::line_bound`](crate::plan::PlannedStage::line_bound)) holds a *demand token*: it gathers
//!   in-order chunks only until `k` complete lines exist, then drops its
//!   receiver — cancelling every upstream producer — runs the command
//!   once on the prefix, and re-chunks the output downstream;
//! * the statement's final channel drains into the result rope.
//!
//! Backpressure: every inter-segment channel and every pool's result
//! channel is bounded, so a fast producer blocks once `queue_depth` chunks
//! are in flight — total buffering per statement is
//! O(segments × (queue_depth + workers) × chunk_bytes) chunk *handles*
//! (payloads are refcounted slices).
//!
//! Out-of-core inputs: every chunk producer (the feeder, sequential
//! segments, barrier outputs) cuts its stream with the *lazy* chunker
//! ([`Bytes::chunks`]) and trails a page-release hint
//! ([`Bytes::release_range`]) a bounded lag behind its cursor. For a
//! memory-mapped input (see `kq-io`) this means pages fault in just ahead
//! of consumption and are dropped once the in-flight window has passed
//! them, so a multi-GB file streams through at O(window) resident memory
//! — both calls are no-ops for heap-backed streams, and an early release
//! is only ever a refault, never a correctness edge.
//!
//! # Teardown: cancelled versus failed
//!
//! Two events tear a pipeline down early, sharing one mechanism (dropping
//! channel endpoints, observed upstream as failing sends or
//! `Sender::is_disconnected`) but differing in verdict:
//!
//! | | trigger | upstream producers | downstream consumers | statement result |
//! |---|---|---|---|---|
//! | **failed** | a command error in any segment | sends fail → bail (timings are discarded with the error) | end-of-input → drain | the failing segment's `Err` surfaces from [`run_streaming`] |
//! | **cancelled** | a bounded consumer met its `k`-line demand | sends fail → bail; pool collectors report the telemetry of the work they actually did | the bounded stage's re-chunked output, then end-of-input | `Ok` — success, with `StageTiming::early_exit` recording the bounded stage and its consumed chunk count |
//!
//! A cancelled pipeline stops cutting chunks at the feeder (which also
//! releases the resident tail of a memory-mapped input via
//! [`Bytes::release_range`]), so a `cat big | grep p | head -n 1` run
//! does O(first match) bytes of upstream work, not O(file). Cancellation
//! reproduces real Unix `SIGPIPE` semantics: bytes past the consumed
//! prefix are never processed, so a command error lurking in the unread
//! tail never fires — the serial oracle, which reads everything, can fail
//! where a cancelled streaming run succeeds, exactly as
//! `big | grep p | head -n 1` outruns a corrupt late line in a real
//! shell. On *successful* serial runs the outputs are byte-identical
//! (`tests/early_exit.rs` pins every prefix-bounded corpus script).
//!
//! Failure teardown is asserted with a watchdog in
//! `tests/failure_injection.rs`; cancellation teardown (a 256 MiB
//! producer must stop without draining its input) in
//! `tests/early_exit.rs`.
//!
//! Output equivalence with [`run_serial`](crate::exec::run_serial) across
//! the whole corpus — at several chunk sizes, including degenerate ones —
//! is asserted by `tests/streaming_differential.rs`.
//!
//! [`SynthesizedCombiner::incremental`]: kq_synth::SynthesizedCombiner::incremental
//! [`IncrementalChunker`]: kq_stream::IncrementalChunker

use crate::chunked::run_chain;
use crate::exec::{gather_files, ExecutionResult, StageTiming, TimingLog};
use crate::parse::{Script, Statement};
use crate::plan::{PlannedScript, PlannedStatement, StageMode, StreamSegmentKind};
use crossbeam::channel;
use kq_coreutils::{CmdError, Command, ExecContext};
use kq_dsl::eval::CommandEnv;
use kq_stream::{Bytes, IncrementalChunker, Rope};
use std::collections::BTreeMap;
use std::time::{Duration, Instant};

/// Tuning for the streaming executor.
#[derive(Debug, Clone)]
pub struct StreamingOptions {
    /// Worker threads per parallel (streaming or barrier) segment.
    pub workers: usize,
    /// Target chunk size in bytes for the feeder and for every
    /// re-chunking point (sequential and barrier outputs, streaming
    /// re-normalization).
    pub chunk_bytes: usize,
    /// Capacity of each bounded inter-segment channel, in chunks: the
    /// backpressure knob. 1 is fully lock-step; larger values absorb
    /// per-chunk cost variance between neighboring segments.
    pub queue_depth: usize,
    /// Fuse maximal runs of chunk-local stages into one segment (one pool
    /// pipes each chunk through the whole run). `false` gives every stage
    /// its own segment and channel hop — same output, more hand-offs; the
    /// differential suite uses it to stress the plumbing.
    pub fuse_streamable: bool,
    /// Spill policy for barrier folds: when set, each barrier segment
    /// derives a per-stage [`SpillConfig`](kq_dsl::SpillConfig) from it and
    /// writes sorted runs to disk once the resident run bytes would cross
    /// the budget. `None` keeps every run on the heap (the default).
    pub spill: Option<kq_dsl::SpillPolicy>,
}

impl Default for StreamingOptions {
    fn default() -> Self {
        StreamingOptions {
            workers: 4,
            chunk_bytes: 64 * 1024,
            queue_depth: 4,
            fuse_streamable: true,
            spill: None,
        }
    }
}

/// A chunk in flight: its ordinal within the producing segment's output
/// stream, and its payload (a refcounted slice — sending is an Arc bump).
type Chunk = (usize, Bytes);

/// Sends `source` downstream as lazily cut, line-aligned chunks, with a
/// page-release hint trailing `release_lag` bytes behind the cursor.
///
/// This is the out-of-core discipline shared by the feeder and by every
/// segment that re-chunks a materialized stream: boundaries are computed
/// just ahead of each send (so a mapped source pages in chunk by chunk
/// instead of being scanned — and made resident — up front), and pages
/// the bounded in-flight window has structurally passed are dropped
/// ([`Bytes::release_range`]; a no-op for heap sources, a refault-on-
/// retouch hint for mapped ones). Returns `false` when the consumer
/// disappeared (pipeline teardown). Time spent blocked inside `send`
/// (downstream backpressure) accumulates into `telem.send_stall`, and the
/// channel occupancy observed right after each send raises
/// `telem.max_queued` — the send-side view of how full the bounded edge
/// actually ran.
fn send_chunked(
    source: &Bytes,
    chunk_bytes: usize,
    release_lag: usize,
    tx: &channel::Sender<Chunk>,
    telem: &mut crate::exec::QueueTelemetry,
) -> bool {
    let span = kq_trace::span("streaming", "send").v(source.len() as f64);
    let mut fed = 0usize;
    let mut released = 0usize;
    for chunk in source.chunks(chunk_bytes).enumerate() {
        let len = chunk.1.len();
        let t0 = Instant::now();
        let sent = tx.send(chunk);
        telem.send_stall += t0.elapsed();
        if sent.is_err() {
            // The consumer disappeared — cancellation (a bounded consumer
            // satisfied its demand) or failure teardown. Nobody will read
            // the rest of this stream: drop the whole resident tail of a
            // mapped source, including the in-flight window (a straggler
            // worker touching an already-delivered slice merely refaults).
            source.release_range(released..source.len());
            return false;
        }
        telem.max_queued = telem.max_queued.max(tx.len());
        fed += len;
        if fed > released + 2 * release_lag {
            let upto = fed - release_lag;
            source.release_range(released..upto);
            released = upto;
        }
    }
    span.done();
    true
}

/// A pool worker's report: chunk ordinal, input length, wall-clock cost,
/// and the chain result.
type WorkerResult = (usize, usize, Duration, Result<Bytes, CmdError>);

/// Runs a planned script with the bounded-queue streaming executor.
///
/// Statements execute in order (later statements may read files redirected
/// by earlier ones); within a statement all segments run concurrently as
/// described in the [module docs](self).
pub fn run_streaming(
    script: &Script,
    plan: &PlannedScript,
    ctx: &ExecContext,
    opts: &StreamingOptions,
) -> Result<ExecutionResult, CmdError> {
    let mut output = Rope::new();
    let mut timings = TimingLog::default();
    for (si, (statement, planned)) in script.statements.iter().zip(&plan.statements).enumerate() {
        let input = gather_files(&statement.input, ctx)?;
        let (stream, stage_timings) = if statement.stages.is_empty() {
            (input, Vec::new())
        } else {
            run_statement(si, statement, planned, input, ctx, opts)?
        };
        timings.statements.push(stage_timings);
        match &statement.output {
            // Redirection stores the shared slice — no copy.
            Some(target) => ctx.vfs.write(target.clone(), stream),
            None => output.push(stream),
        }
    }
    Ok(ExecutionResult {
        output: output.into_bytes(),
        timings,
    })
}

/// Pipelines one statement: spawns the feeder, one worker set per segment,
/// and drains the sink on the calling thread.
fn run_statement(
    si: usize,
    statement: &Statement,
    planned: &PlannedStatement,
    input: Bytes,
    ctx: &ExecContext,
    opts: &StreamingOptions,
) -> Result<(Bytes, Vec<StageTiming>), CmdError> {
    let _stmt_span = kq_trace::span("streaming", "statement")
        .si(si)
        .v(input.len() as f64);
    let chunk_bytes = opts.chunk_bytes.max(1);
    let queue_depth = opts.queue_depth.max(1);
    let workers = opts.workers.max(1);
    let segments = planned.stream_segments(opts.fuse_streamable);

    // Channel i feeds segment i; the last channel is the sink.
    let mut txs = Vec::with_capacity(segments.len() + 1);
    let mut rxs = Vec::with_capacity(segments.len() + 1);
    for _ in 0..=segments.len() {
        let (tx, rx) = channel::bounded::<Chunk>(queue_depth);
        txs.push(tx);
        rxs.push(rx);
    }
    let mut txs = txs.into_iter();
    let mut rxs = rxs.into_iter();

    // How far the feeder's page-release hint trails its cursor: generously
    // past the pipeline's bounded in-flight window (every channel and pool
    // full), floored so small configurations never thrash. Pages released
    // early merely refault — a perf hint, never a correctness edge. Under
    // a spill budget the contract flips from throughput to bounded memory:
    // a generous trailing window on each big mapped stream (the ingest map
    // plus every barrier output being re-fed downstream) costs tens of MiB
    // of residency, so cap the lag and take the occasional refault — the
    // pages are page-cache-hot anyway.
    let release_lag = chunk_bytes
        .saturating_mul(queue_depth + workers)
        .saturating_mul(segments.len() + 2)
        .max(16 << 20);
    let release_lag = match opts.spill {
        Some(_) => release_lag.min(2 << 20),
        None => release_lag,
    };

    // Demand propagation: a streaming segment whose downstream chain
    // leads to a prefix-bounded consumer through chunk-local stages only
    // flushes its collector eagerly (complete lines ship immediately
    // instead of re-normalizing to the chunk-size target). Otherwise a
    // sparse stage — `grep` with one match — would buffer its only lines
    // until end-of-input and the bound downstream could never cancel
    // anything. Barriers and sequential stages need their whole input
    // regardless, so the propagation stops there.
    let mut eager_flush = vec![false; segments.len()];
    for i in (0..segments.len().saturating_sub(1)).rev() {
        eager_flush[i] = match segments[i + 1].kind {
            StreamSegmentKind::Bounded { .. } => true,
            StreamSegmentKind::Streaming => eager_flush[i + 1],
            StreamSegmentKind::Barrier | StreamSegmentKind::Sequential => false,
        };
    }

    std::thread::scope(|scope| {
        let feed_tx = txs.next().expect("feeder sender");
        let feed_input = input.clone();
        scope.spawn(move || {
            // A send failure means downstream tore down; unwind quietly.
            // The feeder has no StageTiming, so its telemetry is discarded
            // (the `streaming/send` span still records the feed interval).
            let mut discarded = crate::exec::QueueTelemetry::default();
            send_chunked(
                &feed_input,
                chunk_bytes,
                release_lag,
                &feed_tx,
                &mut discarded,
            );
        });

        let mut handles = Vec::with_capacity(segments.len());
        for (seg_idx, segment) in segments.iter().enumerate() {
            let seg_rx = rxs.next().expect("segment receiver");
            let seg_tx = txs.next().expect("segment sender");
            let handle = match segment.kind {
                StreamSegmentKind::Bounded { lines } => {
                    let stage_idx = segment.stages.start;
                    let cmd = &statement.stages[stage_idx].command;
                    scope.spawn(move || -> Result<StageTiming, CmdError> {
                        // The demand token is the receiver itself: hold it
                        // only until `lines` complete lines exist, then
                        // drop it so every upstream producer unwinds
                        // without draining the rest of the input.
                        let mut rope = Rope::new();
                        let mut seen = 0usize;
                        let mut chunks = 0usize;
                        let mut upstream_done = false;
                        let mut telem = crate::exec::QueueTelemetry::default();
                        while seen < lines {
                            let t0 = Instant::now();
                            let received = seg_rx.recv();
                            telem.recv_stall += t0.elapsed();
                            let Some((_seq, chunk)) = received else {
                                upstream_done = true;
                                break;
                            };
                            telem.max_queued = telem.max_queued.max(seg_rx.len() + 1);
                            if seg_tx.is_disconnected() {
                                return Ok(empty_timing(cmd.display(), false, false));
                            }
                            seen += chunk.count_newlines();
                            chunks += 1;
                            telem.tasks += 1;
                            rope.push(chunk);
                        }
                        // Cancellation point. Sound because the chunks are
                        // line-aligned and arrive in stream order from a
                        // single upstream sender: the rope is a prefix of
                        // the full stream holding >= `lines` complete
                        // lines (or all of it), which is exactly what the
                        // line_bound contract says the command may see.
                        drop(seg_rx);
                        if !upstream_done {
                            kq_trace::instant("streaming", "early-exit")
                                .si(si)
                                .ni(seg_idx)
                                .v(chunks as f64)
                                .emit();
                        }
                        let stage_in = rope.into_bytes();
                        let bytes_in = stage_in.len();
                        let run_span = kq_trace::span("streaming", "bounded-run")
                            .si(si)
                            .ni(seg_idx)
                            .v(stage_in.len() as f64);
                        let t0 = Instant::now();
                        let out = cmd.run(stage_in, ctx)?;
                        let elapsed = t0.elapsed();
                        run_span.done();
                        let bytes_out = out.len();
                        send_chunked(&out, chunk_bytes, release_lag, &seg_tx, &mut telem);
                        Ok(StageTiming {
                            label: cmd.display(),
                            parallel: false,
                            eliminated: false,
                            piece_times: vec![elapsed],
                            combine_time: Duration::ZERO,
                            bytes_in,
                            bytes_out,
                            bytes_out_pieces: bytes_out,
                            early_exit: (!upstream_done).then_some(crate::exec::EarlyExit {
                                stage: stage_idx,
                                chunks,
                            }),
                            queue: Some(telem),
                            spill: None,
                        })
                    })
                }
                StreamSegmentKind::Sequential => {
                    let cmd = &statement.stages[segment.stages.start].command;
                    scope.spawn(move || -> Result<StageTiming, CmdError> {
                        let mut rope = Rope::new();
                        let mut telem = crate::exec::QueueTelemetry::default();
                        loop {
                            let t0 = Instant::now();
                            let received = seg_rx.recv();
                            telem.recv_stall += t0.elapsed();
                            let Some((_seq, chunk)) = received else { break };
                            telem.max_queued = telem.max_queued.max(seg_rx.len() + 1);
                            // Downstream tore down (its own handle carries
                            // the error): stop gathering so upstream
                            // unwinds now instead of draining the stream.
                            if seg_tx.is_disconnected() {
                                return Ok(empty_timing(cmd.display(), false, false));
                            }
                            telem.tasks += 1;
                            rope.push(chunk);
                        }
                        let stage_in = rope.into_bytes();
                        let bytes_in = stage_in.len();
                        let run_span = kq_trace::span("streaming", "seq-run")
                            .si(si)
                            .ni(seg_idx)
                            .v(stage_in.len() as f64);
                        let t0 = Instant::now();
                        let out = cmd.run(stage_in, ctx)?;
                        let elapsed = t0.elapsed();
                        run_span.done();
                        let bytes_out = out.len();
                        // Source commands (`cat big-file`) return the
                        // mapped input itself: chunk it lazily with the
                        // same trailing release as the feeder, or the
                        // re-chunk scan would page the whole map in.
                        send_chunked(&out, chunk_bytes, release_lag, &seg_tx, &mut telem);
                        Ok(StageTiming {
                            label: cmd.display(),
                            parallel: false,
                            eliminated: false,
                            piece_times: vec![elapsed],
                            combine_time: Duration::ZERO,
                            bytes_in,
                            bytes_out,
                            bytes_out_pieces: bytes_out,
                            early_exit: None,
                            queue: Some(telem),
                            spill: None,
                        })
                    })
                }
                StreamSegmentKind::Streaming | StreamSegmentKind::Barrier => {
                    // The pool: `workers` threads pull chunks off the
                    // segment's input channel (MPMC, cloned receiver) and
                    // report results unordered on a bounded side channel —
                    // the same shape as the chunked executor's pool, with
                    // the feeder replaced by the upstream segment.
                    let chain: Vec<&Command> = segment
                        .stages
                        .clone()
                        .map(|i| &statement.stages[i].command)
                        .collect();
                    let label = chain
                        .iter()
                        .map(|c| c.display())
                        .collect::<Vec<_>>()
                        .join(" | ");
                    let (res_tx, res_rx) =
                        channel::bounded::<WorkerResult>((workers * 2).max(queue_depth));
                    for _ in 0..workers {
                        let rx = seg_rx.clone();
                        let res_tx = res_tx.clone();
                        let chain = chain.clone();
                        scope.spawn(move || {
                            for (seq, chunk) in rx.iter() {
                                let in_len = chunk.len();
                                let span = kq_trace::span("streaming", "map")
                                    .si(si)
                                    .ni(seg_idx)
                                    .seq(seq)
                                    .v(in_len as f64);
                                let t0 = Instant::now();
                                let out = run_chain(&chain, chunk, ctx);
                                span.done();
                                let failed = out.is_err();
                                if res_tx.send((seq, in_len, t0.elapsed(), out)).is_err() || failed
                                {
                                    break;
                                }
                            }
                        });
                    }
                    drop(seg_rx);
                    drop(res_tx);

                    match segment.kind {
                        StreamSegmentKind::Streaming => scope.spawn({
                            let eager = eager_flush[seg_idx];
                            move || collect_streaming(label, res_rx, seg_tx, chunk_bytes, eager)
                        }),
                        StreamSegmentKind::Barrier => {
                            let closing = segment.stages.start;
                            let StageMode::Parallel { combiner, .. } =
                                &planned.stages[closing].mode
                            else {
                                unreachable!("barrier segments are parallel stages");
                            };
                            let combiner = combiner.clone();
                            let closing_cmd = &statement.stages[closing].command;
                            let spill = opts.spill.as_ref().map(|p| p.stage_config());
                            scope.spawn(move || {
                                collect_barrier(
                                    (si, seg_idx),
                                    label,
                                    &combiner,
                                    closing_cmd,
                                    ctx,
                                    res_rx,
                                    seg_tx,
                                    chunk_bytes,
                                    release_lag,
                                    spill,
                                )
                            })
                        }
                        StreamSegmentKind::Sequential | StreamSegmentKind::Bounded { .. } => {
                            unreachable!()
                        }
                    }
                }
            };
            handles.push(handle);
        }

        // Drain the sink here: the pipeline needs a live consumer before
        // any segment result can be joined.
        let sink_rx = rxs.next().expect("sink receiver");
        let mut rope = Rope::new();
        for (_seq, chunk) in sink_rx.iter() {
            rope.push(chunk);
        }

        let mut stage_timings = Vec::with_capacity(handles.len());
        let mut first_err: Option<CmdError> = None;
        for handle in handles {
            match handle.join().expect("segment thread panicked") {
                Ok(timing) => stage_timings.push(timing),
                Err(e) => first_err = first_err.or(Some(e)),
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok((rope.into_bytes(), stage_timings)),
        }
    })
}

/// Collector for a streaming segment: restores input order, re-normalizes
/// chunk sizes, and forwards downstream as soon as a contiguous prefix of
/// outputs exists.
///
/// With `eager_flush` (the demand-propagation mode: downstream reaches a
/// prefix-bounded consumer through chunk-local stages only), every
/// contiguous piece's complete lines ship immediately instead of waiting
/// to fill the chunk-size target — otherwise a sparse stage would sit on
/// the very lines that satisfy the bound until end-of-input and the
/// cancellation could never fire. Same stream content, smaller chunks.
fn collect_streaming(
    label: String,
    res_rx: channel::Receiver<WorkerResult>,
    seg_tx: channel::Sender<Chunk>,
    chunk_bytes: usize,
    eager_flush: bool,
) -> Result<StageTiming, CmdError> {
    let mut pending: BTreeMap<usize, Bytes> = BTreeMap::new();
    let mut next = 0usize;
    let mut out_seq = 0usize;
    let mut chunker = IncrementalChunker::new(chunk_bytes);
    let mut piece_times: Vec<Duration> = Vec::new();
    let (mut bytes_in, mut bytes_out) = (0usize, 0usize);
    // A downstream teardown (a failing segment, or a bounded consumer
    // that satisfied its demand — the latter a *success* path) ends the
    // collection early: breaking out drops `res_rx` (pool workers' sends
    // fail → they drop the input receiver → upstream sends fail), and the
    // telemetry accumulated so far is returned as-is — on a cancelled run
    // these numbers land in the successful result and must describe the
    // work that actually happened, not read as a zero-byte stage.
    let mut torn_down = false;
    let mut telem = crate::exec::QueueTelemetry::default();
    'collect: loop {
        let t0 = Instant::now();
        let received = res_rx.recv();
        telem.recv_stall += t0.elapsed();
        let Some((seq, in_len, dur, res)) = received else {
            break 'collect;
        };
        // Sends only happen when chunk output actually accumulates, so a
        // sparse segment (`grep` with one match) could otherwise drain
        // its whole input without ever noticing that a bounded consumer
        // downstream cancelled — poll the demand token every result.
        if seg_tx.is_disconnected() {
            torn_down = true;
            break 'collect;
        }
        record_piece(&mut piece_times, seq, dur);
        bytes_in += in_len;
        telem.tasks += 1;
        telem.max_queued = telem.max_queued.max(res_rx.len() + 1);
        // A chain error tears the pipeline down: returning drops `res_rx`
        // and `seg_tx` (downstream sees end-of-input and drains).
        let out = res?;
        pending.insert(seq, out);
        while let Some(ready) = pending.remove(&next) {
            next += 1;
            bytes_out += ready.len();
            let mut outgoing = chunker.push(ready);
            if eager_flush {
                outgoing.extend(chunker.flush_pending());
            }
            for chunk in outgoing {
                let t0 = Instant::now();
                let sent = seg_tx.send((out_seq, chunk));
                telem.send_stall += t0.elapsed();
                if sent.is_err() {
                    torn_down = true;
                    break 'collect;
                }
                telem.max_queued = telem.max_queued.max(seg_tx.len());
                out_seq += 1;
            }
        }
    }
    if !torn_down {
        for chunk in chunker.finish() {
            let t0 = Instant::now();
            let sent = seg_tx.send((out_seq, chunk));
            telem.send_stall += t0.elapsed();
            if sent.is_err() {
                break;
            }
            out_seq += 1;
        }
    }
    Ok(StageTiming {
        label,
        parallel: true,
        eliminated: true, // no combiner ran: chunk outputs flowed through
        piece_times,
        combine_time: Duration::ZERO,
        bytes_in,
        bytes_out,
        bytes_out_pieces: bytes_out,
        early_exit: None,
        queue: Some(telem),
        spill: None,
    })
}

/// Collector for a barrier segment: restores input order and folds chunk
/// outputs through the stage's combiner *as they arrive*; only the final
/// combined stream is re-chunked downstream.
#[allow(clippy::too_many_arguments)]
fn collect_barrier(
    (si, ni): (usize, usize),
    label: String,
    combiner: &kq_synth::SynthesizedCombiner,
    closing_cmd: &Command,
    ctx: &ExecContext,
    res_rx: channel::Receiver<WorkerResult>,
    seg_tx: channel::Sender<Chunk>,
    chunk_bytes: usize,
    release_lag: usize,
    spill: Option<kq_dsl::SpillConfig>,
) -> Result<StageTiming, CmdError> {
    let env = CommandEnv {
        command: closing_cmd,
        ctx,
    };
    let spill_metrics = spill.as_ref().map(|cfg| cfg.metrics.clone());
    let mut accum = combiner.incremental_with_spill(&env, spill);
    let mut pending: BTreeMap<usize, Bytes> = BTreeMap::new();
    let mut next = 0usize;
    let mut piece_times: Vec<Duration> = Vec::new();
    let (mut bytes_in, mut bytes_out_pieces) = (0usize, 0usize);
    let mut combine_time = Duration::ZERO;
    // Downstream teardown ends the collection without combining the rest
    // — a failing segment's handle carries the error, and a bounded
    // consumer's cancellation (`sort | head -n 1`) is a success whose
    // result must still report the piece work this barrier actually did.
    let mut torn_down = false;
    let mut telem = crate::exec::QueueTelemetry::default();
    loop {
        let t0 = Instant::now();
        let received = res_rx.recv();
        telem.recv_stall += t0.elapsed();
        let Some((seq, in_len, dur, res)) = received else {
            break;
        };
        // This collector only transmits after end-of-input, so a blocked
        // `send` cannot tell it the consumer died — poll instead.
        if seg_tx.is_disconnected() {
            torn_down = true;
            break;
        }
        record_piece(&mut piece_times, seq, dur);
        bytes_in += in_len;
        telem.tasks += 1;
        telem.max_queued = telem.max_queued.max(res_rx.len() + 1);
        let out = res?;
        pending.insert(seq, out);
        while let Some(piece) = pending.remove(&next) {
            next += 1;
            bytes_out_pieces += piece.len();
            let span = kq_trace::span("streaming", "fold-push")
                .si(si)
                .ni(ni)
                .seq(next - 1);
            let t0 = Instant::now();
            accum.push(piece);
            span.done();
            combine_time += t0.elapsed();
        }
    }
    let bytes_out = if torn_down {
        // Nobody will read the combined stream: skip the final combine.
        0
    } else {
        let span = kq_trace::span("streaming", "fold-finish").si(si).ni(ni);
        let t0 = Instant::now();
        let finished = accum.finish();
        span.done();
        let combined = finished.map_err(|e| CmdError::new(closing_cmd.display(), e.to_string()))?;
        combine_time += t0.elapsed();
        send_chunked(&combined, chunk_bytes, release_lag, &seg_tx, &mut telem);
        combined.len()
    };
    Ok(StageTiming {
        label,
        parallel: true,
        eliminated: false,
        piece_times,
        combine_time,
        bytes_in,
        bytes_out,
        bytes_out_pieces,
        early_exit: None,
        queue: Some(telem),
        spill: spill_metrics
            .as_deref()
            .map(crate::exec::SpillTelemetry::from_metrics),
    })
}

/// The placeholder timing a segment returns when it bails out because a
/// downstream segment tore the pipeline down — the statement is about to
/// surface that segment's error, so these numbers are never reported.
fn empty_timing(label: String, parallel: bool, eliminated: bool) -> StageTiming {
    StageTiming {
        label,
        parallel,
        eliminated,
        piece_times: Vec::new(),
        combine_time: Duration::ZERO,
        bytes_in: 0,
        bytes_out: 0,
        bytes_out_pieces: 0,
        early_exit: None,
        queue: None,
        spill: None,
    }
}

/// Slots a piece duration at its chunk ordinal (results arrive unordered).
fn record_piece(times: &mut Vec<Duration>, seq: usize, dur: Duration) {
    if times.len() <= seq {
        times.resize(seq + 1, Duration::ZERO);
    }
    times[seq] = dur;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::run_serial;
    use crate::parse::parse_script;
    use crate::plan::Planner;
    use kq_synth::SynthesisConfig;
    use std::collections::HashMap;

    fn make_input(lines: usize) -> String {
        let words = ["apple", "dog", "cat", "apple", "bird", "cat", "fox"];
        let mut s = String::new();
        for i in 0..lines {
            s.push_str(&format!(
                "{} {} line {}\n",
                words[i % words.len()],
                words[(i * 3 + 1) % words.len()],
                i % 11
            ));
        }
        s
    }

    fn check(script_text: &str, chunk_bytes: usize) {
        let env: HashMap<String, String> = HashMap::new();
        let script = parse_script(script_text, &env).unwrap();
        let ctx = ExecContext::default();
        ctx.vfs.write("/in.txt", make_input(500));
        let serial = run_serial(&script, &ctx).unwrap();
        let mut planner = Planner::new(SynthesisConfig::default());
        let plan = planner.plan(&script, &ctx, &make_input(100));
        for workers in [1, 3] {
            for queue_depth in [1, 4] {
                for fuse in [true, false] {
                    let opts = StreamingOptions {
                        workers,
                        chunk_bytes,
                        queue_depth,
                        fuse_streamable: fuse,
                        spill: None,
                    };
                    let got = run_streaming(&script, &plan, &ctx, &opts).unwrap();
                    assert_eq!(
                        got.output, serial.output,
                        "{script_text:?} differs (w={workers}, chunk={chunk_bytes}, \
                         depth={queue_depth}, fuse={fuse})"
                    );
                }
            }
        }
    }

    #[test]
    fn word_frequency_streams() {
        check(
            "cat /in.txt | cut -d ' ' -f 1 | sort | uniq -c | sort -rn",
            256,
        );
    }

    #[test]
    fn streamable_chain_streams() {
        check(
            "cat /in.txt | grep apple | tr a-z A-Z | cut -d ' ' -f 1",
            300,
        );
    }

    #[test]
    fn counting_pipeline_streams() {
        check("cat /in.txt | grep apple | wc -l", 512);
    }

    #[test]
    fn sequential_stage_mid_pipeline() {
        // sed 1d has no combiner: gather → run once → re-chunk.
        check("cat /in.txt | sed 1d | sort | uniq", 400);
    }

    #[test]
    fn chunk_larger_than_input_degenerates_to_serial() {
        check("cat /in.txt | sort | uniq -c", 10_000_000);
    }

    #[test]
    fn one_byte_chunks_are_one_line_each() {
        check("cat /in.txt | cut -d ' ' -f 2 | sort | uniq -c", 1);
    }

    #[test]
    fn redirect_chain_streams() {
        check(
            "cat /in.txt | cut -d ' ' -f 1 | sort > /tmp1\ncat /tmp1 | uniq -c | sort -rn",
            350,
        );
    }

    #[test]
    fn empty_input_is_fine() {
        let env: HashMap<String, String> = HashMap::new();
        let script = parse_script("cat /empty | sort | uniq -c", &env).unwrap();
        let ctx = ExecContext::default();
        ctx.vfs.write("/empty", "");
        let mut planner = Planner::new(SynthesisConfig::default());
        let plan = planner.plan(&script, &ctx, &make_input(50));
        let got = run_streaming(&script, &plan, &ctx, &StreamingOptions::default()).unwrap();
        assert_eq!(got.output, "");
    }

    #[test]
    fn timing_log_reports_segments() {
        let env: HashMap<String, String> = HashMap::new();
        let script = parse_script("cat /in.txt | tr A-Z a-z | grep a | sort", &env).unwrap();
        let ctx = ExecContext::default();
        let input = make_input(400);
        ctx.vfs.write("/in.txt", &input);
        let mut planner = Planner::new(SynthesisConfig::default());
        let plan = planner.plan(&script, &ctx, &input);
        let opts = StreamingOptions {
            workers: 2,
            chunk_bytes: 1024,
            queue_depth: 2,
            fuse_streamable: true,
            spill: None,
        };
        let got = run_streaming(&script, &plan, &ctx, &opts).unwrap();
        let stages = &got.timings.statements[0];
        // tr|grep fuse into one streaming segment; sort barriers.
        assert_eq!(stages.len(), 2);
        assert!(stages[0].label.contains('|'));
        assert!(stages[0].eliminated, "streaming segment skips its combiner");
        assert!(!stages[1].eliminated, "sort combines");
        assert!(stages[1].combine_time > Duration::ZERO);
        assert!(stages[0].piece_times.len() > 1, "expected many chunks");
    }

    #[test]
    fn head_terminated_pipelines_stay_byte_identical() {
        check("cat /in.txt | grep apple | head -n 1", 64);
        check("cat /in.txt | head -n 2 | cut -d ' ' -f 1", 128);
        check("cat /in.txt | sort -u | head -n 3", 256);
        check("cat /in.txt | sed 5q | sort", 200);
        check("cat /in.txt | grep apple | head -n 1 | tr a-z A-Z", 64);
        // Degenerate bounds: zero lines, and a bound past end-of-input.
        check("cat /in.txt | head -n 0 | sort", 128);
        check("cat /in.txt | head -n 999 | sort", 300);
    }

    #[test]
    fn bounded_consumer_cancels_upstream_and_reports_early_exit() {
        let env: HashMap<String, String> = HashMap::new();
        let script = parse_script("cat /in.txt | grep apple | head -n 1", &env).unwrap();
        let ctx = ExecContext::default();
        let input = make_input(5000);
        ctx.vfs.write("/in.txt", &input);
        let mut planner = Planner::new(SynthesisConfig::default());
        let plan = planner.plan(&script, &ctx, &make_input(100));
        let opts = StreamingOptions {
            workers: 2,
            chunk_bytes: 256,
            queue_depth: 2,
            fuse_streamable: true,
            spill: None,
        };
        let got = run_streaming(&script, &plan, &ctx, &opts).unwrap();
        let serial = run_serial(&script, &ctx).unwrap();
        assert_eq!(got.output, serial.output);
        let stages = &got.timings.statements[0];
        let head = stages
            .iter()
            .find(|s| s.label.starts_with("head"))
            .expect("head stage timing");
        let early = head.early_exit.expect("head must report its early exit");
        assert!(early.chunks >= 1, "head consumed at least the first chunk");
        assert_eq!(early.stage, 1, "head is pipeline stage 1 (grep is 0)");
        // The cancelled grep segment processed a small prefix, not the
        // whole stream: upstream work is O(first match), O(input).
        let grep = stages
            .iter()
            .find(|s| s.label.starts_with("grep"))
            .expect("grep stage timing");
        assert!(
            grep.bytes_in < input.len() / 4,
            "grep consumed {} of {} bytes despite the cancellation",
            grep.bytes_in,
            input.len()
        );
    }

    #[test]
    fn exhausted_bound_is_not_an_early_exit() {
        // head -n past the end of the stream: upstream runs to end-of-input,
        // so no cancellation happened and none may be reported.
        let env: HashMap<String, String> = HashMap::new();
        let script = parse_script("cat /in.txt | head -n 999", &env).unwrap();
        let ctx = ExecContext::default();
        ctx.vfs.write("/in.txt", make_input(200));
        let mut planner = Planner::new(SynthesisConfig::default());
        let plan = planner.plan(&script, &ctx, &make_input(50));
        let got = run_streaming(&script, &plan, &ctx, &StreamingOptions::default()).unwrap();
        let head = &got.timings.statements[0][0];
        assert_eq!(head.early_exit, None);
        assert_eq!(got.output, run_serial(&script, &ctx).unwrap().output);
    }

    #[test]
    fn missing_input_file_is_an_error() {
        let script = parse_script("cat /absent | sort", &HashMap::new()).unwrap();
        let ctx = ExecContext::default();
        let mut planner = Planner::new(SynthesisConfig::default());
        let plan = planner.plan(&script, &ctx, "b\na\n");
        assert!(run_streaming(&script, &plan, &ctx, &StreamingOptions::default()).is_err());
    }
}
