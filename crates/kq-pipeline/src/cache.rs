//! The combiner cache: normalized command signatures, in-process reuse,
//! and an optional versioned on-disk store.
//!
//! # Keys
//!
//! Entries are keyed by a *normalized command signature*
//! ([`cache_key`]) rather than the raw display line: the program name,
//! the flag set in canonical form (single-letter clusters exploded,
//! value-taking options paired with their values, the whole set sorted),
//! and the operands in order. `grep -n -c p`, `grep -cn p`, and
//! `grep -c -n p` all share one entry; `grep -cn q` does not.
//! Normalization is deliberately conservative — only the programs this
//! crate ships (with a per-program table of value-taking options) are
//! normalized; anything else (e.g. a [`Command::custom`] wrapper) keys on
//! its raw display line. A key collision can therefore only arise from
//! the normalizer itself, and even then costs at most a wasted
//! re-synthesis: on-disk hits are validated against a fresh observation
//! before being trusted (see below).
//!
//! # The on-disk store
//!
//! [`CombinerCache::open`] attaches a line-oriented store:
//!
//! ```text
//! kumquat-combiner-cache v1 seed=<rng_seed> max_size=<n>
//! <escaped-key>\t-                      # synthesis proved: no combiner
//! <escaped-key>\t+\t<cand>;<cand>;...   # the plausible set (kq_dsl::codec)
//! ```
//!
//! The header pins both the format version and the synthesis
//! configuration fingerprint: a version bump or a different
//! `rng_seed`/`max_size` would make cached results unreproducible, so a
//! mismatched or corrupted file is **ignored with a warning, never
//! trusted** — any malformed line discards the whole file. Saving writes
//! to a temp file and renames, so concurrent processes sharing a path
//! can race without producing a torn file.
//!
//! ## Cross-process exclusion
//!
//! Rename atomicity alone cannot stop two concurrent planners from
//! *losing entries*: both load the same (possibly empty) store,
//! synthesize different commands, and the second rename silently discards
//! the first writer's work. Load and persist therefore serialize on an
//! advisory `flock` over a sidecar `<path>.lock` file (the store itself
//! is replaced by rename, so its inode cannot carry the lock): readers
//! take it shared, and [`CombinerCache::save`] takes it exclusive for a
//! read-**merge**-write — the current store is re-parsed under the lock
//! and any compatible entry this process does not already have passes
//! through into the new file, so concurrent planners union their results
//! instead of last-writer-wins. On targets without `flock` the lock
//! degrades to a no-op (single-process workflows are unaffected).
//!
//! # Trust policy
//!
//! An entry freshly synthesized in this process is trusted outright. An
//! entry loaded from disk is *pending*: the first lookup replays its
//! candidates against a fresh observation ([`kq_synth::spot_check`]) and
//! either promotes it (counted `validated`) or discards it and
//! re-synthesizes (counted `rejected`). Negative entries cannot be
//! replayed and are trusted as-is — a wrong negative only loses
//! parallelism (the stage runs sequentially), never correctness. Negative
//! results whose input profile was `Unsupported` (a probe environment
//! problem, e.g. a file dependency the script writes later) are not
//! persisted at all: they describe the context, not the command.

use kq_coreutils::Command;
use kq_dsl::ast::Candidate;
use kq_dsl::codec::{decode_candidate, encode_candidate, escape_token, unescape_token};
use kq_synth::{SynthesisConfig, SynthesizedCombiner};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Programs whose flag grammar the normalizer understands, with their
/// value-taking single-letter options. Everything else keys raw.
fn value_taking(program: &str, flag: char) -> bool {
    matches!(
        (program, flag),
        ("cut", 'd' | 'f' | 'c' | 'b')
            | ("head" | "tail", 'n' | 'c')
            | ("sort", 'k' | 't' | 'o' | 'S')
            | ("uniq", 'f' | 's' | 'w')
            | ("grep", 'e' | 'f' | 'm' | 'A' | 'B' | 'C')
            | ("sed", 'e')
            | ("awk" | "gawk", 'F' | 'v')
            | ("fold" | "fmt", 'w')
            | ("iconv", 'f' | 't')
            | ("xargs", 'L' | 'n' | 'I')
    )
}

const NORMALIZED_PROGRAMS: &[&str] = &[
    "cat", "nl", "tac", "fold", "expand", "shuf", "tr", "sort", "uniq", "grep", "sed", "cut",
    "head", "tail", "wc", "comm", "awk", "gawk", "xargs", "col", "rev", "fmt", "iconv", "paste",
    "diff", "ls", "mkfifo", "rm",
];

/// The raw-line key used for commands the normalizer does not
/// understand (and for manual registrations that fail to parse). The
/// line is escaped so it cannot smuggle the `\x1f` field separator.
pub(crate) fn raw_key(line: &str) -> String {
    format!("raw\x1f{}", escape_token(line))
}

/// The normalized cache signature for a command (see the module docs).
/// Every field is percent-escaped before being joined with `\x1f`, so a
/// hostile argument containing the separator byte cannot make two
/// different commands collide on one key.
pub fn cache_key(command: &Command) -> String {
    let argv = command.argv();
    let program = argv[0].as_str();
    if !NORMALIZED_PROGRAMS.contains(&program) {
        return raw_key(&command.display());
    }
    let mut flags: Vec<String> = Vec::new();
    let mut operands: Vec<&str> = Vec::new();
    let mut i = 1;
    while i < argv.len() {
        let word = argv[i].as_str();
        i += 1;
        if word == "-" || word == "--" || !word.starts_with('-') {
            operands.push(word);
            continue;
        }
        if word.starts_with("--") {
            flags.push(word.to_owned());
            continue;
        }
        // A short cluster: explode letter flags, pair a value-taking
        // option with the rest of the cluster (or the next word). A
        // cluster containing anything that is not a plain letter (e.g.
        // `head -15`) is kept whole — no guessing.
        let body = &word[1..];
        let mut exploded: Vec<String> = Vec::new();
        let mut intact = true;
        for (pos, c) in body.char_indices() {
            if value_taking(program, c) {
                let attached = &body[pos + c.len_utf8()..];
                let value = if !attached.is_empty() {
                    attached.to_owned()
                } else if i < argv.len() {
                    let v = argv[i].clone();
                    i += 1;
                    v
                } else {
                    String::new()
                };
                exploded.push(format!("-{c}={value}"));
                break;
            } else if c.is_ascii_alphabetic() {
                exploded.push(format!("-{c}"));
            } else {
                intact = false;
                break;
            }
        }
        if intact {
            flags.extend(exploded);
        } else {
            flags.push(word.to_owned());
        }
    }
    flags.sort();
    // Repeated boolean flags are idempotent (`grep -c -c`); repeated
    // value-carrying flags can be semantically meaningful (`sed -e A -e A`
    // applies the script twice), so only the former dedup.
    flags.dedup_by(|a, b| a == b && !a.contains('='));
    let mut key = String::from(program);
    for f in &flags {
        key.push('\x1f');
        key.push_str(&escape_token(f));
    }
    key.push('\x1f');
    key.push('|');
    for o in &operands {
        key.push('\x1f');
        key.push_str(&escape_token(o));
    }
    key
}

/// An advisory cross-process lock over a store path, held for the
/// value's lifetime (dropping closes the descriptor, which releases the
/// `flock`). Lock failures — including non-unix targets, where the shim
/// has no `flock` — degrade silently to the old unlocked behavior: the
/// lock protects against *lost entries*, never against corruption (the
/// versioned header and temp+rename already handle that). The `flock`
/// itself lives behind [`kq_io::FileLock`] — this crate denies `unsafe`
/// code.
struct StoreLock {
    _lock: kq_io::FileLock,
}

impl StoreLock {
    /// The sidecar lock path: `<store>.lock`, a stable inode next to a
    /// store that rename keeps replacing.
    fn lock_path(store: &Path) -> PathBuf {
        let mut name = store.as_os_str().to_owned();
        name.push(".lock");
        PathBuf::from(name)
    }

    /// Blocks until the lock is granted (shared for readers, exclusive
    /// for the save's read-merge-write critical section).
    fn acquire(store: &Path, exclusive: bool) -> StoreLock {
        StoreLock {
            _lock: kq_io::FileLock::acquire(&Self::lock_path(store), exclusive),
        }
    }
}

/// Lookup/persistence counters, surfaced by the CLI's report lines.
#[derive(Debug, Clone, Copy, Default)]
pub struct CacheStats {
    /// Lookups answered without synthesizing (trusted in-memory entries
    /// plus promoted disk entries).
    pub hits: usize,
    /// Lookups that fell through to synthesis (bumped by the planner
    /// when it records a synthesis result — plain inserts, e.g. manual
    /// registrations, do not count).
    pub misses: usize,
    /// Disk entries promoted after replay validation.
    pub validated: usize,
    /// Disk entries that failed replay validation and were re-synthesized.
    pub rejected: usize,
    /// Entries read from the on-disk store at open time.
    pub loaded: usize,
}

/// One cached verdict.
enum Slot {
    /// Trusted: synthesized (or validated) in this process. `None` means
    /// synthesis proved no combiner exists.
    Ready {
        combiner: Option<Arc<SynthesizedCombiner>>,
        /// Whether `save` writes this entry (manual registrations and
        /// Unsupported-profile negatives stay process-local).
        persist: bool,
    },
    /// Loaded from disk, pending replay validation. `None` is a persisted
    /// negative verdict.
    Disk(Option<Vec<Candidate>>),
}

/// What a cache lookup found (validation is the caller's job — it needs
/// the command and an execution context).
pub enum CacheLookup {
    /// A trusted entry.
    Ready(Option<Arc<SynthesizedCombiner>>),
    /// A disk entry whose candidates must be spot-checked first.
    NeedsValidation(Vec<Candidate>),
    /// Nothing cached.
    Miss,
}

/// The planner's combiner cache (see the module docs).
pub struct CombinerCache {
    entries: HashMap<String, Slot>,
    path: Option<PathBuf>,
    fingerprint: (u64, usize),
    dirty: bool,
    /// Lookup/persistence counters.
    pub stats: CacheStats,
    /// Diagnostics from loading (version mismatch, corruption) — the CLI
    /// prints these as notes.
    pub warnings: Vec<String>,
}

impl CombinerCache {
    /// A process-local cache (no disk store) — the planner default.
    pub fn in_memory(config: &SynthesisConfig) -> CombinerCache {
        CombinerCache {
            entries: HashMap::new(),
            path: None,
            fingerprint: (config.rng_seed, config.max_size),
            dirty: false,
            stats: CacheStats::default(),
            warnings: Vec::new(),
        }
    }

    /// Attaches an on-disk store, loading any compatible entries. A
    /// missing file is a cold cache; an unreadable, version-mismatched, or
    /// corrupted file is ignored with a warning (and overwritten on the
    /// next save).
    pub fn open(path: impl Into<PathBuf>, config: &SynthesisConfig) -> CombinerCache {
        let path = path.into();
        let mut cache = CombinerCache::in_memory(config);
        // Shared lock: serializes with a concurrent writer's
        // read-merge-write critical section (see the module docs).
        let _lock = StoreLock::acquire(&path, false);
        match std::fs::read_to_string(&path) {
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => cache.warnings.push(format!(
                "combiner cache {}: {e}; starting cold",
                path.display()
            )),
            Ok(text) => match parse_store(&text, cache.fingerprint) {
                Ok(entries) => {
                    cache.stats.loaded = entries.len();
                    cache.entries = entries
                        .into_iter()
                        .map(|(k, v)| (k, Slot::Disk(v)))
                        .collect();
                }
                Err(reason) => cache.warnings.push(format!(
                    "combiner cache {}: {reason}; ignoring the file",
                    path.display()
                )),
            },
        }
        cache.path = Some(path);
        cache
    }

    /// The attached store path, if any.
    pub fn path(&self) -> Option<&Path> {
        self.path.as_deref()
    }

    /// Looks up a key. Bumps the hit counter for trusted entries; disk
    /// entries are returned for validation without touching counters —
    /// settle them with [`CombinerCache::resolve_validation`] or a fresh
    /// [`CombinerCache::insert`].
    pub fn lookup(&mut self, key: &str) -> CacheLookup {
        match self.entries.get(key) {
            None => CacheLookup::Miss,
            Some(Slot::Ready { combiner, .. }) => {
                self.stats.hits += 1;
                CacheLookup::Ready(combiner.clone())
            }
            Some(Slot::Disk(None)) => {
                // Negative entries cannot be replayed; trust them (worst
                // case a stage stays sequential).
                let slot = Slot::Ready {
                    combiner: None,
                    persist: true,
                };
                self.entries.insert(key.to_owned(), slot);
                self.stats.hits += 1;
                CacheLookup::Ready(None)
            }
            Some(Slot::Disk(Some(candidates))) => CacheLookup::NeedsValidation(candidates.clone()),
        }
    }

    /// Settles a [`CacheLookup::NeedsValidation`] verdict. On success the
    /// entry is promoted (and the composite rebuilt from its plausible
    /// set); on failure it is dropped and the caller re-synthesizes.
    pub fn resolve_validation(
        &mut self,
        key: &str,
        candidates: Vec<Candidate>,
        valid: bool,
    ) -> Option<Arc<SynthesizedCombiner>> {
        if valid {
            let combiner = Arc::new(SynthesizedCombiner::from_plausible(candidates));
            self.entries.insert(
                key.to_owned(),
                Slot::Ready {
                    combiner: Some(combiner.clone()),
                    persist: true,
                },
            );
            self.stats.hits += 1;
            self.stats.validated += 1;
            Some(combiner)
        } else {
            self.entries.remove(key);
            self.stats.rejected += 1;
            None
        }
    }

    /// Records a synthesis result (or a manual registration with
    /// `persist = false`).
    pub fn insert(
        &mut self,
        key: impl Into<String>,
        combiner: Option<Arc<SynthesizedCombiner>>,
        persist: bool,
    ) {
        self.dirty |= persist;
        self.entries
            .insert(key.into(), Slot::Ready { combiner, persist });
    }

    /// Writes the store back to its path (temp file + rename, so a
    /// concurrent reader never sees a torn file). No-op for in-memory
    /// caches or when nothing changed. Returns whether a write happened.
    ///
    /// Holds the exclusive store lock across a read-**merge**-write:
    /// compatible entries another process persisted since this cache
    /// loaded pass through into the new file (and into this cache, as
    /// pending disk entries that validate like any other), so concurrent
    /// planners sharing a store union their syntheses instead of the
    /// last rename discarding the first writer's work.
    pub fn save(&mut self) -> Result<bool, String> {
        let Some(path) = &self.path else {
            return Ok(false);
        };
        if !self.dirty {
            return Ok(false);
        }
        let _lock = StoreLock::acquire(path, true);
        // Merge under the lock: adopt entries we do not have. A file that
        // is unreadable, mismatched, or corrupt contributes nothing (the
        // same trust rule as open) and is simply overwritten.
        if let Ok(text) = std::fs::read_to_string(path) {
            if let Ok(disk_entries) = parse_store(&text, self.fingerprint) {
                for (key, value) in disk_entries {
                    self.entries.entry(key).or_insert(Slot::Disk(value));
                }
            }
        }
        let mut lines: Vec<String> = Vec::with_capacity(self.entries.len() + 1);
        lines.push(format!(
            "kumquat-combiner-cache v1 seed={} max_size={}",
            self.fingerprint.0, self.fingerprint.1
        ));
        let mut body: Vec<String> = Vec::new();
        for (key, slot) in &self.entries {
            let encoded_key = escape_token(key);
            match slot {
                Slot::Ready { persist: false, .. } => {}
                Slot::Ready {
                    combiner: None,
                    persist: true,
                } => body.push(format!("{encoded_key}\t-")),
                Slot::Ready {
                    combiner: Some(c),
                    persist: true,
                } => body.push(format!("{encoded_key}\t+\t{}", encode_set(&c.plausible))),
                // Entries loaded but never needed this run pass through.
                Slot::Disk(None) => body.push(format!("{encoded_key}\t-")),
                Slot::Disk(Some(cands)) => {
                    body.push(format!("{encoded_key}\t+\t{}", encode_set(cands)))
                }
            }
        }
        body.sort(); // stable file contents for identical cache states
        lines.extend(body);
        let mut text = lines.join("\n");
        text.push('\n');
        let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
        std::fs::write(&tmp, &text).map_err(|e| format!("{}: {e}", tmp.display()))?;
        std::fs::rename(&tmp, path).map_err(|e| format!("{}: {e}", path.display()))?;
        self.dirty = false;
        Ok(true)
    }
}

fn encode_set(candidates: &[Candidate]) -> String {
    candidates
        .iter()
        .map(encode_candidate)
        .collect::<Vec<_>>()
        .join(";")
}

type StoreEntries = Vec<(String, Option<Vec<Candidate>>)>;

fn parse_store(text: &str, fingerprint: (u64, usize)) -> Result<StoreEntries, String> {
    let mut lines = text.lines();
    let header = lines.next().unwrap_or("");
    let expected = format!(
        "kumquat-combiner-cache v1 seed={} max_size={}",
        fingerprint.0, fingerprint.1
    );
    if header != expected {
        return Err(format!(
            "header {header:?} does not match this build/configuration ({expected:?})"
        ));
    }
    let mut entries: StoreEntries = Vec::new();
    for (no, line) in lines.enumerate() {
        if line.is_empty() {
            continue;
        }
        let mut fields = line.split('\t');
        let key = unescape_token(fields.next().unwrap_or(""))
            .map_err(|e| format!("line {}: bad key: {e}", no + 2))?;
        match (fields.next(), fields.next(), fields.next()) {
            (Some("-"), None, None) => entries.push((key, None)),
            (Some("+"), Some(cands), None) => {
                let mut set = Vec::new();
                for part in cands.split(';') {
                    set.push(
                        decode_candidate(part)
                            .map_err(|e| format!("line {}: bad candidate: {e}", no + 2))?,
                    );
                }
                if set.is_empty() {
                    return Err(format!("line {}: empty plausible set", no + 2));
                }
                entries.push((key, Some(set)));
            }
            _ => return Err(format!("line {}: malformed entry", no + 2)),
        }
    }
    Ok(entries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kq_coreutils::parse_command;
    use kq_dsl::ast::RecOp;

    fn key_of(line: &str) -> String {
        cache_key(&parse_command(line).unwrap())
    }

    #[test]
    fn equivalent_flag_orderings_share_one_key() {
        // The satellite's canonical example plus a few families.
        assert_eq!(key_of("grep -n -c p"), key_of("grep -cn p"));
        assert_eq!(key_of("grep -cn p"), key_of("grep -nc p"));
        assert_eq!(key_of("sort -rn"), key_of("sort -nr"));
        assert_eq!(key_of("sort -r -n"), key_of("sort -nr"));
        assert_eq!(key_of("tr -cs A-Za-z x"), key_of("tr -sc A-Za-z x"));
        assert_eq!(key_of("cut -d ',' -f 1"), key_of("cut -f 1 -d ','"));
        assert_eq!(key_of("cut -d, -f1"), key_of("cut -f 1 -d ','"));
        assert_eq!(key_of("sort -k1n"), key_of("sort -k 1n"));
        assert_eq!(key_of("head -n 3"), key_of("head -n3"));
    }

    #[test]
    fn differing_operands_or_flags_miss() {
        assert_ne!(key_of("grep -cn p"), key_of("grep -cn q"));
        assert_ne!(key_of("grep -c p"), key_of("grep -cn p"));
        assert_ne!(key_of("sort"), key_of("sort -r"));
        assert_ne!(key_of("cut -d ',' -f 1"), key_of("cut -d ',' -f 2"));
        assert_ne!(key_of("head -n 3"), key_of("head -n 4"));
        assert_ne!(key_of("comm -23 - /a"), key_of("comm -23 - /b"));
        // Numeric shorthand is kept whole, distinct from -n forms.
        assert_ne!(key_of("head -15"), key_of("head -n 15"));
        // A stdin dash is an operand, not noise.
        assert_ne!(key_of("cat -"), key_of("cat"));
        assert_ne!(key_of("comm -23 - /a"), key_of("comm -13 - /a"));
    }

    #[test]
    fn separator_bytes_in_arguments_cannot_collide_keys() {
        // Keying is defensive independently of what command parsers
        // accept (sed, for one, rejects such scripts outright): a single
        // hostile `-e` expression containing the field separator must not
        // produce the same key as two separate expressions. `cache_key`
        // reads argv only, so a custom wrapper stands in for the parser.
        struct Noop;
        impl kq_coreutils::UnixCommand for Noop {
            fn display(&self) -> String {
                "sed".to_owned()
            }
            fn run(
                &self,
                input: kq_coreutils::Bytes,
                _: &kq_coreutils::ExecContext,
            ) -> Result<kq_coreutils::Bytes, kq_coreutils::CmdError> {
                Ok(input)
            }
        }
        let argv = |words: &[&str]| -> Command {
            Command::custom(
                words.iter().map(|w| (*w).to_owned()).collect(),
                Box::new(Noop),
            )
        };
        let hostile = argv(&["sed", "-e", "1d\x1f-e=2d"]);
        let honest = argv(&["sed", "-e", "1d", "-e", "2d"]);
        assert_ne!(cache_key(&hostile), cache_key(&honest));
        // Repeated value-carrying flags are NOT deduplicated (they can be
        // semantically meaningful); repeated boolean flags are.
        assert_ne!(
            cache_key(&argv(&["sed", "-e", "1d", "-e", "1d"])),
            cache_key(&argv(&["sed", "-e", "1d"]))
        );
        assert_eq!(key_of("grep -c -c a"), key_of("grep -c a"));
        // Separator bytes in operands and raw-keyed lines escape too.
        assert_ne!(key_of("grep a\x1fb"), key_of("grep a"));
        assert_ne!(raw_key("x\x1fy"), raw_key("x"));
    }

    #[test]
    fn unknown_programs_key_on_the_raw_line() {
        use kq_coreutils::{Bytes, CmdError, ExecContext, UnixCommand};
        struct Upper;
        impl UnixCommand for Upper {
            fn display(&self) -> String {
                "upper -x".to_owned()
            }
            fn run(&self, input: Bytes, _: &ExecContext) -> Result<Bytes, CmdError> {
                Ok(Bytes::from(input.to_str().unwrap().to_uppercase()))
            }
        }
        let cmd = Command::custom(vec!["upper".to_owned(), "-x".to_owned()], Box::new(Upper));
        assert_eq!(cache_key(&cmd), "raw\x1fupper%20-x");
    }

    fn sample_combiner() -> Arc<SynthesizedCombiner> {
        Arc::new(SynthesizedCombiner::from_plausible(vec![
            Candidate::rec(RecOp::Back(kq_stream::Delim::Newline, Box::new(RecOp::Add))),
            Candidate::rec(RecOp::Fuse(kq_stream::Delim::Newline, Box::new(RecOp::Add))),
        ]))
    }

    fn tmpfile(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("kq-cache-{tag}-{}", std::process::id()))
    }

    #[test]
    fn roundtrip_through_disk() {
        let path = tmpfile("roundtrip");
        let config = SynthesisConfig::default();
        let mut cache = CombinerCache::open(&path, &config);
        cache.insert("wc\x1f-l\x1f|", Some(sample_combiner()), true);
        cache.insert("sed\x1f|\x1f1d", None, true);
        cache.insert("manual\x1f|", Some(sample_combiner()), false);
        assert!(cache.save().unwrap());

        let mut reloaded = CombinerCache::open(&path, &config);
        assert_eq!(reloaded.stats.loaded, 2, "manual entry must not persist");
        match reloaded.lookup("wc\x1f-l\x1f|") {
            CacheLookup::NeedsValidation(cands) => {
                assert_eq!(cands.len(), 2);
                let promoted = reloaded
                    .resolve_validation("wc\x1f-l\x1f|", cands, true)
                    .unwrap();
                assert_eq!(promoted.plausible.len(), 2);
                assert_eq!(
                    promoted.primary().to_string(),
                    sample_combiner().primary().to_string()
                );
            }
            _ => panic!("expected a pending disk entry"),
        }
        // Negative entries come back trusted.
        assert!(matches!(
            reloaded.lookup("sed\x1f|\x1f1d"),
            CacheLookup::Ready(None)
        ));
        assert!(matches!(reloaded.lookup("manual\x1f|"), CacheLookup::Miss));
        assert_eq!(reloaded.stats.validated, 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejected_validation_discards_the_entry() {
        let config = SynthesisConfig::default();
        let mut cache = CombinerCache::in_memory(&config);
        cache.entries.insert(
            "k".to_owned(),
            Slot::Disk(Some(vec![Candidate::rec(RecOp::Concat)])),
        );
        let CacheLookup::NeedsValidation(cands) = cache.lookup("k") else {
            panic!("expected pending entry");
        };
        assert!(cache.resolve_validation("k", cands, false).is_none());
        assert!(matches!(cache.lookup("k"), CacheLookup::Miss));
        assert_eq!(cache.stats.rejected, 1);
    }

    #[test]
    fn version_mismatch_is_ignored_with_a_warning() {
        let path = tmpfile("version");
        std::fs::write(&path, "kumquat-combiner-cache v0 seed=1 max_size=7\nx\t-\n").unwrap();
        let cache = CombinerCache::open(&path, &SynthesisConfig::default());
        assert_eq!(cache.stats.loaded, 0);
        assert!(
            cache.warnings.iter().any(|w| w.contains("does not match")),
            "{:?}",
            cache.warnings
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn config_fingerprint_mismatch_is_ignored() {
        let path = tmpfile("fingerprint");
        let writer_config = SynthesisConfig {
            rng_seed: 7,
            ..SynthesisConfig::default()
        };
        let mut cache = CombinerCache::open(&path, &writer_config);
        cache.insert("k", None, true);
        cache.save().unwrap();
        // A reader with a different seed must not trust the file.
        let reader = CombinerCache::open(&path, &SynthesisConfig::default());
        assert_eq!(reader.stats.loaded, 0);
        assert!(!reader.warnings.is_empty());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupted_files_are_never_trusted() {
        let header = "kumquat-combiner-cache v1 seed=24301 max_size=7";
        for (tag, body) in [
            ("truncated", "wc\t+\tab back nl"), // candidate cut short
            ("garbage", "wc\t?\twhat"),         // unknown verdict tag
            ("binary", "\u{1}\u{2}\u{3}"),      // not even a record
            ("badescape", "wc%zz\t-"),          // malformed key escape
            ("emptyset", "wc\t+\t"),            // positive with no candidates
        ] {
            let path = tmpfile(tag);
            std::fs::write(&path, format!("{header}\n{body}\n")).unwrap();
            let cache = CombinerCache::open(&path, &SynthesisConfig::default());
            assert_eq!(cache.stats.loaded, 0, "{tag}: nothing may load");
            assert!(
                cache
                    .warnings
                    .iter()
                    .any(|w| w.contains("ignoring the file")),
                "{tag}: must warn, got {:?}",
                cache.warnings
            );
            std::fs::remove_file(&path).ok();
        }
    }

    #[test]
    fn interleaved_saves_union_instead_of_losing_entries() {
        // The lost-update shape: two planners load the same cold store,
        // synthesize different commands, and flush one after the other.
        // Without the locked read-merge-write the second rename would
        // discard the first writer's entry.
        let path = tmpfile("union");
        let config = SynthesisConfig::default();
        let mut a = CombinerCache::open(&path, &config);
        let mut b = CombinerCache::open(&path, &config);
        a.insert("wc\x1f-l\x1f|", Some(sample_combiner()), true);
        b.insert("sed\x1f|\x1f1d", None, true);
        assert!(a.save().unwrap());
        assert!(b.save().unwrap());
        let mut reloaded = CombinerCache::open(&path, &config);
        assert_eq!(
            reloaded.stats.loaded, 2,
            "an interleaved write lost an entry"
        );
        assert!(matches!(
            reloaded.lookup("sed\x1f|\x1f1d"),
            CacheLookup::Ready(None)
        ));
        assert!(matches!(
            reloaded.lookup("wc\x1f-l\x1f|"),
            CacheLookup::NeedsValidation(_)
        ));
        // The merge also flows the other process's entries into the
        // still-open cache, as pending disk entries.
        assert!(matches!(
            b.lookup("wc\x1f-l\x1f|"),
            CacheLookup::NeedsValidation(_)
        ));
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(StoreLock::lock_path(&path)).ok();
    }

    #[test]
    fn save_is_idempotent_and_skips_clean_caches() {
        let path = tmpfile("idempotent");
        let config = SynthesisConfig::default();
        let mut cache = CombinerCache::open(&path, &config);
        assert!(!cache.save().unwrap(), "clean cache must not write");
        cache.insert("a", None, true);
        assert!(cache.save().unwrap());
        let first = std::fs::read_to_string(&path).unwrap();
        assert!(!cache.save().unwrap(), "no changes, no rewrite");
        // Reload + save-through keeps byte-identical content.
        let mut reloaded = CombinerCache::open(&path, &config);
        reloaded.insert("b", None, true);
        reloaded.save().unwrap();
        let second = std::fs::read_to_string(&path).unwrap();
        assert!(second.contains(&first.lines().nth(1).unwrap().to_owned()));
        std::fs::remove_file(&path).ok();
        // In-memory caches never write.
        let mut mem = CombinerCache::in_memory(&config);
        mem.insert("a", None, true);
        assert!(!mem.save().unwrap());
    }
}
