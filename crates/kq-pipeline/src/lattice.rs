//! PaSh-style static effect lattice over the command algebra.
//!
//! KumQuat discovers parallelizability *dynamically* (generate → observe →
//! filter); this module is the static complement: a conservative
//! classification of each command into an effect lattice derived from its
//! *normalized signature* (the same [`cache_key`] normalization the
//! combiner cache uses, so `grep -n -c p` and `grep -cn p` classify
//! identically).
//!
//! ```text
//!                 Unknown
//!               /    |    \
//!   OrderSensitive   |   CommutativeFold
//!               \    |    /
//!            PureParallelizable
//!                    |
//!                Stateless
//! ```
//!
//! Lower is stronger. [`EffectClass::Stateless`] is the only class the
//! planner acts on without running anything: a stateless command is a
//! per-line (or per-byte) pure map, so `f(x ++ y) = f(x) ++ f(y)` for
//! line-aligned pieces and its combiner is plain `concat` — exactly what
//! dynamic synthesis would find, minus the synthesis. Every other class is
//! advisory: it feeds `kumquat check` diagnostics and the
//! lattice/synthesis agreement test, but planning still goes through
//! synthesis so plans cannot silently diverge from the observed-behaviour
//! path.
//!
//! # Soundness
//!
//! The table is deliberately *under*-approximating. A command is
//! classified below [`EffectClass::Unknown`] only when its whole
//! flag/operand shape is understood; any unrecognized flag falls back to
//! `Unknown` (= "ask synthesis"). The agreement test in `kq-analyze`
//! pins the invariant for every unique corpus command: the static class
//! is never *stronger* than what synthesis proves (`Stateless` ⇒
//! synthesis finds a concat combiner; `CommutativeFold` /
//! `PureParallelizable` ⇒ synthesis finds *a* combiner).

use crate::cache::cache_key;
use kq_coreutils::Command;
use kq_dsl::ast::{Candidate, RecOp};
use kq_dsl::codec::unescape_token;
use kq_synth::SynthesizedCombiner;

/// The static effect classification (see the [module docs](self)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EffectClass {
    /// A per-line (or per-byte) pure map: combiner is plain `concat`.
    /// The planner short-circuits synthesis for these.
    Stateless,
    /// Parallelizable with a structured, order-aware combiner (`head -n k`
    /// keeps a prefix, `uniq` re-merges the piece boundary). Synthesis is
    /// still consulted — the class only promises a combiner exists.
    PureParallelizable,
    /// Parallelizable with an order-insensitive aggregate (`sort` merges,
    /// `wc`/`grep -c` sum). Synthesis is still consulted.
    CommutativeFold,
    /// Correct only on the whole stream in order (`tail`, `nl`, `tr -s`,
    /// `sed` with addresses): naive splitting changes observable output,
    /// so only synthesis (which may still find a rerun combiner) can
    /// parallelize it.
    OrderSensitive,
    /// Not statically understood; dynamic synthesis decides.
    Unknown,
}

impl EffectClass {
    /// Stable lowercase name (used by `kumquat check --format json`).
    pub fn as_str(self) -> &'static str {
        match self {
            EffectClass::Stateless => "stateless",
            EffectClass::PureParallelizable => "pure-parallelizable",
            EffectClass::CommutativeFold => "commutative-fold",
            EffectClass::OrderSensitive => "order-sensitive",
            EffectClass::Unknown => "unknown",
        }
    }
}

/// A command's normalized signature, recovered from its [`cache_key`]:
/// the program, the canonical flag set (clusters exploded, value-taking
/// options paired as `-f=value`, sorted), and the operands in order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Signature {
    /// The program name (`argv[0]`).
    pub program: String,
    /// Canonical flags (`-c`, `-n=3`, `--long`).
    pub flags: Vec<String>,
    /// Non-flag operands, in order.
    pub operands: Vec<String>,
}

impl Signature {
    /// True when a canonical boolean flag is present.
    pub fn has_flag(&self, flag: &str) -> bool {
        self.flags.iter().any(|f| f == flag)
    }

    /// The value of a `-x=value` flag, when present.
    pub fn flag_value(&self, letter: char) -> Option<&str> {
        let prefix = [b'-', letter as u8, b'='];
        self.flags
            .iter()
            .find_map(|f| f.as_bytes().starts_with(&prefix).then(|| &f[3..]))
    }
}

/// Recovers the normalized [`Signature`] from a command's [`cache_key`].
/// Returns `None` for commands the normalizer does not understand (raw
/// keys — custom wrappers, unknown programs).
pub fn signature(command: &Command) -> Option<Signature> {
    let key = cache_key(command);
    let mut fields = key.split('\x1f');
    let program = fields.next()?.to_owned();
    if program == "raw" {
        return None;
    }
    let mut flags = Vec::new();
    let mut operands = Vec::new();
    let mut past_separator = false;
    for field in fields {
        if !past_separator && field == "|" {
            past_separator = true;
            continue;
        }
        // Keys are produced by `escape_token`; failures cannot happen on
        // round-tripped data, but stay conservative anyway.
        let token = unescape_token(field).ok()?;
        if past_separator {
            operands.push(token);
        } else {
            flags.push(token);
        }
    }
    Some(Signature {
        program,
        flags,
        operands,
    })
}

/// Classifies a command into the effect lattice.
///
/// Only commands that consume their standard input classify below
/// [`EffectClass::Unknown`]: a source command (`cat big.txt`,
/// `paste a b`) is a pipeline head, and its parallelization question does
/// not arise. Gating here also means operands are unambiguous — a
/// stdin-reading `grep`'s operand is its pattern, never a file.
pub fn classify(command: &Command) -> EffectClass {
    if !command.reads_stdin() {
        return EffectClass::Unknown;
    }
    let Some(sig) = signature(command) else {
        return EffectClass::Unknown;
    };
    match sig.program.as_str() {
        "cat" => classify_cat(&sig),
        "tr" => classify_tr(&sig),
        "grep" => classify_grep(&sig),
        "cut" => classify_cut(&sig),
        "sed" => classify_sed(&sig),
        "sort" => classify_sort(&sig),
        "wc" => EffectClass::CommutativeFold,
        "uniq" => classify_uniq(&sig),
        "head" => classify_head(&sig),
        "rev" | "expand" => classify_flagless_map(&sig),
        "fold" => classify_fold(&sig),
        // Whole-stream order dependence: position numbering, reversal,
        // suffixes, sorted two-way merges.
        "nl" | "tac" | "tail" | "comm" => EffectClass::OrderSensitive,
        _ => EffectClass::Unknown,
    }
}

fn classify_cat(sig: &Signature) -> EffectClass {
    if sig.flags.is_empty() {
        // A stdin-reading cat is the identity map.
        EffectClass::Stateless
    } else if sig.has_flag("-n") {
        // `cat -n` is line numbering.
        EffectClass::OrderSensitive
    } else {
        EffectClass::Unknown
    }
}

fn classify_tr(sig: &Signature) -> EffectClass {
    if sig.has_flag("-s") {
        // Squeezing repeats merges across any split point.
        EffectClass::OrderSensitive
    } else if sig
        .flags
        .iter()
        .all(|f| f == "-c" || f == "-C" || f == "-d")
    {
        // Translate/delete is a pure per-byte map. (This includes
        // `tr -d '\n'`: concat still holds byte-wise; whether its output
        // *streams* line-aligned is a separate, probed property.)
        EffectClass::Stateless
    } else {
        EffectClass::Unknown
    }
}

fn classify_grep(sig: &Signature) -> EffectClass {
    // Positional or contextual output depends on line positions/neighbors.
    let order_sensitive = ["-n", "-b"].iter().any(|f| sig.has_flag(f))
        || ['m', 'A', 'B', 'C']
            .iter()
            .any(|&l| sig.flag_value(l).is_some());
    if order_sensitive {
        return EffectClass::OrderSensitive;
    }
    // Selecting-form flags: each input line maps to itself or nothing.
    let selecting = |f: &String| {
        matches!(f.as_str(), "-i" | "-v" | "-w" | "-x" | "-E" | "-F" | "-o") || f.starts_with("-e=")
    };
    if sig.has_flag("-c") {
        // Per-piece counts sum.
        if sig.flags.iter().all(|f| f == "-c" || selecting(f)) {
            EffectClass::CommutativeFold
        } else {
            EffectClass::Unknown
        }
    } else if sig.flags.iter().all(selecting) {
        EffectClass::Stateless
    } else {
        EffectClass::Unknown
    }
}

fn classify_cut(sig: &Signature) -> EffectClass {
    let known = |f: &String| {
        f == "-s"
            || ['d', 'f', 'c', 'b']
                .iter()
                .any(|&l| f.as_bytes().starts_with(&[b'-', l as u8, b'=']))
    };
    if sig.flags.iter().all(known) {
        EffectClass::Stateless
    } else {
        EffectClass::Unknown
    }
}

fn classify_sed(sig: &Signature) -> EffectClass {
    // Only the plain single-script form is classified; `-n`, `-e`, and
    // multi-operand invocations fall through to synthesis.
    if !sig.flags.is_empty() || sig.operands.len() != 1 {
        return EffectClass::Unknown;
    }
    let script = sig.operands[0].as_str();
    let mut chars = script.chars();
    match chars.next() {
        // An address prefix (`1d`, `100q`, `$d`) pins behaviour to line
        // positions.
        Some(c) if c.is_ascii_digit() || c == '$' || c == '/' => EffectClass::OrderSensitive,
        // `s<d>pat<d>rep<d>flags` / `y<d>a<d>b<d>`: a per-line map,
        // provided the flags do not write files (`w`) — conservatively
        // require them to be the known per-line set.
        Some(op @ ('s' | 'y')) => {
            let Some(delim) = chars.next() else {
                return EffectClass::Unknown;
            };
            if delim.is_ascii_alphanumeric() || delim == '\\' {
                return EffectClass::Unknown;
            }
            let body = &script[op.len_utf8() + delim.len_utf8()..];
            let parts = split_sed_body(body, delim);
            match parts.as_slice() {
                [_, _, tail]
                    if tail
                        .chars()
                        .all(|c| c == 'g' || c == 'i' || c.is_ascii_digit()) =>
                {
                    EffectClass::Stateless
                }
                _ => EffectClass::Unknown,
            }
        }
        _ => EffectClass::Unknown,
    }
}

/// Splits a sed `s`/`y` body on its unescaped delimiters.
fn split_sed_body(body: &str, delim: char) -> Vec<&str> {
    let mut parts = Vec::new();
    let mut start = 0;
    let mut escaped = false;
    for (idx, c) in body.char_indices() {
        if escaped {
            escaped = false;
        } else if c == '\\' {
            escaped = true;
        } else if c == delim {
            parts.push(&body[start..idx]);
            start = idx + c.len_utf8();
        }
    }
    parts.push(&body[start..]);
    parts
}

fn classify_sort(sig: &Signature) -> EffectClass {
    if sig.flag_value('o').is_some() {
        // `sort -o file` writes a file: an effect the lattice's pure
        // stream model does not cover.
        EffectClass::Unknown
    } else {
        EffectClass::CommutativeFold
    }
}

fn classify_uniq(sig: &Signature) -> EffectClass {
    if sig.flags.is_empty() || sig.flags == ["-c"] {
        // Plain `uniq` re-runs over the piece boundary; `uniq -c`
        // stitches boundary counts.
        EffectClass::PureParallelizable
    } else {
        EffectClass::Unknown
    }
}

fn classify_head(sig: &Signature) -> EffectClass {
    let line_form = match sig.flags.as_slice() {
        [] => true,
        [f] => {
            sig.flag_value('n')
                .is_some_and(|v| v.parse::<u64>().is_ok())
                || (f.starts_with('-') && f[1..].parse::<u64>().is_ok())
        }
        _ => false,
    };
    if line_form {
        // A line prefix: the first piece (or a rerun) combines.
        EffectClass::PureParallelizable
    } else {
        EffectClass::Unknown
    }
}

fn classify_flagless_map(sig: &Signature) -> EffectClass {
    if sig.flags.is_empty() {
        EffectClass::Stateless
    } else {
        EffectClass::Unknown
    }
}

fn classify_fold(sig: &Signature) -> EffectClass {
    let known = |f: &String| f == "-s" || f.starts_with("-w=");
    if sig.flags.iter().all(known) {
        // Wrapping long lines is a per-line map.
        EffectClass::Stateless
    } else {
        EffectClass::Unknown
    }
}

/// The combiner a classification certifies without synthesis: plain
/// `concat` for [`EffectClass::Stateless`], nothing for every other class
/// (they only *promise* a combiner exists; synthesis must still find it so
/// plans stay identical to the observed-behaviour path).
pub fn static_combiner(class: EffectClass) -> Option<SynthesizedCombiner> {
    match class {
        EffectClass::Stateless => Some(SynthesizedCombiner::from_plausible(vec![Candidate::rec(
            RecOp::Concat,
        )])),
        _ => None,
    }
}

/// A command's read effect set, mirroring the scheduler's conservative
/// dependency pass (`kq_pipeline::scheduler::statement_deps`): any argv
/// word may name a file the command reads (`comm - dict`, `paste a b`),
/// and `xargs` reads paths from its *data*, which no static scan can
/// bound.
#[derive(Debug, Clone, Default)]
pub struct EffectSet {
    /// The command consumes its standard input.
    pub reads_stdin: bool,
    /// argv words that may name read files (everything after the program).
    pub reads: Vec<String>,
    /// `xargs`: the read set is unbounded.
    pub reads_everything: bool,
}

/// Extracts a command's [`EffectSet`].
pub fn effects(command: &Command) -> EffectSet {
    EffectSet {
        reads_stdin: command.reads_stdin(),
        reads: command.argv().iter().skip(1).cloned().collect(),
        reads_everything: command.program() == "xargs",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kq_coreutils::parse_command;

    fn class_of(line: &str) -> EffectClass {
        classify(&parse_command(line).unwrap())
    }

    #[test]
    fn stateless_per_line_maps() {
        for line in [
            "cat",
            "grep fox",
            "grep -i -v pattern",
            "tr A-Z a-z",
            "tr -d '\\n'",
            "tr -cs A-Za-z '\\n'", // squeeze: must NOT be stateless
            "cut -d ' ' -f 1",
            "cut -c 1-5",
            "rev",
            "sed 's/a/b/g'",
        ] {
            let class = class_of(line);
            if line.contains("-cs") {
                assert_eq!(class, EffectClass::OrderSensitive, "{line}");
            } else {
                assert_eq!(class, EffectClass::Stateless, "{line}");
            }
        }
    }

    #[test]
    fn folds_and_parallelizable() {
        assert_eq!(class_of("sort"), EffectClass::CommutativeFold);
        assert_eq!(class_of("sort -rn"), EffectClass::CommutativeFold);
        assert_eq!(class_of("wc -l"), EffectClass::CommutativeFold);
        assert_eq!(class_of("grep -c fox"), EffectClass::CommutativeFold);
        assert_eq!(class_of("uniq"), EffectClass::PureParallelizable);
        assert_eq!(class_of("uniq -c"), EffectClass::PureParallelizable);
        assert_eq!(class_of("head -n 3"), EffectClass::PureParallelizable);
    }

    #[test]
    fn order_sensitive_and_unknown() {
        assert_eq!(class_of("tail -n 1"), EffectClass::OrderSensitive);
        assert_eq!(class_of("nl"), EffectClass::OrderSensitive);
        assert_eq!(class_of("cat -n"), EffectClass::OrderSensitive);
        assert_eq!(class_of("grep -n fox"), EffectClass::OrderSensitive);
        assert_eq!(class_of("sed '1d'"), EffectClass::OrderSensitive);
        assert_eq!(class_of("sed '100q'"), EffectClass::OrderSensitive);
        assert_eq!(class_of("sed '$d'"), EffectClass::OrderSensitive);
        assert_eq!(class_of("awk '{print $1}'"), EffectClass::Unknown);
        assert_eq!(class_of("xargs wc -l"), EffectClass::Unknown);
        // Sources never classify: the parallelization question is moot.
        assert_eq!(class_of("cat big.txt"), EffectClass::Unknown);
    }

    #[test]
    fn signature_round_trips_normalization() {
        let sig = signature(&parse_command("grep -cn p").unwrap()).unwrap();
        assert_eq!(sig.program, "grep");
        assert_eq!(sig.flags, vec!["-c", "-n"]);
        assert_eq!(sig.operands, vec!["p"]);
        let a = signature(&parse_command("cut -d, -f1").unwrap());
        let b = signature(&parse_command("cut -f 1 -d ','").unwrap());
        assert_eq!(a, b);
    }

    #[test]
    fn static_combiner_only_for_stateless() {
        let c = static_combiner(EffectClass::Stateless).unwrap();
        assert!(c.is_concat());
        for class in [
            EffectClass::PureParallelizable,
            EffectClass::CommutativeFold,
            EffectClass::OrderSensitive,
            EffectClass::Unknown,
        ] {
            assert!(static_combiner(class).is_none());
        }
    }

    #[test]
    fn effects_mirror_the_scheduler_pass() {
        let e = effects(&parse_command("comm -23 - /dict").unwrap());
        assert!(e.reads_stdin);
        assert_eq!(e.reads, vec!["-23", "-", "/dict"]);
        assert!(!e.reads_everything);
        let e = effects(&parse_command("xargs cat").unwrap());
        assert!(e.reads_everything);
    }
}
