//! Work-stealing executor for the dataflow IR.
//!
//! Where the streaming executor spawns a private thread set per statement
//! — a feeder plus `segments × (workers + collector)` threads, torn down
//! and respawned for every statement — this executor runs the *whole
//! script* on one fixed pool of exactly [`DataflowOptions::workers`]
//! threads. Each statement's plan becomes a [`DataflowGraph`]
//! (see [`crate::dataflow`] for the node and edge semantics), and the unit
//! of scheduling is a *task*: "make progress at node N of statement S" —
//! process one chunk at a map node, drain the input of a fold, cut the
//! next chunk at a split, emit the next chunk of a materialized output.
//!
//! # Scheduling
//!
//! Tasks live in [`crossbeam::deque`] queues: each worker owns a local
//! FIFO deque and pushes follow-up work there; tasks created off-pool
//! (statement starts) land in a shared injector. An idle worker takes from
//! its own deque first, then the injector, then *steals* from a sibling.
//! Workers never block on data: a node that cannot progress (input empty,
//! or downstream edge at capacity) simply returns, and the event that
//! unblocks it — an upstream push, a downstream pop freeing a credit —
//! schedules it again. Sleep/wake uses a generation-counted condvar: a
//! worker records the generation *before* its final queue scan, so a task
//! pushed concurrently either shows up in the scan or bumps the
//! generation and cancels the sleep.
//!
//! # Statements run concurrently
//!
//! All statements whose dependencies are satisfied execute at once on the
//! shared pool. Dependencies are inferred conservatively from VFS redirect
//! targets: statement `j` waits for statement `i < j` when `j` may read a
//! file `i` writes (any argv word or input file matching, with `xargs`
//! treated as reading everything), when both write the same target, or
//! when `j` overwrites a file `i` may read. Everything else overlaps —
//! the per-statement pool spawn/teardown and the strict statement barrier
//! are the costs this executor removes. One observable difference from
//! the serial oracle: when a statement fails, *independent* sibling
//! statements already in flight still run to completion (their VFS writes
//! happen); the surfaced error is the lowest-indexed failing statement's.
//!
//! # Backpressure, cancellation, out-of-core
//!
//! Edges are soft-bounded at [`DataflowOptions::queue_depth`] chunks: a
//! producer claims new input only while its output edge is below the
//! bound (in-flight results may overshoot it by the amount already
//! claimed). Early exit is the graph teardown described in
//! [`crate::dataflow`]: a satisfied bounded consumer cancels every node
//! above it and *drops chunks already queued on their edges* — work the
//! channel-based streaming executor would still have drained. Splits and
//! emitters cut chunks lazily and trail a page-release hint behind their
//! cursor exactly like the streaming feeder, so mapped multi-GB inputs
//! stream through at O(window) resident memory.
//!
//! # Adaptive control loop
//!
//! Two knobs can run closed-loop instead of fixed (see the crate docs for
//! the full signal/invariant discussion):
//!
//! * [`ChunkSizing::Auto`] — each statement's base chunk target comes
//!   from its input size and the worker count, and producers that feed a
//!   combine fold coarsen geometrically as they cut
//!   ([`coarsened_target`]), so barrier folds see few large runs. The
//!   target is a pure function of (base, chunks already cut): chunk
//!   boundaries never depend on timing, credit, or worker interleaving.
//! * [`QueueCredit::Auto`] — edges start at the default depth and a
//!   controller tick ([`maybe_rebalance`], piggybacked on the worker loop
//!   between tasks — no extra thread) samples per-edge gate/starve event
//!   deltas and moves one credit per tick from the most starved edge to
//!   the most gated one. Credit moves scheduling, never bytes: reorder
//!   buffers already make output independent of queue capacity.
//!
//! Every decision is traced (`adaptive` instants: `chunk-init`,
//! `chunk-grow`, `credit-shift`) and summarized in
//! [`TimingLog::adaptive`](crate::exec::TimingLog).
//!
//! Byte-equality with [`run_serial`](crate::exec::run_serial) across the
//! corpus — plus multi-statement scripts with redirect dependencies — is
//! asserted by `tests/dataflow_differential.rs` and
//! `tests/multi_statement_differential.rs`; the differential suites also
//! sweep both `auto` knobs.

use crate::chunked::run_chain;
use crate::dataflow::{DataflowGraph, FoldMode, NodeKind};
use crate::exec::{
    gather_files, AdaptiveTelemetry, EarlyExit, ExecutionResult, QueueTelemetry, StageTiming,
    TimingLog,
};
use crate::parse::{InputSource, Script, Statement};
use crate::plan::{PlannedScript, StageMode};
use crossbeam::deque::{Injector, Steal, Stealer, Worker};
use kq_coreutils::{CmdError, Command, ExecContext};
use kq_dsl::eval::CommandEnv;
use kq_stream::{Bytes, IncrementalChunker, Rope};
use kq_synth::IncrementalCombine;
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// How the dataflow executor sizes split/re-chunk pieces (the
/// `--chunk-kb` knob).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChunkSizing {
    /// Every producer cuts line-aligned chunks of this many bytes for the
    /// whole run.
    Fixed(usize),
    /// Feedback-driven (`--chunk-kb auto`): each statement starts from an
    /// input-size/worker-count heuristic and barrier-feeding producers
    /// coarsen geometrically as they cut, so combine folds see few large
    /// runs. Targets are pure functions of the cut count — adaptation
    /// moves chunk boundaries, never output bytes (see the
    /// [module docs](self)).
    Auto,
}

/// How the dataflow executor budgets per-edge queue credit (the
/// `--queue-depth` knob).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueCredit {
    /// Every edge holds this many chunks of credit for the whole run.
    Fixed(usize),
    /// Rebalanced (`--queue-depth auto`): edges start at the default
    /// depth and a controller tick moves credit from starved edges to
    /// gated ones based on live stall telemetry (see the
    /// [module docs](self)).
    Auto,
}

/// Default per-edge credit in chunks: the `Fixed` value
/// [`DataflowOptions::default`] uses and the seed every edge starts from
/// under [`QueueCredit::Auto`].
pub const DEFAULT_QUEUE_DEPTH: usize = 4;

/// Default fixed chunk target ([`DataflowOptions::default`], CLI
/// `--chunk-kb 64`).
pub const DEFAULT_CHUNK_BYTES: usize = 64 * 1024;

/// Floor of the auto chunk heuristic: never start below the fixed
/// default's order of magnitude, so tiny inputs behave like the static
/// configuration instead of degenerating to per-line chunks.
const AUTO_CHUNK_MIN: usize = 128 << 10;

/// Ceiling of auto chunk sizing, initial and coarsened: large enough that
/// a multi-GB sort folds hundreds (not tens of thousands) of runs, small
/// enough that a pool of workers still load-balances.
const AUTO_CHUNK_MAX: usize = 8 << 20;

/// Auto coarsening cadence: a barrier-feeding producer doubles its chunk
/// target every this many cuts. The first wave of small chunks gets every
/// worker busy; later, larger chunks cut per-chunk overhead and shrink
/// the fold frontier.
const COARSEN_EVERY: usize = 8;

/// Cap on auto coarsening doublings (with [`COARSEN_EVERY`] = 8 the
/// target stops growing after ~56 cuts, or earlier at
/// [`AUTO_CHUNK_MAX`]).
const MAX_COARSEN_DOUBLINGS: u32 = 6;

/// Minimum interval between credit-rebalancing controller ticks.
const CREDIT_TICK: Duration = Duration::from_millis(1);

/// Tuning for the dataflow executor.
#[derive(Debug, Clone)]
pub struct DataflowOptions {
    /// Size of the shared worker pool — the *total* thread budget for the
    /// whole script, not a per-segment or per-statement figure.
    pub workers: usize,
    /// Chunk sizing for splits and for every re-chunking point (fold
    /// outputs, stage-worker re-normalization).
    pub chunk: ChunkSizing,
    /// Soft per-edge queue credit: a producer stops claiming input once
    /// its output edge holds that many chunks.
    pub queue: QueueCredit,
    /// Apply the fusion rewrite ([`DataflowGraph::fuse_streamable`]).
    /// `false` leaves every chunk-local stage as its own node — same
    /// output, more edge hops; the differential suite uses it to stress
    /// the scheduler harder.
    pub fuse_streamable: bool,
    /// Spill policy for combine folds: when set, every `Fold(Combine)`
    /// node derives a per-node [`SpillConfig`](kq_dsl::SpillConfig) from it
    /// and writes sorted runs to disk once the resident run bytes would
    /// cross the budget. `None` keeps every run on the heap (the default).
    pub spill: Option<kq_dsl::SpillPolicy>,
}

impl Default for DataflowOptions {
    fn default() -> Self {
        DataflowOptions {
            workers: 4,
            chunk: ChunkSizing::Fixed(DEFAULT_CHUNK_BYTES),
            queue: QueueCredit::Fixed(DEFAULT_QUEUE_DEPTH),
            fuse_streamable: true,
            spill: None,
        }
    }
}

/// A scheduler task: make progress at node `1` of statement `0`.
type Task = (usize, usize);

/// One edge's queue. Order-preserving: producers push in stream order
/// (map nodes drain their reorder buffer under the node lock), and
/// `pop_seq` stamps each pop so consumers can restore order after
/// parallel processing.
#[derive(Default)]
struct EdgeQ {
    items: VecDeque<Bytes>,
    /// Ordinal of the next pop (equals the number of chunks ever popped).
    pop_seq: usize,
    /// Sticky end-of-stream marker, set after the producer's final push.
    closed: bool,
}

struct Edge {
    q: Mutex<EdgeQ>,
    /// Mirror of `q.items.len()` for lock-free credit checks.
    len: AtomicUsize,
    /// Chunks of queue credit this edge currently holds. Fixed for the
    /// whole run under [`QueueCredit::Fixed`]; the rebalancing controller
    /// moves it between edges under [`QueueCredit::Auto`].
    credit: AtomicUsize,
    /// Times a producer found the edge at capacity (the controller's
    /// "gated" signal). Monotonic.
    gate_events: AtomicUsize,
    /// Times the consumer found the edge empty before close (the
    /// controller's "starved" signal). Monotonic.
    starve_events: AtomicUsize,
}

impl Edge {
    fn new(credit: usize) -> Edge {
        Edge {
            q: Mutex::new(EdgeQ::default()),
            len: AtomicUsize::new(0),
            credit: AtomicUsize::new(credit),
            gate_events: AtomicUsize::new(0),
            starve_events: AtomicUsize::new(0),
        }
    }

    /// Lock-free credit gate, counting a gate event when at capacity.
    fn check_gate(&self) -> bool {
        if self.len.load(Ordering::Relaxed) >= self.credit.load(Ordering::Relaxed) {
            self.gate_events.fetch_add(1, Ordering::Relaxed);
            true
        } else {
            false
        }
    }

    /// Counts a starve event (consumer found the edge empty and open).
    fn note_starved(&self) {
        self.starve_events.fetch_add(1, Ordering::Relaxed);
    }
}

/// A lazy cursor over a materialized stream: cuts line-aligned chunks on
/// demand and trails a page-release hint (`release_lag` bytes) behind,
/// mirroring the streaming executor's `send_chunked` discipline.
struct Emit {
    source: Bytes,
    cursor: usize,
    released: usize,
    /// Chunks cut so far — the `seq` stamp on the cut's trace span.
    chunks: usize,
}

impl Emit {
    fn new(source: Bytes) -> Emit {
        Emit {
            source,
            cursor: 0,
            released: 0,
            chunks: 0,
        }
    }

    fn done(&self) -> bool {
        self.cursor >= self.source.len()
    }

    fn next_chunk(&mut self, chunk_bytes: usize, release_lag: usize) -> Bytes {
        let end = next_chunk_end(self.source.as_bytes(), self.cursor, chunk_bytes);
        let chunk = self.source.slice(self.cursor..end);
        self.cursor = end;
        self.chunks += 1;
        if self.cursor > self.released + 2 * release_lag {
            let upto = self.cursor - release_lag;
            self.source.release_range(self.released..upto);
            self.released = upto;
        }
        chunk
    }

    /// Nobody will read the rest: drop the whole resident tail.
    fn abandon(&self) {
        self.source.release_range(self.released..self.source.len());
    }
}

/// The chunk-boundary rule shared with `kq_stream`'s splitter: extend to
/// the next newline so every chunk is line-aligned.
fn next_chunk_end(bytes: &[u8], start: usize, target: usize) -> usize {
    let mut end = (start + target.max(1)).min(bytes.len());
    while end < bytes.len() && bytes[end - 1] != b'\n' {
        end += 1;
    }
    end
}

/// What a node is currently doing.
enum Phase {
    /// Consuming input chunks.
    Collecting,
    /// One task is running the node's command (gather/bounded folds) or
    /// finishing its combiner — long work done outside every lock.
    Running,
    /// Streaming a materialized output downstream, credit-gated.
    Emitting(Emit),
    /// Output edge closed (or node cancelled); nothing left to do.
    Done,
}

/// Runtime state of one node, guarded by its mutex. The lock order is
/// `node state → that node's output edge`; input-edge operations never
/// nest inside the state lock.
struct NodeState<'a> {
    phase: Phase,
    cancelled: bool,
    /// Chunks claimed (inflight counter bumped) but not yet integrated.
    inflight: usize,
    /// Reorder buffer: results keyed by input pop ordinal.
    pending: BTreeMap<usize, Bytes>,
    next_seq: usize,
    /// StageWorker: output re-normalization.
    chunker: Option<IncrementalChunker>,
    /// StageWorker: chunks emitted so far — the pure "cut count" input to
    /// auto chunk coarsening ([`coarsened_target`]).
    chunks_out: usize,
    /// Fold(Combine): the incremental combiner fold.
    accum: Option<IncrementalCombine<'a>>,
    /// Fold(Combine): this node's spill counters (shared with `accum`),
    /// snapshotted into the node's StageTiming after the run.
    spill_metrics: Option<std::sync::Arc<kq_dsl::SpillMetrics>>,
    /// Fold(Gather) / BoundedConsumer: the gathered input prefix.
    rope: Rope,
    /// BoundedConsumer: complete lines gathered so far.
    seen_lines: usize,
    /// BoundedConsumer: input chunks consumed.
    chunks_consumed: usize,
    early_exit: Option<EarlyExit>,
    // Timing fields, snapshotted into a StageTiming after the run.
    piece_times: Vec<Duration>,
    combine_time: Duration,
    bytes_in: usize,
    bytes_out: usize,
    bytes_out_pieces: usize,
    telem: QueueTelemetry,
    gate_since: Option<Instant>,
    starve_since: Option<Instant>,
}

impl NodeState<'_> {
    fn new() -> NodeState<'static> {
        NodeState {
            phase: Phase::Collecting,
            cancelled: false,
            inflight: 0,
            pending: BTreeMap::new(),
            next_seq: 0,
            chunker: None,
            chunks_out: 0,
            accum: None,
            spill_metrics: None,
            rope: Rope::new(),
            seen_lines: 0,
            chunks_consumed: 0,
            early_exit: None,
            piece_times: Vec::new(),
            combine_time: Duration::ZERO,
            bytes_in: 0,
            bytes_out: 0,
            bytes_out_pieces: 0,
            telem: QueueTelemetry::default(),
            gate_since: None,
            starve_since: None,
        }
    }
}

/// Runtime state of one statement.
struct StmtRt<'a> {
    statement: &'a Statement,
    graph: DataflowGraph,
    /// Command chain per node (empty for the split node).
    chains: Vec<Vec<&'a Command>>,
    nodes: Vec<Mutex<NodeState<'a>>>,
    /// `edges[i]` carries node `i`'s output; the last edge is the sink.
    edges: Vec<Edge>,
    /// Base chunk target for this statement's producers. Fixed sizing
    /// stores the configured value; [`ChunkSizing::Auto`] overwrites it
    /// with the input-size heuristic when the statement starts.
    base_chunk: AtomicUsize,
    /// `feeds_fold[i]`: node `i`'s output edge feeds a combine fold —
    /// the producers auto coarsening targets (larger chunks there mean
    /// fewer, bigger runs at the barrier).
    feeds_fold: Vec<bool>,
    error: Mutex<Option<CmdError>>,
    started: AtomicBool,
    finished: AtomicBool,
    deps_left: AtomicUsize,
    dependents: Vec<usize>,
    output: Mutex<Option<Bytes>>,
}

struct IdleGate {
    generation: Mutex<u64>,
    cv: Condvar,
}

/// The credit-rebalancing controller's private state: the last tick time
/// and, per statement, the (gate, starve) event counts already consumed,
/// so each tick acts on deltas rather than run totals.
struct Controller {
    last: Instant,
    seen: Vec<Vec<(usize, usize)>>,
}

/// Shared run state: everything the worker pool operates on.
struct RunState<'a> {
    stmts: Vec<StmtRt<'a>>,
    injector: Injector<Task>,
    idle: IdleGate,
    done: AtomicBool,
    abort: AtomicBool,
    finished_count: AtomicUsize,
    ctx: &'a ExecContext,
    /// The configured chunk sizing mode (resolved: `Fixed` is clamped ≥1).
    chunk: ChunkSizing,
    /// Per-edge credit cap under rebalancing (8× the seed): no edge can
    /// absorb the whole script's credit.
    max_credit: usize,
    /// Credit rebalancing enabled ([`QueueCredit::Auto`]).
    rebalance: bool,
    workers: usize,
    release_lag: usize,
    controller: Mutex<Controller>,
    // Adaptive telemetry, aggregated into `TimingLog::adaptive`.
    initial_chunk: AtomicUsize,
    max_chunk: AtomicUsize,
    credit_shifts: AtomicUsize,
}

/// Per-thread scheduling context: where this thread's follow-up tasks go.
struct Cx<'r, 'a> {
    rt: &'r RunState<'a>,
    local: Option<&'r Worker<Task>>,
}

impl<'r, 'a> Cx<'r, 'a> {
    fn schedule(&self, task: Task) {
        match self.local {
            Some(local) => local.push(task),
            None => self.rt.injector.push(task),
        }
        self.rt.signal();
    }
}

impl RunState<'_> {
    fn signal(&self) {
        let mut generation = self
            .idle
            .generation
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        *generation += 1;
        self.idle.cv.notify_all();
    }
}

fn lock<'m, T>(m: &'m Mutex<T>) -> std::sync::MutexGuard<'m, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Runs a planned script on the shared work-stealing pool (see the
/// [module docs](self)).
pub fn run_dataflow(
    script: &Script,
    plan: &PlannedScript,
    ctx: &ExecContext,
    opts: &DataflowOptions,
) -> Result<ExecutionResult, CmdError> {
    let workers = opts.workers.max(1);
    let (chunk, fixed_chunk) = match opts.chunk {
        ChunkSizing::Fixed(b) => (ChunkSizing::Fixed(b.max(1)), b.max(1)),
        // Auto statements pick their base at start (input-size heuristic);
        // until then the floor stands in wherever a static size is needed.
        ChunkSizing::Auto => (ChunkSizing::Auto, AUTO_CHUNK_MIN),
    };
    let queue_seed = match opts.queue {
        QueueCredit::Fixed(d) => d.max(1),
        QueueCredit::Auto => DEFAULT_QUEUE_DEPTH,
    };
    let rebalance = matches!(opts.queue, QueueCredit::Auto);

    // Build the graphs first: the release lag and combiner environments
    // depend on their shapes.
    let graphs: Vec<DataflowGraph> = plan
        .statements
        .iter()
        .map(|p| DataflowGraph::build(p, opts.fuse_streamable))
        .collect();
    if cfg!(debug_assertions) {
        for (si, (graph, planned)) in graphs.iter().zip(&plan.statements).enumerate() {
            let problems = graph.validate(planned.stages.len(), queue_seed);
            assert!(
                problems.is_empty(),
                "statement {si} dataflow graph violates its invariants: {problems:?}"
            );
        }
    }
    let max_nodes = graphs.iter().map(|g| g.nodes.len()).max().unwrap_or(0);
    // Page-release is a refault-safe hint (see `Bytes::release_range`), so
    // sizing the lag for the auto ceiling merely defers releases — it can
    // never change bytes.
    let lag_chunk = match chunk {
        ChunkSizing::Fixed(b) => b,
        ChunkSizing::Auto => AUTO_CHUNK_MAX,
    };
    let release_lag = lag_chunk
        .saturating_mul(queue_seed + workers)
        .saturating_mul(max_nodes + 2)
        .max(16 << 20);

    // Combiner environments live outside the node states so the
    // incremental folds (which borrow them) can be shared by the pool.
    let envs: Vec<Vec<Option<CommandEnv<'_>>>> = script
        .statements
        .iter()
        .zip(&graphs)
        .map(|(statement, graph)| {
            graph
                .nodes
                .iter()
                .map(|node| match node.kind {
                    NodeKind::Fold {
                        mode: FoldMode::Combine,
                    } => Some(CommandEnv {
                        command: &statement.stages[node.stages.start].command,
                        ctx,
                    }),
                    _ => None,
                })
                .collect()
        })
        .collect();

    let mut stmts: Vec<StmtRt<'_>> = Vec::with_capacity(script.statements.len());
    for (si, (statement, graph)) in script.statements.iter().zip(graphs).enumerate() {
        let chains: Vec<Vec<&Command>> = graph
            .nodes
            .iter()
            .map(|node| {
                node.stages
                    .clone()
                    .map(|i| &statement.stages[i].command)
                    .collect()
            })
            .collect();
        let nodes: Vec<Mutex<NodeState<'_>>> = graph
            .nodes
            .iter()
            .enumerate()
            .map(|(ni, node)| {
                let mut state = NodeState::new();
                match node.kind {
                    NodeKind::StageWorker => {
                        state.chunker = Some(IncrementalChunker::new(fixed_chunk));
                    }
                    NodeKind::Fold {
                        mode: FoldMode::Combine,
                    } => {
                        let StageMode::Parallel { combiner, .. } =
                            &plan.statements[si].stages[node.stages.start].mode
                        else {
                            unreachable!("combine folds are parallel stages");
                        };
                        let env = envs[si][ni].as_ref().expect("combine fold env");
                        // Each fold gets its own config so the metrics
                        // counters are per-node, not script-global.
                        let spill = opts.spill.as_ref().map(|p| p.stage_config());
                        state.spill_metrics = spill.as_ref().map(|cfg| cfg.metrics.clone());
                        state.accum = Some(combiner.incremental_with_spill(env, spill));
                    }
                    _ => {}
                }
                Mutex::new(state)
            })
            .collect();
        let edges = (0..graph.nodes.len())
            .map(|_| Edge::new(queue_seed))
            .collect();
        let feeds_fold: Vec<bool> = (0..graph.nodes.len())
            .map(|ni| {
                matches!(
                    graph.nodes.get(ni + 1),
                    Some(n) if matches!(
                        n.kind,
                        NodeKind::Fold {
                            mode: FoldMode::Combine
                        }
                    )
                )
            })
            .collect();
        stmts.push(StmtRt {
            statement,
            graph,
            chains,
            nodes,
            edges,
            base_chunk: AtomicUsize::new(fixed_chunk),
            feeds_fold,
            error: Mutex::new(None),
            started: AtomicBool::new(false),
            finished: AtomicBool::new(false),
            deps_left: AtomicUsize::new(0),
            dependents: Vec::new(),
            output: Mutex::new(None),
        });
    }

    // Conservative cross-statement dependencies over VFS redirect targets.
    let deps = statement_deps(script);
    for (j, dj) in deps.iter().enumerate() {
        stmts[j].deps_left.store(dj.len(), Ordering::Relaxed);
        for &i in dj {
            stmts[i].dependents.push(j);
        }
    }

    // Trace plane: one graph meta per node (the Chrome exporter and the
    // critical-path report key their node tracks on these) and one dep
    // meta per cross-statement edge.
    if kq_trace::enabled() {
        for (si, stmt) in stmts.iter().enumerate() {
            for (ni, node) in stmt.graph.nodes.iter().enumerate() {
                let kind = match node.kind {
                    NodeKind::Split => "split",
                    NodeKind::StageWorker => "worker",
                    NodeKind::Fold {
                        mode: FoldMode::Combine,
                    } => "fold",
                    NodeKind::Fold {
                        mode: FoldMode::Gather,
                    } => "gather",
                    NodeKind::BoundedConsumer { .. } => "bounded",
                };
                let label = stmt.chains[ni]
                    .iter()
                    .map(|c| c.display())
                    .collect::<Vec<_>>()
                    .join(" | ");
                kq_trace::meta("graph", kind)
                    .si(si)
                    .ni(ni)
                    .label(label)
                    .emit();
            }
            for &d in &deps[si] {
                kq_trace::meta("graph", "dep").si(si).seq(d).emit();
            }
        }
    }
    let _run_span = kq_trace::span("dataflow", "run").v(stmts.len() as f64);

    let total = stmts.len();
    let seen: Vec<Vec<(usize, usize)>> = stmts
        .iter()
        .map(|s| vec![(0usize, 0usize); s.graph.nodes.len().saturating_sub(1)])
        .collect();
    let rt = RunState {
        stmts,
        injector: Injector::new(),
        idle: IdleGate {
            generation: Mutex::new(0),
            cv: Condvar::new(),
        },
        done: AtomicBool::new(total == 0),
        abort: AtomicBool::new(false),
        finished_count: AtomicUsize::new(0),
        ctx,
        chunk,
        max_credit: queue_seed.saturating_mul(8),
        rebalance,
        workers,
        release_lag,
        controller: Mutex::new(Controller {
            last: Instant::now(),
            seen,
        }),
        initial_chunk: AtomicUsize::new(usize::MAX),
        max_chunk: AtomicUsize::new(0),
        credit_shifts: AtomicUsize::new(0),
    };

    // Seed every dependency-free statement, then let the pool run.
    {
        let cx = Cx {
            rt: &rt,
            local: None,
        };
        for si in 0..total {
            if rt.stmts[si].deps_left.load(Ordering::Relaxed) == 0 {
                start_statement(&cx, si);
            }
        }
    }

    let locals: Vec<Worker<Task>> = (0..workers).map(|_| Worker::new_fifo()).collect();
    let stealers: Vec<Stealer<Task>> = locals.iter().map(Worker::stealer).collect();
    std::thread::scope(|scope| {
        for (idx, local) in locals.into_iter().enumerate() {
            let rt = &rt;
            let stealers = &stealers;
            scope.spawn(move || worker_loop(rt, local, stealers, idx));
        }
    });

    // Lowest-indexed statement error wins (closest to serial, which stops
    // at the first failing statement).
    for stmt in &rt.stmts {
        if let Some(e) = lock(&stmt.error).take() {
            return Err(e);
        }
    }

    let mut output = Rope::new();
    let mut timings = TimingLog::default();
    let auto_chunk = matches!(chunk, ChunkSizing::Auto);
    if auto_chunk || rebalance {
        let initial = rt.initial_chunk.load(Ordering::Relaxed);
        timings.adaptive = Some(AdaptiveTelemetry {
            auto_chunk,
            initial_chunk_bytes: if initial == usize::MAX { 0 } else { initial },
            max_chunk_bytes: rt.max_chunk.load(Ordering::Relaxed),
            rebalanced: rebalance,
            credit_shifts: rt.credit_shifts.load(Ordering::Relaxed) as u64,
        });
    }
    for (si, stmt) in rt.stmts.iter().enumerate() {
        if let Some(bytes) = lock(&stmt.output).take() {
            output.push(bytes);
        }
        let stages = snapshot_timings(stmt);
        if kq_trace::enabled() {
            emit_node_counters(si, &stages);
        }
        timings.statements.push(stages);
    }
    Ok(ExecutionResult {
        output: output.into_bytes(),
        timings,
    })
}

/// Conservative read/write dependency analysis over VFS paths:
/// `deps[j]` lists every earlier statement `j` must wait for.
///
/// Public so the static analyzer (`kumquat check`) can reuse the exact
/// dependency relation the scheduler runs under when it lints for
/// use-before-def, dead writes, and read/write aliasing.
pub fn statement_deps(script: &Script) -> Vec<Vec<usize>> {
    struct Access {
        reads: Vec<String>,
        reads_everything: bool,
        write: Option<String>,
    }
    let access: Vec<Access> = script
        .statements
        .iter()
        .map(|st| {
            let mut reads: Vec<String> = match &st.input {
                InputSource::Files(files) => files.clone(),
                InputSource::None => Vec::new(),
            };
            let mut reads_everything = false;
            for stage in &st.stages {
                // Any argv word could name a file the command reads
                // (`comm - dict`, `paste a b`); xargs reads paths from its
                // *data*, which no static scan can bound.
                if stage.command.program() == "xargs" {
                    reads_everything = true;
                }
                reads.extend(stage.command.argv().iter().skip(1).cloned());
            }
            Access {
                reads,
                reads_everything,
                write: st.output.clone(),
            }
        })
        .collect();
    (0..access.len())
        .map(|j| {
            (0..j)
                .filter(|&i| {
                    let (ai, aj) = (&access[i], &access[j]);
                    let raw = ai
                        .write
                        .as_ref()
                        .is_some_and(|w| aj.reads_everything || aj.reads.iter().any(|r| r == w));
                    let waw = ai.write.is_some() && ai.write == aj.write;
                    let war = aj
                        .write
                        .as_ref()
                        .is_some_and(|w| ai.reads_everything || ai.reads.iter().any(|r| r == w));
                    raw || waw || war
                })
                .collect()
        })
        .collect()
}

fn worker_loop(rt: &RunState<'_>, local: Worker<Task>, stealers: &[Stealer<Task>], idx: usize) {
    let cx = Cx {
        rt,
        local: Some(&local),
    };
    loop {
        while let Some(task) = find_task(rt, &local, stealers, idx) {
            run_task(&cx, task);
            maybe_rebalance(&cx);
        }
        // Record the generation *before* the confirming scan: a task
        // pushed after this read bumps the generation and cancels the
        // sleep; a task pushed before it is visible to the scan.
        let generation = *lock(&rt.idle.generation);
        if rt.done.load(Ordering::Acquire) {
            break;
        }
        if let Some(task) = find_task(rt, &local, stealers, idx) {
            run_task(&cx, task);
            maybe_rebalance(&cx);
            continue;
        }
        let mut guard = lock(&rt.idle.generation);
        while *guard == generation && !rt.done.load(Ordering::Acquire) {
            guard = rt.idle.cv.wait(guard).unwrap_or_else(|e| e.into_inner());
        }
    }
}

fn find_task(
    rt: &RunState<'_>,
    local: &Worker<Task>,
    stealers: &[Stealer<Task>],
    idx: usize,
) -> Option<Task> {
    if let Some(task) = local.pop() {
        return Some(task);
    }
    loop {
        match rt.injector.steal() {
            Steal::Success(task) => return Some(task),
            Steal::Empty => break,
            Steal::Retry => continue,
        }
    }
    for (k, stealer) in stealers.iter().enumerate() {
        if k == idx {
            continue;
        }
        loop {
            match stealer.steal() {
                Steal::Success(task) => return Some(task),
                Steal::Empty => break,
                Steal::Retry => continue,
            }
        }
    }
    None
}

/// Geometric auto coarsening: the chunk target after `cuts` chunks have
/// been emitted. A pure function of its arguments — never of timing or
/// queue state — so chunk boundaries (and therefore every downstream
/// byte) are reproducible for a given input and configuration.
fn coarsened_target(base: usize, cuts: usize) -> usize {
    let doublings = ((cuts / COARSEN_EVERY) as u32).min(MAX_COARSEN_DOUBLINGS);
    base.saturating_mul(1usize << doublings)
        .min(AUTO_CHUNK_MAX.max(base))
}

/// The chunk target for node `ni`'s next cut, `cuts` chunks in. Fixed
/// sizing returns the configured value; auto returns the statement's base
/// and coarsens it geometrically on barrier-feeding edges.
fn chunk_target(rt: &RunState<'_>, stmt: &StmtRt<'_>, si: usize, ni: usize, cuts: usize) -> usize {
    let base = match rt.chunk {
        ChunkSizing::Fixed(b) => return b,
        ChunkSizing::Auto => stmt.base_chunk.load(Ordering::Relaxed),
    };
    if !stmt.feeds_fold[ni] {
        return base;
    }
    let target = coarsened_target(base, cuts);
    if target > base && cuts.is_multiple_of(COARSEN_EVERY) {
        kq_trace::instant("adaptive", "chunk-grow")
            .si(si)
            .ni(ni)
            .v(target as f64)
            .emit();
    }
    rt.max_chunk.fetch_max(target, Ordering::Relaxed);
    target
}

/// One credit-rebalancing controller tick, piggybacked on the worker loop
/// between tasks (no dedicated thread — the pool's thread budget is part
/// of the executor's contract). At most one worker ticks at a time
/// (`try_lock`), at most once per [`CREDIT_TICK`]. Each tick looks at the
/// gate/starve event *deltas* since the previous tick and, per unfinished
/// statement, moves one chunk of credit from the most starved edge to the
/// most gated one — bounded below by 1 and above by
/// [`RunState::max_credit`]. Credit affects only when producers run;
/// reorder buffers keep the output byte-identical regardless.
fn maybe_rebalance(cx: &Cx<'_, '_>) {
    let rt = cx.rt;
    if !rt.rebalance {
        return;
    }
    let Ok(mut ctl) = rt.controller.try_lock() else {
        return;
    };
    if ctl.last.elapsed() < CREDIT_TICK {
        return;
    }
    ctl.last = Instant::now();
    for (si, stmt) in rt.stmts.iter().enumerate() {
        if stmt.finished.load(Ordering::Relaxed) {
            continue;
        }
        // Interior edges only: the sink edge has no credit gate.
        let interior = stmt.graph.nodes.len().saturating_sub(1);
        let mut gated: Option<(usize, usize)> = None; // (delta, edge)
        let mut starved: Option<(usize, usize)> = None;
        for ei in 0..interior {
            let edge = &stmt.edges[ei];
            let gate = edge.gate_events.load(Ordering::Relaxed);
            let starve = edge.starve_events.load(Ordering::Relaxed);
            let (pg, ps) = std::mem::replace(&mut ctl.seen[si][ei], (gate, starve));
            let dg = gate.saturating_sub(pg);
            let ds = starve.saturating_sub(ps);
            if dg > gated.map_or(0, |(best, _)| best) {
                gated = Some((dg, ei));
            }
            if ds > starved.map_or(0, |(best, _)| best) {
                starved = Some((ds, ei));
            }
        }
        let (Some((_, gi)), Some((_, di))) = (gated, starved) else {
            continue;
        };
        if gi == di {
            continue;
        }
        let donor = &stmt.edges[di];
        let gainer = &stmt.edges[gi];
        let donor_credit = donor.credit.load(Ordering::Relaxed);
        let gainer_credit = gainer.credit.load(Ordering::Relaxed);
        if donor_credit > 1 && gainer_credit < rt.max_credit {
            donor.credit.store(donor_credit - 1, Ordering::Relaxed);
            gainer.credit.store(gainer_credit + 1, Ordering::Relaxed);
            rt.credit_shifts.fetch_add(1, Ordering::Relaxed);
            kq_trace::instant("adaptive", "credit-shift")
                .si(si)
                .ni(gi)
                .v((gainer_credit + 1) as f64)
                .emit();
            // The freed credit may unblock the gated producer right now.
            cx.schedule((si, gi));
        }
    }
}

fn run_task(cx: &Cx<'_, '_>, (si, ni): Task) {
    let stmt = &cx.rt.stmts[si];
    match stmt.graph.nodes[ni].kind {
        NodeKind::Split => split_task(cx, si),
        NodeKind::StageWorker
        | NodeKind::Fold {
            mode: FoldMode::Combine,
        } => map_task(cx, si, ni),
        NodeKind::Fold {
            mode: FoldMode::Gather,
        }
        | NodeKind::BoundedConsumer { .. } => gather_task(cx, si, ni),
    }
}

/// Trace plane: the per-node queue/stall/volume telemetry as counter
/// records, emitted once per node after the pool has drained.
/// `stages[k]` is node `k + 1` (the split has no StageTiming).
fn emit_node_counters(si: usize, stages: &[StageTiming]) {
    for (k, t) in stages.iter().enumerate() {
        let ni = k + 1;
        kq_trace::counter("dataflow", "bytes-in", t.bytes_in as f64)
            .si(si)
            .ni(ni)
            .emit();
        kq_trace::counter("dataflow", "bytes-out", t.bytes_out as f64)
            .si(si)
            .ni(ni)
            .emit();
        if let Some(q) = &t.queue {
            kq_trace::counter("dataflow", "tasks", q.tasks as f64)
                .si(si)
                .ni(ni)
                .emit();
            kq_trace::counter("dataflow", "max-queued", q.max_queued as f64)
                .si(si)
                .ni(ni)
                .emit();
            kq_trace::counter("dataflow", "send-stall-ns", q.send_stall.as_nanos() as f64)
                .si(si)
                .ni(ni)
                .emit();
            kq_trace::counter("dataflow", "recv-stall-ns", q.recv_stall.as_nanos() as f64)
                .si(si)
                .ni(ni)
                .emit();
        }
    }
}

/// Starts a statement once its dependencies are settled: gathers the
/// input (which may be a file an earlier statement just redirected) and
/// schedules the split.
fn start_statement(cx: &Cx<'_, '_>, si: usize) {
    let stmt = &cx.rt.stmts[si];
    if stmt.started.swap(true, Ordering::AcqRel) {
        return;
    }
    let gather_span = kq_trace::span("dataflow", "gather-input").si(si);
    let gathered = gather_files(&stmt.statement.input, cx.rt.ctx);
    gather_span.done();
    match gathered {
        Err(e) => stmt_error(cx, si, e),
        Ok(input) => {
            if stmt.statement.stages.is_empty() {
                // Pure plumbing (`cat a > b`): the input stream is the
                // output, handle-through without touching the pool.
                finish_statement(cx, si, Some(input));
            } else {
                if matches!(cx.rt.chunk, ChunkSizing::Auto) {
                    // Base heuristic: ~8 chunks per worker gets the pool
                    // busy; the clamp keeps tiny inputs at the static
                    // default's scale and huge ones load-balanceable.
                    let base =
                        (input.len() / (cx.rt.workers * 8)).clamp(AUTO_CHUNK_MIN, AUTO_CHUNK_MAX);
                    stmt.base_chunk.store(base, Ordering::Relaxed);
                    cx.rt.initial_chunk.fetch_min(base, Ordering::Relaxed);
                    cx.rt.max_chunk.fetch_max(base, Ordering::Relaxed);
                    kq_trace::instant("adaptive", "chunk-init")
                        .si(si)
                        .v(base as f64)
                        .emit();
                }
                lock(&stmt.nodes[0]).phase = Phase::Emitting(Emit::new(input));
                cx.schedule((si, 0));
            }
        }
    }
}

/// One split quantum: cut and push chunks until the first edge is at
/// capacity (a downstream pop reschedules us) or the input is exhausted.
fn split_task(cx: &Cx<'_, '_>, si: usize) {
    let stmt = &cx.rt.stmts[si];
    let mut scheduled_pushes = 0usize;
    {
        let mut st = lock(&stmt.nodes[0]);
        if st.cancelled {
            return;
        }
        let Phase::Emitting(emit) = &mut st.phase else {
            return;
        };
        loop {
            if emit.done() {
                st.phase = Phase::Done;
                break;
            }
            if cx.rt.stmts[si].edges[0].check_gate() {
                // Gated: the consumer's next pop schedules us again.
                drop(st);
                schedule_pushes(cx, si, 1, scheduled_pushes);
                return;
            }
            let span = kq_trace::span("dataflow", "split")
                .si(si)
                .ni(0)
                .seq(emit.chunks);
            let target = chunk_target(cx.rt, stmt, si, 0, emit.chunks);
            let chunk = emit.next_chunk(target, cx.rt.release_lag);
            span.v(chunk.len() as f64).done();
            push_edge(stmt, 0, chunk);
            scheduled_pushes += 1;
        }
    }
    schedule_pushes(cx, si, 1, scheduled_pushes);
    close_edge(cx, si, 0);
}

/// Pushes one chunk onto edge `i` (caller holds the producing node's
/// state lock, preserving stream order).
fn push_edge(stmt: &StmtRt<'_>, i: usize, chunk: Bytes) {
    let mut q = lock(&stmt.edges[i].q);
    debug_assert!(!q.closed, "push after close");
    q.items.push_back(chunk);
    stmt.edges[i].len.fetch_add(1, Ordering::Relaxed);
}

/// Schedules `count` consumer tasks for node `ni` (one per pushed chunk).
/// Pushes onto the sink edge have no consumer node — nothing to schedule.
fn schedule_pushes(cx: &Cx<'_, '_>, si: usize, ni: usize, count: usize) {
    if ni >= cx.rt.stmts[si].graph.nodes.len() {
        return;
    }
    for _ in 0..count {
        cx.schedule((si, ni));
    }
}

/// Closes edge `i`: end-of-stream for its consumer. Closing the sink edge
/// completes the statement.
fn close_edge(cx: &Cx<'_, '_>, si: usize, i: usize) {
    let stmt = &cx.rt.stmts[si];
    lock(&stmt.edges[i].q).closed = true;
    if i + 1 == stmt.graph.nodes.len() {
        let sink = drain_sink(stmt, i);
        finish_statement(cx, si, Some(sink));
    } else {
        cx.schedule((si, i + 1));
    }
}

fn drain_sink(stmt: &StmtRt<'_>, i: usize) -> Bytes {
    let mut q = lock(&stmt.edges[i].q);
    let mut rope = Rope::new();
    for chunk in q.items.drain(..) {
        rope.push(chunk);
    }
    stmt.edges[i].len.store(0, Ordering::Relaxed);
    rope.into_bytes()
}

/// Pops one chunk (with its order stamp and the pre-pop queue length)
/// from node `ni`'s input edge.
fn pop_input(stmt: &StmtRt<'_>, ni: usize) -> Result<(usize, Bytes, usize), bool> {
    let edge = &stmt.edges[ni - 1];
    let mut q = lock(&edge.q);
    let len_at = q.items.len();
    match q.items.pop_front() {
        Some(chunk) => {
            let seq = q.pop_seq;
            q.pop_seq += 1;
            edge.len.fetch_sub(1, Ordering::Relaxed);
            Ok((seq, chunk, len_at))
        }
        None => Err(q.closed),
    }
}

/// One map task at a StageWorker or Fold(Combine) node: claim one input
/// chunk, run the chain on it outside every lock, integrate the result in
/// input order, forward/fold, and finalize when the input is exhausted.
fn map_task(cx: &Cx<'_, '_>, si: usize, ni: usize) {
    let stmt = &cx.rt.stmts[si];
    let node = &stmt.graph.nodes[ni];
    let is_worker = node.kind == NodeKind::StageWorker;
    let last = ni + 1 == stmt.graph.nodes.len();
    {
        let mut st = lock(&stmt.nodes[ni]);
        if st.cancelled {
            return;
        }
        match st.phase {
            Phase::Collecting => {}
            // A credit-freed wakeup can land while the fold's combined
            // output is streaming out: continue the emission.
            Phase::Emitting(_) => {
                drop(st);
                emit_task(cx, si, ni);
                return;
            }
            _ => return,
        }
        // Credit gate: stage workers forward chunk-per-chunk, so claiming
        // input while downstream is full only grows the overshoot. Folds
        // consume everything before emitting — no gate.
        if is_worker && !last && stmt.edges[ni].check_gate() {
            st.gate_since.get_or_insert_with(Instant::now);
            return;
        }
        if let Some(gated) = st.gate_since.take() {
            st.telem.send_stall += gated.elapsed();
        }
        st.inflight += 1;
    }
    let (seq, chunk, len_at) = match pop_input(stmt, ni) {
        Ok(popped) => popped,
        Err(closed) => {
            if !closed {
                stmt.edges[ni - 1].note_starved();
            }
            let mut st = lock(&stmt.nodes[ni]);
            st.inflight -= 1;
            st.starve_since.get_or_insert_with(Instant::now);
            drop(st);
            maybe_finalize_map(cx, si, ni);
            return;
        }
    };
    // The pop freed one credit upstream.
    cx.schedule((si, ni - 1));
    let span = kq_trace::span("dataflow", "map")
        .si(si)
        .ni(ni)
        .seq(seq)
        .v(chunk.len() as f64);
    let t0 = Instant::now();
    let result = run_chain(&stmt.chains[ni], chunk.clone(), cx.rt.ctx);
    let dur = t0.elapsed();
    span.done();

    let mut pushed = 0usize;
    {
        let mut st = lock(&stmt.nodes[ni]);
        st.inflight -= 1;
        if st.cancelled {
            return;
        }
        if let Some(starved) = st.starve_since.take() {
            st.telem.recv_stall += starved.elapsed();
        }
        st.telem.tasks += 1;
        st.telem.max_queued = st.telem.max_queued.max(len_at);
        record_piece(&mut st.piece_times, seq, dur);
        st.bytes_in += chunk.len();
        let out = match result {
            Ok(out) => out,
            Err(e) => {
                drop(st);
                stmt_error(cx, si, e);
                return;
            }
        };
        st.pending.insert(seq, out);
        while let Some(ready) = {
            let next = st.next_seq;
            st.pending.remove(&next)
        } {
            st.next_seq += 1;
            st.bytes_out_pieces += ready.len();
            if is_worker {
                st.bytes_out += ready.len();
                // Retarget per ready piece: the target depends only on
                // the (deterministic) count of chunks already emitted, so
                // boundaries are independent of drain batching.
                let target = chunk_target(cx.rt, stmt, si, ni, st.chunks_out);
                let chunker = st.chunker.as_mut().expect("stage worker chunker");
                chunker.set_target(target);
                let mut outgoing = chunker.push(ready);
                if node.eager_flush {
                    outgoing.extend(chunker.flush_pending());
                }
                st.chunks_out += outgoing.len();
                for c in outgoing {
                    push_edge(stmt, ni, c);
                    pushed += 1;
                }
            } else {
                let span = kq_trace::span("dataflow", "fold-push")
                    .si(si)
                    .ni(ni)
                    .seq(st.next_seq - 1);
                let t0 = Instant::now();
                st.accum.as_mut().expect("combine fold accum").push(ready);
                let elapsed = t0.elapsed();
                span.done();
                st.combine_time += elapsed;
            }
        }
    }
    schedule_pushes(cx, si, ni + 1, pushed);
    maybe_finalize_map(cx, si, ni);
}

/// Finalizes a map node once its input is closed, drained, and no claims
/// are in flight — a condition that is stable once true (`closed` is
/// sticky and set after the producer's last push).
fn maybe_finalize_map(cx: &Cx<'_, '_>, si: usize, ni: usize) {
    let stmt = &cx.rt.stmts[si];
    {
        let q = lock(&stmt.edges[ni - 1].q);
        if !q.closed || !q.items.is_empty() {
            return;
        }
    }
    let node = &stmt.graph.nodes[ni];
    if node.kind == NodeKind::StageWorker {
        let mut pushed = 0usize;
        {
            let mut st = lock(&stmt.nodes[ni]);
            if st.cancelled || !matches!(st.phase, Phase::Collecting) || st.inflight > 0 {
                return;
            }
            debug_assert!(st.pending.is_empty(), "gap in integrated sequence");
            for c in st.chunker.take().expect("stage worker chunker").finish() {
                push_edge(stmt, ni, c);
                pushed += 1;
            }
            st.phase = Phase::Done;
        }
        schedule_pushes(cx, si, ni + 1, pushed);
        close_edge(cx, si, ni);
    } else {
        // Fold(Combine): settle the incremental fold outside the lock —
        // this is where `sort`'s final run merge happens.
        let accum = {
            let mut st = lock(&stmt.nodes[ni]);
            if st.cancelled || !matches!(st.phase, Phase::Collecting) || st.inflight > 0 {
                return;
            }
            st.phase = Phase::Running;
            st.accum.take().expect("combine fold accum")
        };
        let closing = stmt.chains[ni][0];
        let span = kq_trace::span("dataflow", "fold-finish").si(si).ni(ni);
        let t0 = Instant::now();
        let finished = accum.finish();
        span.done();
        match finished {
            Err(e) => stmt_error(cx, si, CmdError::new(closing.display(), e.to_string())),
            Ok(combined) => {
                let elapsed = t0.elapsed();
                {
                    let mut st = lock(&stmt.nodes[ni]);
                    st.combine_time += elapsed;
                    st.bytes_out = combined.len();
                    st.phase = Phase::Emitting(Emit::new(combined));
                }
                emit_task(cx, si, ni);
            }
        }
    }
}

/// One task at a Fold(Gather) or BoundedConsumer node: claim one queued
/// chunk, integrate it in order, and either finalize (input exhausted) or
/// — for a satisfied bound — cancel upstream and run early.
fn gather_task(cx: &Cx<'_, '_>, si: usize, ni: usize) {
    let stmt = &cx.rt.stmts[si];
    let bound = match stmt.graph.nodes[ni].kind {
        NodeKind::BoundedConsumer { lines } => Some(lines),
        _ => None,
    };
    {
        let mut st = lock(&stmt.nodes[ni]);
        if st.cancelled {
            return;
        }
        match st.phase {
            Phase::Collecting => {}
            Phase::Emitting(_) => {
                drop(st);
                emit_task(cx, si, ni);
                return;
            }
            _ => return,
        }
        st.inflight += 1;
    }
    let popped = pop_input(stmt, ni);
    let popped_err = popped.is_err();
    let gather_span = match &popped {
        Ok((seq, chunk, _)) => Some(
            kq_trace::span("dataflow", "gather")
                .si(si)
                .ni(ni)
                .seq(*seq)
                .v(chunk.len() as f64),
        ),
        Err(_) => None,
    };
    let mut satisfied = false;
    let mut exit_chunks = 0usize;
    {
        let mut st = lock(&stmt.nodes[ni]);
        st.inflight -= 1;
        if st.cancelled || !matches!(st.phase, Phase::Collecting) {
            return;
        }
        match popped {
            Err(closed) => {
                if !closed {
                    stmt.edges[ni - 1].note_starved();
                }
                st.starve_since.get_or_insert_with(Instant::now);
            }
            Ok((seq, chunk, len_at)) => {
                if let Some(starved) = st.starve_since.take() {
                    st.telem.recv_stall += starved.elapsed();
                }
                st.telem.tasks += 1;
                st.telem.max_queued = st.telem.max_queued.max(len_at);
                st.pending.insert(seq, chunk);
                while let Some(ready) = {
                    let next = st.next_seq;
                    st.pending.remove(&next)
                } {
                    st.next_seq += 1;
                    match bound {
                        None => {
                            st.bytes_in += ready.len();
                            st.rope.push(ready);
                        }
                        Some(lines) if st.seen_lines < lines => {
                            st.seen_lines += ready.count_newlines();
                            st.chunks_consumed += 1;
                            st.bytes_in += ready.len();
                            st.rope.push(ready);
                        }
                        // Past the bound (late queued chunks): dropped.
                        Some(_) => {}
                    }
                }
            }
        }
        // A bound of zero lines is satisfied before any input arrives.
        if let Some(lines) = bound {
            if st.seen_lines >= lines {
                st.phase = Phase::Running;
                st.early_exit = Some(EarlyExit {
                    stage: stmt.graph.nodes[ni].stages.start,
                    chunks: st.chunks_consumed,
                });
                satisfied = true;
                exit_chunks = st.chunks_consumed;
            }
        }
    }
    drop(gather_span);
    if satisfied {
        kq_trace::instant("dataflow", "early-exit")
            .si(si)
            .ni(ni)
            .v(exit_chunks as f64)
            .emit();
        cancel_upstream(cx, si, ni);
        run_gathered(cx, si, ni);
        return;
    }
    // The pop freed one credit upstream.
    if !popped_err {
        cx.schedule((si, ni - 1));
    }
    // Every retiring claim re-checks finalization, successful pops
    // included. Without the re-check on this path there is a lost-wakeup
    // window: task A claims `inflight` and pops the *final* chunk; task B
    // pops `Err(closed)`, retires, and sees closed+empty but bails on
    // A's `inflight > 0`; A then integrates and — if it only rescheduled
    // upstream (a no-op once the split is Done) — nobody ever runs the
    // finalize check again, `done` is never set, and the pool sleeps
    // forever. The condition is stable once true, so the extra check on
    // the common path costs one edge-lock peek and nothing else.
    maybe_finalize_gather(cx, si, ni);
}

/// Finalizes a gather/bounded node whose input closed without meeting any
/// bound: run the command on everything gathered.
fn maybe_finalize_gather(cx: &Cx<'_, '_>, si: usize, ni: usize) {
    let stmt = &cx.rt.stmts[si];
    {
        let q = lock(&stmt.edges[ni - 1].q);
        if !q.closed || !q.items.is_empty() {
            return;
        }
    }
    {
        let mut st = lock(&stmt.nodes[ni]);
        if st.cancelled || !matches!(st.phase, Phase::Collecting) || st.inflight > 0 {
            return;
        }
        st.phase = Phase::Running;
        // Input ended before the bound: a plain run, not an early exit.
        st.early_exit = None;
    }
    run_gathered(cx, si, ni);
}

/// Runs a gather/bounded node's command once over its gathered prefix and
/// switches to emitting. `Phase::Running` (set by the caller) keeps
/// concurrent tasks out while the command runs lock-free.
fn run_gathered(cx: &Cx<'_, '_>, si: usize, ni: usize) {
    let stmt = &cx.rt.stmts[si];
    let cmd = stmt.chains[ni][0];
    let input = {
        let mut st = lock(&stmt.nodes[ni]);
        std::mem::replace(&mut st.rope, Rope::new()).into_bytes()
    };
    let span = kq_trace::span("dataflow", "gather-run")
        .si(si)
        .ni(ni)
        .v(input.len() as f64);
    let t0 = Instant::now();
    let ran = cmd.run(input, cx.rt.ctx);
    span.done();
    match ran {
        Err(e) => stmt_error(cx, si, e),
        Ok(out) => {
            let elapsed = t0.elapsed();
            {
                let mut st = lock(&stmt.nodes[ni]);
                st.piece_times.push(elapsed);
                st.bytes_out = out.len();
                st.bytes_out_pieces = out.len();
                st.phase = Phase::Emitting(Emit::new(out));
            }
            emit_task(cx, si, ni);
        }
    }
}

/// One emit quantum: stream a materialized output downstream as lazily
/// cut chunks, stopping at the credit bound (a downstream pop reschedules
/// us) and closing the edge at the end.
fn emit_task(cx: &Cx<'_, '_>, si: usize, ni: usize) {
    let stmt = &cx.rt.stmts[si];
    let last = ni + 1 == stmt.graph.nodes.len();
    let mut pushed = 0usize;
    {
        let mut st = lock(&stmt.nodes[ni]);
        if st.cancelled {
            return;
        }
        loop {
            if !matches!(st.phase, Phase::Emitting(_)) {
                return;
            }
            if matches!(&st.phase, Phase::Emitting(emit) if emit.done()) {
                st.phase = Phase::Done;
                break;
            }
            if !last && stmt.edges[ni].check_gate() {
                st.gate_since.get_or_insert_with(Instant::now);
                drop(st);
                schedule_pushes(cx, si, ni + 1, pushed);
                return;
            }
            if let Some(gated) = st.gate_since.take() {
                st.telem.send_stall += gated.elapsed();
            }
            let Phase::Emitting(emit) = &mut st.phase else {
                unreachable!()
            };
            let span = kq_trace::span("dataflow", "emit")
                .si(si)
                .ni(ni)
                .seq(emit.chunks);
            let target = chunk_target(cx.rt, stmt, si, ni, emit.chunks);
            let chunk = emit.next_chunk(target, cx.rt.release_lag);
            span.v(chunk.len() as f64).done();
            push_edge(stmt, ni, chunk);
            pushed += 1;
        }
    }
    if !last {
        schedule_pushes(cx, si, ni + 1, pushed);
    }
    close_edge(cx, si, ni);
}

/// Early-exit teardown: a satisfied bound (or a failing statement) marks
/// every node above `upto` cancelled and drops the chunks already queued
/// on their edges — see the cancellation matrix in [`crate::dataflow`].
fn cancel_upstream(cx: &Cx<'_, '_>, si: usize, upto: usize) {
    kq_trace::instant("dataflow", "cancel")
        .si(si)
        .v(upto as f64)
        .emit();
    let stmt = &cx.rt.stmts[si];
    for k in 0..upto {
        let mut st = lock(&stmt.nodes[k]);
        st.cancelled = true;
        if let Phase::Emitting(emit) = &st.phase {
            // Nobody reads the rest of this stream: drop the resident
            // tail of a mapped source now.
            emit.abandon();
        }
        st.phase = Phase::Done;
    }
    for e in 0..upto {
        let mut q = lock(&stmt.edges[e].q);
        q.items.clear();
        q.closed = true;
        stmt.edges[e].len.store(0, Ordering::Relaxed);
    }
}

/// Records a statement failure (first error wins), tears the whole
/// statement down, and aborts statements that have not started yet.
fn stmt_error(cx: &Cx<'_, '_>, si: usize, err: CmdError) {
    let stmt = &cx.rt.stmts[si];
    {
        let mut slot = lock(&stmt.error);
        if slot.is_none() {
            *slot = Some(err);
        }
    }
    cancel_upstream(cx, si, stmt.graph.nodes.len());
    {
        let mut q = lock(&stmt.edges[stmt.graph.nodes.len() - 1].q);
        q.items.clear();
        q.closed = true;
    }
    cx.rt.abort.store(true, Ordering::Release);
    finish_statement(cx, si, None);
    // Statements that never started will never be needed: the run's
    // result is this error. Running siblings finish on their own.
    for other in 0..cx.rt.stmts.len() {
        if !cx.rt.stmts[other].started.swap(true, Ordering::AcqRel) {
            finish_statement(cx, other, None);
        }
    }
}

/// Completes a statement: stores/redirects its output, releases
/// dependents, and — when it is the last one — shuts the pool down.
fn finish_statement(cx: &Cx<'_, '_>, si: usize, output: Option<Bytes>) {
    let stmt = &cx.rt.stmts[si];
    if stmt.finished.swap(true, Ordering::AcqRel) {
        return;
    }
    kq_trace::instant("dataflow", "stmt-finish").si(si).emit();
    if let Some(out) = output {
        match &stmt.statement.output {
            // Redirection stores the shared slice — no copy — and must
            // land before any dependent statement starts reading.
            Some(target) => cx.rt.ctx.vfs.write(target.clone(), out),
            None => *lock(&stmt.output) = Some(out),
        }
        for &d in &stmt.dependents {
            if cx.rt.stmts[d].deps_left.fetch_sub(1, Ordering::AcqRel) == 1 {
                start_statement(cx, d);
            }
        }
    }
    if cx.rt.finished_count.fetch_add(1, Ordering::AcqRel) + 1 == cx.rt.stmts.len() {
        cx.rt.done.store(true, Ordering::Release);
        cx.rt.signal();
    }
}

/// Builds the per-node [`StageTiming`]s after the pool has drained.
fn snapshot_timings(stmt: &StmtRt<'_>) -> Vec<StageTiming> {
    let mut out = Vec::with_capacity(stmt.graph.nodes.len().saturating_sub(1));
    for (ni, node) in stmt.graph.nodes.iter().enumerate().skip(1) {
        let st = lock(&stmt.nodes[ni]);
        let label = stmt.chains[ni]
            .iter()
            .map(|c| c.display())
            .collect::<Vec<_>>()
            .join(" | ");
        let (parallel, eliminated) = match node.kind {
            NodeKind::StageWorker => (true, true),
            NodeKind::Fold {
                mode: FoldMode::Combine,
            } => (true, false),
            _ => (false, false),
        };
        out.push(StageTiming {
            label,
            parallel,
            eliminated,
            piece_times: st.piece_times.clone(),
            combine_time: st.combine_time,
            bytes_in: st.bytes_in,
            bytes_out: st.bytes_out,
            bytes_out_pieces: st.bytes_out_pieces,
            early_exit: st.early_exit,
            queue: Some(st.telem),
            spill: st
                .spill_metrics
                .as_deref()
                .map(crate::exec::SpillTelemetry::from_metrics),
        });
    }
    out
}

/// Slots a piece duration at its chunk ordinal (results arrive unordered).
fn record_piece(times: &mut Vec<Duration>, seq: usize, dur: Duration) {
    if times.len() <= seq {
        times.resize(seq + 1, Duration::ZERO);
    }
    times[seq] = dur;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::run_serial;
    use crate::parse::parse_script;
    use crate::plan::Planner;
    use kq_synth::SynthesisConfig;
    use std::collections::HashMap;

    fn make_input(lines: usize) -> String {
        let words = ["apple", "dog", "cat", "apple", "bird", "cat", "fox"];
        let mut s = String::new();
        for i in 0..lines {
            s.push_str(&format!(
                "{} {} line {}\n",
                words[i % words.len()],
                words[(i * 3 + 1) % words.len()],
                i % 11
            ));
        }
        s
    }

    fn check(script_text: &str, chunk_bytes: usize) {
        let env: HashMap<String, String> = HashMap::new();
        let script = parse_script(script_text, &env).unwrap();
        let ctx = ExecContext::default();
        ctx.vfs.write("/in.txt", make_input(500));
        let serial = run_serial(&script, &ctx).unwrap();
        let mut planner = Planner::new(SynthesisConfig::default());
        let plan = planner.plan(&script, &ctx, &make_input(100));
        for workers in [1, 3] {
            for queue_depth in [1, 4] {
                for fuse in [true, false] {
                    let opts = DataflowOptions {
                        workers,
                        chunk: ChunkSizing::Fixed(chunk_bytes),
                        queue: QueueCredit::Fixed(queue_depth),
                        fuse_streamable: fuse,
                        spill: None,
                    };
                    // Redirect targets persist in the VFS: reset them by
                    // using a fresh context per configuration is not
                    // needed — serial already wrote the same bytes.
                    let got = run_dataflow(&script, &plan, &ctx, &opts).unwrap();
                    assert_eq!(
                        got.output, serial.output,
                        "{script_text:?} differs (w={workers}, chunk={chunk_bytes}, \
                         depth={queue_depth}, fuse={fuse})"
                    );
                }
            }
        }
    }

    /// Runs `script_text` with both adaptive knobs on and asserts byte
    /// equality with serial plus sane adaptive telemetry.
    fn check_adaptive(script_text: &str) {
        let env: HashMap<String, String> = HashMap::new();
        let script = parse_script(script_text, &env).unwrap();
        let ctx = ExecContext::default();
        ctx.vfs.write("/in.txt", make_input(500));
        let serial = run_serial(&script, &ctx).unwrap();
        let mut planner = Planner::new(SynthesisConfig::default());
        let plan = planner.plan(&script, &ctx, &make_input(100));
        for workers in [1, 3] {
            let opts = DataflowOptions {
                workers,
                chunk: ChunkSizing::Auto,
                queue: QueueCredit::Auto,
                fuse_streamable: true,
                spill: None,
            };
            let got = run_dataflow(&script, &plan, &ctx, &opts).unwrap();
            assert_eq!(
                got.output, serial.output,
                "{script_text:?} differs under adaptation (w={workers})"
            );
            let adaptive = got.timings.adaptive.expect("auto knobs report telemetry");
            assert!(adaptive.auto_chunk && adaptive.rebalanced);
            assert!(
                adaptive.initial_chunk_bytes >= AUTO_CHUNK_MIN,
                "auto base respects the floor"
            );
            assert!(adaptive.max_chunk_bytes >= adaptive.initial_chunk_bytes);
        }
    }

    #[test]
    fn word_frequency_runs_on_the_shared_pool() {
        check(
            "cat /in.txt | cut -d ' ' -f 1 | sort | uniq -c | sort -rn",
            256,
        );
    }

    #[test]
    fn streamable_chain_runs() {
        check(
            "cat /in.txt | grep apple | tr a-z A-Z | cut -d ' ' -f 1",
            300,
        );
    }

    #[test]
    fn counting_pipeline_runs() {
        check("cat /in.txt | grep apple | wc -l", 512);
    }

    #[test]
    fn sequential_stage_mid_pipeline() {
        check("cat /in.txt | sed 1d | sort | uniq", 400);
    }

    #[test]
    fn chunk_larger_than_input_degenerates_to_serial() {
        check("cat /in.txt | sort | uniq -c", 10_000_000);
    }

    #[test]
    fn one_byte_chunks_are_one_line_each() {
        check("cat /in.txt | cut -d ' ' -f 2 | sort | uniq -c", 1);
    }

    #[test]
    fn redirect_chain_orders_statements() {
        check(
            "cat /in.txt | cut -d ' ' -f 1 | sort > /tmp1\ncat /tmp1 | uniq -c | sort -rn",
            350,
        );
    }

    #[test]
    fn independent_statements_share_the_pool() {
        check(
            "cat /in.txt | grep apple | wc -l\ncat /in.txt | cut -d ' ' -f 2 | sort -u\n\
             cat /in.txt | tr a-z A-Z | grep APPLE | head -n 3",
            256,
        );
    }

    #[test]
    fn head_terminated_pipelines_stay_byte_identical() {
        check("cat /in.txt | grep apple | head -n 1", 64);
        check("cat /in.txt | head -n 2 | cut -d ' ' -f 1", 128);
        check("cat /in.txt | sort -u | head -n 3", 256);
        check("cat /in.txt | sed 5q | sort", 200);
        check("cat /in.txt | grep apple | head -n 1 | tr a-z A-Z", 64);
        check("cat /in.txt | head -n 0 | sort", 128);
        check("cat /in.txt | head -n 999 | sort", 300);
    }

    #[test]
    fn empty_input_is_fine() {
        let env: HashMap<String, String> = HashMap::new();
        let script = parse_script("cat /empty | sort | uniq -c", &env).unwrap();
        let ctx = ExecContext::default();
        ctx.vfs.write("/empty", "");
        let mut planner = Planner::new(SynthesisConfig::default());
        let plan = planner.plan(&script, &ctx, &make_input(50));
        let got = run_dataflow(&script, &plan, &ctx, &DataflowOptions::default()).unwrap();
        assert_eq!(got.output, "");
    }

    #[test]
    fn bounded_consumer_cancels_upstream_and_reports_early_exit() {
        let env: HashMap<String, String> = HashMap::new();
        let script = parse_script("cat /in.txt | grep apple | head -n 1", &env).unwrap();
        let ctx = ExecContext::default();
        let input = make_input(5000);
        ctx.vfs.write("/in.txt", &input);
        let mut planner = Planner::new(SynthesisConfig::default());
        let plan = planner.plan(&script, &ctx, &make_input(100));
        let opts = DataflowOptions {
            workers: 2,
            chunk: ChunkSizing::Fixed(256),
            queue: QueueCredit::Fixed(2),
            fuse_streamable: true,
            spill: None,
        };
        let got = run_dataflow(&script, &plan, &ctx, &opts).unwrap();
        let serial = run_serial(&script, &ctx).unwrap();
        assert_eq!(got.output, serial.output);
        let stages = &got.timings.statements[0];
        let head = stages
            .iter()
            .find(|s| s.label.starts_with("head"))
            .expect("head stage timing");
        let early = head.early_exit.expect("head must report its early exit");
        assert!(early.chunks >= 1, "head consumed at least the first chunk");
        assert_eq!(early.stage, 1, "head is pipeline stage 1 (grep is 0)");
        let grep = stages
            .iter()
            .find(|s| s.label.starts_with("grep"))
            .expect("grep stage timing");
        assert!(
            grep.bytes_in < input.len() / 4,
            "grep consumed {} of {} bytes despite the cancellation",
            grep.bytes_in,
            input.len()
        );
    }

    #[test]
    fn exhausted_bound_is_not_an_early_exit() {
        let env: HashMap<String, String> = HashMap::new();
        let script = parse_script("cat /in.txt | head -n 999", &env).unwrap();
        let ctx = ExecContext::default();
        ctx.vfs.write("/in.txt", make_input(200));
        let mut planner = Planner::new(SynthesisConfig::default());
        let plan = planner.plan(&script, &ctx, &make_input(50));
        let got = run_dataflow(&script, &plan, &ctx, &DataflowOptions::default()).unwrap();
        let head = &got.timings.statements[0][0];
        assert_eq!(head.early_exit, None);
        assert_eq!(got.output, run_serial(&script, &ctx).unwrap().output);
    }

    #[test]
    fn missing_input_file_is_an_error() {
        let script = parse_script("cat /absent | sort", &HashMap::new()).unwrap();
        let ctx = ExecContext::default();
        let mut planner = Planner::new(SynthesisConfig::default());
        let plan = planner.plan(&script, &ctx, "b\na\n");
        assert!(run_dataflow(&script, &plan, &ctx, &DataflowOptions::default()).is_err());
    }

    #[test]
    fn command_error_mid_pipeline_surfaces() {
        let env: HashMap<String, String> = HashMap::new();
        let script =
            parse_script("cat /in.txt | grep apple | comm -23 - /nonexistent", &env).unwrap();
        let ctx = ExecContext::default();
        ctx.vfs.write("/in.txt", make_input(200));
        let mut planner = Planner::new(SynthesisConfig::default());
        let plan = planner.plan(&script, &ctx, &make_input(50));
        assert!(run_dataflow(&script, &plan, &ctx, &DataflowOptions::default()).is_err());
    }

    #[test]
    fn timing_log_reports_nodes_with_queue_telemetry() {
        let env: HashMap<String, String> = HashMap::new();
        let script = parse_script("cat /in.txt | tr A-Z a-z | grep a | sort", &env).unwrap();
        let ctx = ExecContext::default();
        let input = make_input(400);
        ctx.vfs.write("/in.txt", &input);
        let mut planner = Planner::new(SynthesisConfig::default());
        let plan = planner.plan(&script, &ctx, &input);
        let opts = DataflowOptions {
            workers: 2,
            chunk: ChunkSizing::Fixed(1024),
            queue: QueueCredit::Fixed(2),
            fuse_streamable: true,
            spill: None,
        };
        let got = run_dataflow(&script, &plan, &ctx, &opts).unwrap();
        let stages = &got.timings.statements[0];
        assert_eq!(stages.len(), 2, "tr|grep fuse; sort folds");
        assert!(stages[0].label.contains('|'));
        assert!(stages[0].eliminated);
        assert!(!stages[1].eliminated);
        assert!(stages[1].combine_time > Duration::ZERO);
        assert!(stages[0].piece_times.len() > 1, "expected many chunks");
        let telem = stages[0].queue.expect("dataflow reports queue telemetry");
        assert!(telem.tasks > 1, "one task per chunk");
        assert!(stages[1].queue.is_some());
    }

    #[test]
    fn adaptive_knobs_stay_byte_identical() {
        check_adaptive("cat /in.txt | cut -d ' ' -f 1 | sort | uniq -c | sort -rn");
        check_adaptive("cat /in.txt | grep apple | tr a-z A-Z");
        check_adaptive("cat /in.txt | sort -u | head -n 3");
        check_adaptive(
            "cat /in.txt | cut -d ' ' -f 1 | sort > /tmp1\ncat /tmp1 | uniq -c | sort -rn",
        );
    }

    #[test]
    fn fixed_mode_reports_no_adaptive_telemetry() {
        let env: HashMap<String, String> = HashMap::new();
        let script = parse_script("cat /in.txt | sort | uniq", &env).unwrap();
        let ctx = ExecContext::default();
        ctx.vfs.write("/in.txt", make_input(100));
        let mut planner = Planner::new(SynthesisConfig::default());
        let plan = planner.plan(&script, &ctx, &make_input(50));
        let got = run_dataflow(&script, &plan, &ctx, &DataflowOptions::default()).unwrap();
        assert_eq!(got.timings.adaptive, None, "fixed knobs stay silent");
    }

    #[test]
    fn coarsening_is_pure_geometric_and_capped() {
        assert_eq!(coarsened_target(1024, 0), 1024);
        assert_eq!(coarsened_target(1024, COARSEN_EVERY - 1), 1024);
        assert_eq!(coarsened_target(1024, COARSEN_EVERY), 2048);
        assert_eq!(coarsened_target(1024, 3 * COARSEN_EVERY), 8192);
        // Doubling cap.
        assert_eq!(
            coarsened_target(1024, 100 * COARSEN_EVERY),
            1024 << MAX_COARSEN_DOUBLINGS
        );
        // Byte ceiling.
        assert_eq!(
            coarsened_target(AUTO_CHUNK_MAX, COARSEN_EVERY),
            AUTO_CHUNK_MAX
        );
        // A base above the ceiling (huge Fixed-style base) is preserved.
        assert_eq!(coarsened_target(AUTO_CHUNK_MAX * 2, 0), AUTO_CHUNK_MAX * 2);
    }

    #[test]
    fn auto_chunking_shrinks_the_fold_frontier() {
        let env: HashMap<String, String> = HashMap::new();
        let script = parse_script("cat /in.txt | tr A-Z a-z | sort", &env).unwrap();
        let ctx = ExecContext::default();
        let input = make_input(80_000); // ~2 MB
        ctx.vfs.write("/in.txt", &input);
        let mut planner = Planner::new(SynthesisConfig::default());
        let plan = planner.plan(&script, &ctx, &make_input(100));
        let run = |chunk: ChunkSizing| {
            let opts = DataflowOptions {
                workers: 1,
                chunk,
                queue: QueueCredit::Fixed(DEFAULT_QUEUE_DEPTH),
                fuse_streamable: true,
                spill: None,
            };
            run_dataflow(&script, &plan, &ctx, &opts).unwrap()
        };
        let fixed = run(ChunkSizing::Fixed(8192));
        let auto = run(ChunkSizing::Auto);
        assert_eq!(fixed.output, auto.output);
        // The sort fold is the last stage; its task count is the number
        // of runs pushed into the merge frontier.
        let frontier = |res: &ExecutionResult| {
            res.timings.statements[0]
                .last()
                .and_then(|s| s.queue)
                .map(|q| q.tasks)
                .expect("fold stage telemetry")
        };
        let (ff, af) = (frontier(&fixed), frontier(&auto));
        assert!(
            af * 2 <= ff,
            "auto frontier {af} should be at most half of fixed {ff}"
        );
    }

    #[test]
    fn statement_deps_cover_raw_waw_war() {
        let env: HashMap<String, String> = HashMap::new();
        let script = parse_script(
            "cat /a | sort > /x\ncat /x | uniq > /y\ncat /b | grep q > /x\ncat /c | wc -l",
            &env,
        )
        .unwrap();
        let deps = statement_deps(&script);
        assert_eq!(deps[0], Vec::<usize>::new());
        assert_eq!(deps[1], vec![0], "RAW on /x");
        // Statement 2 rewrites /x: WAW with 0, WAR with 1 (which reads /x).
        assert_eq!(deps[2], vec![0, 1]);
        assert_eq!(deps[3], Vec::<usize>::new(), "independent statement");
    }
}
