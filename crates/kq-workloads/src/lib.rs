//! The KumQuat benchmark corpus: the 70 scripts of the paper's four
//! benchmark suites (4 mass-transit analytics, 10 classic one-liners, 22
//! Unix-for-Poets, 34 unix50), reconstructed from the paper's Tables 3/4
//! (script names and per-pipeline stage counts) and Table 10 (the exact
//! command/flag combinations each script contains), together with
//! synthetic input generators matching each suite's data structure.
//!
//! ```no_run
//! use kq_workloads::{corpus, setup, Scale};
//! use kq_coreutils::ExecContext;
//!
//! let script = &corpus()[0];
//! let ctx = ExecContext::default();
//! let env = setup(script, &ctx, &Scale::tests(), 42);
//! let parsed = kq_pipeline::parse::parse_script(script.text, &env).unwrap();
//! ```

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod inputs;
pub mod scripts;

pub use scripts::{corpus, BenchmarkScript, InputKind, Suite};

use kq_coreutils::ExecContext;
use std::collections::HashMap;

/// Input sizing for a corpus run. The paper uses 0.9–3.4 GB inputs on an
/// 80-core server; tests and benches here scale down (see DESIGN.md).
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Approximate main-input size in bytes (rows are derived from it).
    pub input_bytes: usize,
}

impl Scale {
    /// Small inputs for unit/integration tests (~40 KB).
    pub fn tests() -> Scale {
        Scale {
            input_bytes: 40_000,
        }
    }

    /// Bench-sized inputs, overridable with `KQ_SCALE_KB`.
    pub fn bench() -> Scale {
        let kb = std::env::var("KQ_SCALE_KB")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or(2_048);
        Scale {
            input_bytes: kb * 1024,
        }
    }

    fn rows(&self, bytes_per_row: usize) -> usize {
        (self.input_bytes / bytes_per_row).max(50)
    }
}

/// A planning sample for a generated input: the longest prefix of `text`
/// at most `max_bytes` long that ends on a newline, falling back to a
/// char-aligned cut when the prefix holds no newline. Char-boundary-safe
/// on purpose — corpus inputs contain multibyte text (`gutenberg_text`
/// sprinkles accented words), so a raw `&text[..16_000]` can panic
/// mid-character.
pub fn planning_sample(text: &str, max_bytes: usize) -> &str {
    if text.len() <= max_bytes {
        return text;
    }
    let mut cut = max_bytes;
    while cut > 0 && !text.is_char_boundary(cut) {
        cut -= 1;
    }
    match text[..cut].rfind('\n') {
        Some(newline) => &text[..newline + 1],
        None => &text[..cut],
    }
}

/// Writes the script's input (and auxiliary files) into the context's
/// filesystem and returns the environment for parsing it.
pub fn setup(
    script: &BenchmarkScript,
    ctx: &ExecContext,
    scale: &Scale,
    seed: u64,
) -> HashMap<String, String> {
    use inputs::*;
    let mut env: HashMap<String, String> = HashMap::new();
    let in_path = format!("/in/{}-{}", script.suite.dir(), script.id);
    let main_input = match script.kind {
        InputKind::Gutenberg => gutenberg_text(scale.input_bytes, seed),
        InputKind::ShortLines => {
            // nfa-regex: the backtracking pattern is super-linear in line
            // length, so this input keeps lines short (as does the original
            // benchmark's dictionary-style input).
            let text = gutenberg_text(scale.input_bytes / 8, seed);
            let mut out = String::new();
            let mut n = 0usize;
            for line in text.lines() {
                for chunk in line.split(' ') {
                    if !chunk.is_empty() {
                        out.push_str(&chunk[..chunk.len().min(14)]);
                        out.push('\n');
                        n += 1;
                        if n.is_multiple_of(37) {
                            // A few lines with the pairwise-repeat shape
                            // the nfa-regex pattern hunts for.
                            out.push_str("xxeelldd\n");
                        }
                    }
                }
            }
            out
        }
        InputKind::TransitCsv => mass_transit_csv(scale.rows(38), seed),
        InputKind::Chess => chess_games(scale.rows(160), seed),
        InputKind::Names => names_list(scale.rows(14), seed),
        InputKind::Releases => releases_tsv(scale.rows(34), seed),
        InputKind::Credits => credits_text(scale.rows(34), seed),
        InputKind::Quoted => quoted_text(scale.rows(34), seed),
        InputKind::Mail => mail_text(scale.rows(30), seed),
        InputKind::Awards => awards_text(scale.rows(34), seed),
        InputKind::Books => {
            // Input stream = book file names; contents live in /books/.
            let n_books = 6;
            let lib = book_library(n_books, scale.input_bytes / n_books, seed);
            let mut list = String::new();
            for (name, text) in &lib {
                ctx.vfs.write(format!("/books/{name}"), text.clone());
                list.push_str(name);
                list.push('\n');
            }
            list
        }
        InputKind::FileTree => {
            let tree = file_tree((scale.input_bytes / 600).clamp(24, 400), seed);
            let mut list = String::new();
            for (path, content, ftype) in &tree {
                ctx.vfs
                    .write_typed(path.clone(), content.clone(), ftype.clone());
                list.push_str(path);
                list.push('\n');
            }
            list
        }
    };
    ctx.vfs.write(in_path.clone(), main_input);
    env.insert("IN".to_owned(), in_path);

    // Suite-specific auxiliary files.
    if script.text.contains("$DICT") {
        ctx.vfs.write("/aux/dict", dictionary());
        env.insert("DICT".to_owned(), "/aux/dict".to_owned());
    }
    if script.text.contains("/books/exodus.txt") {
        ctx.vfs.write(
            "/books/exodus.txt",
            gutenberg_text(scale.input_bytes / 4, seed ^ 1),
        );
        ctx.vfs.write(
            "/books/genesis.txt",
            gutenberg_text(scale.input_bytes / 4, seed ^ 2),
        );
    }
    env
}

#[cfg(test)]
mod tests {
    use super::*;
    use kq_pipeline::exec::run_serial;
    use kq_pipeline::parse::parse_script;

    #[test]
    fn corpus_has_seventy_scripts() {
        let c = corpus();
        assert_eq!(c.len(), 70);
        assert_eq!(
            c.iter().filter(|s| s.suite == Suite::AnalyticsMts).count(),
            4
        );
        assert_eq!(c.iter().filter(|s| s.suite == Suite::Oneliners).count(), 10);
        assert_eq!(c.iter().filter(|s| s.suite == Suite::Poets).count(), 22);
        assert_eq!(c.iter().filter(|s| s.suite == Suite::Unix50).count(), 34);
    }

    #[test]
    fn all_scripts_parse() {
        for script in corpus() {
            let ctx = ExecContext::default();
            let env = setup(script, &ctx, &Scale { input_bytes: 2000 }, 1);
            let parsed = parse_script(script.text, &env);
            assert!(
                parsed.is_ok(),
                "{}/{}: {:?}",
                script.suite.dir(),
                script.id,
                parsed.err()
            );
        }
    }

    #[test]
    fn all_scripts_execute_serially() {
        for script in corpus() {
            let ctx = ExecContext::default();
            let env = setup(script, &ctx, &Scale { input_bytes: 4000 }, 7);
            let parsed = parse_script(script.text, &env).unwrap();
            let result = run_serial(&parsed, &ctx);
            assert!(
                result.is_ok(),
                "{}/{} failed: {:?}",
                script.suite.dir(),
                script.id,
                result.err()
            );
        }
    }

    #[test]
    fn scripts_produce_nonempty_output() {
        // Scripts whose last statement redirects produce their result in
        // the VFS; all others must print something.
        let mut nonempty = 0;
        for script in corpus() {
            let ctx = ExecContext::default();
            // 40 KB: large enough for the threshold-dependent pipelines
            // (poets 8.2_1 keeps vowel sequences with count >= 1000).
            let env = setup(
                script,
                &ctx,
                &Scale {
                    input_bytes: 40_000,
                },
                3,
            );
            let parsed = parse_script(script.text, &env).unwrap();
            let result = run_serial(&parsed, &ctx).unwrap();
            if !result.output.is_empty() {
                nonempty += 1;
            }
        }
        // Every script is expected to print: the corpus avoids
        // redirect-only endings.
        assert_eq!(nonempty, 70);
    }

    #[test]
    fn stage_counts_match_table3_totals_roughly() {
        // The paper counts 427 stages over 70 scripts. Our reconstruction
        // must land in the same ballpark (reconstructed pipelines differ
        // by a stage here and there; see DESIGN.md).
        let mut total = 0;
        for script in corpus() {
            let ctx = ExecContext::default();
            let env = setup(script, &ctx, &Scale { input_bytes: 2000 }, 1);
            let parsed = parse_script(script.text, &env).unwrap();
            total += parsed.stage_count();
        }
        assert!(
            (380..=470).contains(&total),
            "total stages {total} far from the paper's 427"
        );
    }

    #[test]
    fn planning_sample_is_boundary_safe() {
        // Newline-aligned cut within the budget.
        assert_eq!(planning_sample("ab\ncd\nef\n", 7), "ab\ncd\n");
        // Short inputs pass through whole.
        assert_eq!(planning_sample("ab\n", 100), "ab\n");
        // A multibyte char straddling the cut never panics: walk back to
        // the char boundary, then to the newline.
        let text = "line one\nliné two\nliné three\n";
        for max in 0..text.len() {
            let sample = planning_sample(text, max);
            assert!(sample.len() <= max || sample == text);
            assert!(text.starts_with(sample));
        }
        // No newline in the prefix: char-aligned fallback.
        assert_eq!(planning_sample("ééééé", 3), "é");
    }

    #[test]
    fn deterministic_given_seed() {
        let script = &corpus()[0];
        let out = |seed| {
            let ctx = ExecContext::default();
            let env = setup(script, &ctx, &Scale { input_bytes: 3000 }, seed);
            let parsed = parse_script(script.text, &env).unwrap();
            run_serial(&parsed, &ctx).unwrap().output
        };
        assert_eq!(out(5), out(5));
        assert_ne!(out(5), out(6));
    }
}
