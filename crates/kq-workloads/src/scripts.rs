//! The 70 benchmark scripts.
//!
//! Reconstructed from the paper: Table 3/4 give the script names and
//! per-pipeline stage counts, Table 10 gives the exact command/flag
//! combinations each script contains, and the cited sources (PaSh
//! benchmarks, Unix-for-Poets, the unix50 game) give the idioms. Where the
//! paper's exact stage order is not recoverable, pipelines are assembled
//! from the script's own Table 10 commands with matching stage counts;
//! EXPERIMENTS.md reports our measured counts next to the paper's.

/// The four benchmark suites.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Suite {
    /// Mass-transit analytics during COVID-19 (4 scripts).
    AnalyticsMts,
    /// Classic Unix one-liners (10 scripts).
    Oneliners,
    /// Unix-for-Poets NLP scripts (22 scripts).
    Poets,
    /// The Bell Labs unix50 game (34 scripts).
    Unix50,
}

impl Suite {
    /// Directory-style name, as in the paper's tables.
    pub fn dir(&self) -> &'static str {
        match self {
            Suite::AnalyticsMts => "analytics-mts",
            Suite::Oneliners => "oneliners",
            Suite::Poets => "poets",
            Suite::Unix50 => "unix50",
        }
    }
}

/// Which synthetic input a script consumes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InputKind {
    /// Book-like prose (oneliners).
    Gutenberg,
    /// Short dictionary-style lines (nfa-regex's backtracking-heavy grep).
    ShortLines,
    /// A list of book file names + `/books/` contents (poets).
    Books,
    /// Mass-transit telemetry CSV.
    TransitCsv,
    /// Chess movetext.
    Chess,
    /// `First Last` rows.
    Names,
    /// Tab-separated release records.
    Releases,
    /// Credit lines with parentheses and years.
    Credits,
    /// Prose with quoted strings and code fragments.
    Quoted,
    /// Email-ish text with `To:` lines.
    Mail,
    /// Award rows.
    Awards,
    /// A file-path list + `/usr/bin` virtual tree.
    FileTree,
}

/// One corpus entry.
#[derive(Debug)]
pub struct BenchmarkScript {
    /// Suite the script belongs to.
    pub suite: Suite,
    /// Script file name, as in Table 3 (`2.sh`, `wf.sh`, `4_3b.sh`).
    pub id: &'static str,
    /// Descriptive name from the paper's tables.
    pub name: &'static str,
    /// The script source.
    pub text: &'static str,
    /// Input generator.
    pub kind: InputKind,
}

macro_rules! script {
    ($suite:expr, $id:literal, $name:literal, $kind:expr, $text:expr) => {
        BenchmarkScript {
            suite: $suite,
            id: $id,
            name: $name,
            text: $text,
            kind: $kind,
        }
    };
}

/// The full 70-script corpus.
pub fn corpus() -> &'static [BenchmarkScript] {
    use InputKind::*;
    use Suite::*;
    static CORPUS: &[BenchmarkScript] = &[
        // ---- analytics-mts (4) -------------------------------------------
        script!(AnalyticsMts, "1.sh", "vehicles per day", TransitCsv, r#"cat $IN | sed 's/T..:..:..//' | cut -d ',' -f 1,2 | sort -u | cut -d ',' -f 1 | sort | uniq -c | awk -v OFS="\t" '{print $2,$1}'"#),
        script!(AnalyticsMts, "2.sh", "vehicle days on road", TransitCsv, r#"cat $IN | sed 's/T..:..:..//' | cut -d ',' -f 2,1 | sort -u | cut -d ',' -f 2 | sort | uniq -c | sort -k1n | awk -v OFS="\t" '{print $2,$1}'"#),
        script!(AnalyticsMts, "3.sh", "vehicle hours on road", TransitCsv, r#"cat $IN | sed 's/T\(..\):..:../,\1/' | cut -d ',' -f 1,2,3 | sort -u | cut -d ',' -f 3 | sort | uniq -c | sort -k1n | awk -v OFS="\t" '{print $2,$1}'"#),
        script!(AnalyticsMts, "4.sh", "hours monitored per day", TransitCsv, r#"cat $IN | sed 's/T\(..\):..:../,\1/' | cut -d ',' -f 1,2 | sort -u | cut -d ',' -f 1 | sort | uniq -c | awk -v OFS="\t" '{print $2,$1}'"#),
        // ---- oneliners (10) ----------------------------------------------
        script!(Oneliners, "bi-grams.sh", "adjacent word pairs", Gutenberg, "cat $IN | tr -cs A-Za-z '\\n' | tr A-Z a-z > /tmp/bg_words\ntail +2 /tmp/bg_words > /tmp/bg_next\npaste /tmp/bg_words /tmp/bg_next | sort | uniq"),
        script!(Oneliners, "diff.sh", "compare case-folded copies", Gutenberg, "mkfifo /tmp/d_fifo\ncat $IN | tr [:lower:] [:upper:] | sort > /tmp/d_up\ncat $IN | tr [:upper:] [:lower:] | sort > /tmp/d_low\ndiff /tmp/d_up /tmp/d_low\nrm /tmp/d_fifo"),
        script!(Oneliners, "nfa-regex.sh", "backtracking regex", ShortLines, r"cat $IN | tr A-Z a-z | grep '\(.\).*\1\(.\).*\2\(.\).*\3\(.\).*\4'"),
        script!(Oneliners, "set-diff.sh", "set difference of streams", Gutenberg, "mkfifo /tmp/sd_fifo\ncat $IN | cut -d ' ' -f 1 | tr A-Z a-z | sort > /tmp/sd_a\ncat $IN | cut -d ' ' -f 1 | sort > /tmp/sd_b\ncomm -23 /tmp/sd_a /tmp/sd_b\nrm /tmp/sd_fifo"),
        script!(Oneliners, "shortest-scripts.sh", "shortest shell scripts", FileTree, r#"cat $IN | xargs file | grep "shell script" | cut -d: -f1 | xargs -L 1 wc -l | grep -v '^0$' | sort -n | head -15"#),
        script!(Oneliners, "sort.sh", "sort the input", Gutenberg, "cat $IN | sort"),
        script!(Oneliners, "sort-sort.sh", "sort twice", Gutenberg, "cat $IN | tr A-Z a-z | sort | sort -r"),
        script!(Oneliners, "spell.sh", "spell checker", Gutenberg, "cat $IN | iconv -f utf-8 -t ascii//translit | col -bx | tr A-Z a-z | tr -d '[:punct:]' | tr -cs A-Za-z '\\n' | sort | uniq | comm -23 - $DICT"),
        script!(Oneliners, "top-n.sh", "hundred most frequent words", Gutenberg, "cat $IN | tr -cs A-Za-z '\\n' | tr A-Z a-z | sort | uniq -c | sort -rn | sed 100q"),
        script!(Oneliners, "wf.sh", "word frequencies", Gutenberg, "cat $IN | tr -cs A-Za-z '\\n' | tr A-Z a-z | sort | uniq -c | sort -rn"),
        // ---- poets (22) ---------------------------------------------------
        script!(Poets, "1_1.sh", "count_words", Books, "cat $IN | sed 's;^;/books/;' | xargs cat | tr -sc '[A-Z][a-z]' '[\\012*]' | sort | uniq -c | sort -rn"),
        script!(Poets, "2_1.sh", "merge_upper", Books, "cat $IN | sed 's;^;/books/;' | xargs cat | tr '[a-z]' '[A-Z]' | tr -sc '[A-Z]' '[\\012*]' | sort | uniq -c | sort -rn"),
        script!(Poets, "2_2.sh", "count_vowel_seq", Books, "cat $IN | sed 's;^;/books/;' | xargs cat | tr 'a-z' '[A-Z]' | tr -sc 'AEIOU' '[\\012*]' | sort | uniq -c | sort -rn"),
        script!(Poets, "3_1.sh", "sort", Books, "cat $IN | sed 's;^;/books/;' | xargs cat | tr -sc '[A-Z][a-z]' '[\\012*]' | tr A-Z a-z | sort | uniq -c | sort -nr"),
        script!(Poets, "3_2.sh", "sort_words_by_folding", Books, "cat $IN | sed 's;^;/books/;' | xargs cat | tr -sc '[A-Z][a-z]' '[\\012*]' | sort -f | uniq -c | sort -nr | sed 100q"),
        script!(Poets, "3_3.sh", "sort_words_by_rhyming", Books, "cat $IN | sed 's;^;/books/;' | xargs cat | tr -sc '[A-Z][a-z]' '[\\012*]' | rev | sort | rev | uniq -c | sort -nr | sed 100q"),
        script!(Poets, "4_3.sh", "bigrams", Books, "cat $IN | sed 's;^;/books/;' | xargs cat | tr -sc '[A-Z][a-z]' '[\\012*]' | tr A-Z a-z > /tmp/p43_words\ntail +2 /tmp/p43_words > /tmp/p43_next\npaste /tmp/p43_words /tmp/p43_next | sort | uniq -c"),
        script!(Poets, "4_3b.sh", "count_trigrams", Books, "cat $IN | sed 's;^;/books/;' | xargs cat | tr -sc '[A-Z][a-z]' '[\\012*]' | tr A-Z a-z > /tmp/p43b_words\ntail +2 /tmp/p43b_words > /tmp/p43b_next\ntail +3 /tmp/p43b_words > /tmp/p43b_third\npaste /tmp/p43b_words /tmp/p43b_next /tmp/p43b_third | sort | uniq -c"),
        script!(Poets, "6_1.sh", "trigram_rec", Books, "cat $IN | sed 's;^;/books/;' | xargs cat | grep 'the land of' | tr -sc '[A-Z][a-z]' '[\\012*]' | sort | uniq -c | sort -nr | sed 5q\ncat $IN | sed 's;^;/books/;' | xargs cat | grep 'And he said' | tr -sc '[A-Z][a-z]' '[\\012*]' | sort | uniq -c | sort -nr | sed 5q"),
        script!(Poets, "6_1_1.sh", "uppercase_by_token", Books, "cat $IN | sed 's;^;/books/;' | xargs cat | tr -sc '[A-Z][a-z]' '[\\012*]' | tr -d '[:punct:]' | grep -c '^[A-Z]'"),
        script!(Poets, "6_1_2.sh", "uppercase_by_type", Books, "cat $IN | sed 's;^;/books/;' | xargs cat | tr -sc '[A-Z][a-z]' '[\\012*]' | sort | uniq | grep -c '^[A-Z]'"),
        script!(Poets, "6_2.sh", "4letter_words", Books, "cat $IN | sed 's;^;/books/;' | xargs cat | tr -sc '[A-Z][a-z]' '[\\012*]' | tr A-Z a-z | grep -c '^....$'\ncat $IN | sed 's;^;/books/;' | xargs cat | tr -sc '[A-Z][a-z]' '[\\012*]' | tr A-Z a-z | sort -u | grep -c '^....$'"),
        script!(Poets, "6_3.sh", "words_no_vowels", Books, "cat $IN | sed 's;^;/books/;' | xargs cat | tr A-Z a-z | tr -sc '[a-z]' '[\\012*]' | grep -vi '[aeiou]' | sort | uniq -c"),
        script!(Poets, "6_4.sh", "1syllable_words", Books, "cat $IN | sed 's;^;/books/;' | xargs cat | tr -sc '[A-Z][a-z]' '[\\012*]' | tr A-Z a-z | grep -i '^[^aeiou]*[aeiou][^aeiou]*$' | sort | uniq -c | sed 100q"),
        script!(Poets, "6_5.sh", "2syllable_words", Books, "cat $IN | sed 's;^;/books/;' | xargs cat | tr -sc '[A-Z][a-z]' ' [\\012*]' | tr A-Z a-z | grep -i '^[^aeiou]*[aeiou][^aeiou]*[aeiou][^aeiou]$' | sort | uniq -c | sed 100q"),
        script!(Poets, "6_7.sh", "verses_2om_3om_2instances", Books, "cat $IN | sed 's;^;/books/;' | xargs cat | tr A-Z a-z | grep -c 'light.*light'\ncat $IN | sed 's;^;/books/;' | xargs cat | tr A-Z a-z | grep -c 'light.*light.*light'\ncat $IN | sed 's;^;/books/;' | xargs cat | tr A-Z a-z | grep 'light.*light' | grep -vc 'light.*light.*light'"),
        script!(Poets, "7_2.sh", "count_consonant_seq", Books, "cat $IN | sed 's;^;/books/;' | xargs cat | tr 'a-z' '[A-Z]' | tr -sc 'BCDFGHJKLMNPQRSTVWXYZ' '[\\012*]' | sort | uniq -c | sort -nr"),
        script!(Poets, "8.2_1.sh", "vowel_sequencies_gr_1K", Books, "cat $IN | sed 's;^;/books/;' | xargs cat | tr -sc 'AEIOUaeiou' '[\\012*]' | sort | uniq -c | awk '$1 >= 1000' | sort -nr | sed 100q"),
        script!(Poets, "8.2_2.sh", "bigrams_appear_twice", Books, "cat $IN | sed 's;^;/books/;' | xargs cat | tr -sc '[A-Z][a-z]' '[\\012*]' | tr A-Z a-z > /tmp/p822_words\ntail +2 /tmp/p822_words > /tmp/p822_next\npaste /tmp/p822_words /tmp/p822_next | sort | uniq -c > /tmp/p822_counts\ncat /tmp/p822_counts | awk '$1 == 2 {print $2, $3}'"),
        script!(Poets, "8.3_2.sh", "find_anagrams", Books, "cat $IN | sed 's;^;/books/;' | xargs cat | tr -sc '[A-Z][a-z]' '[\\012*]' | tr A-Z a-z > /tmp/p832_words\ncat /tmp/p832_words | rev > /tmp/p832_rev\ncat /tmp/p832_rev | sort > /tmp/p832_sorted\ncat /tmp/p832_sorted | uniq -c | awk '$1 >= 2 {print $2}' | sort -u"),
        script!(Poets, "8.3_3.sh", "compare_exodus_genesis", Books, "cat /books/exodus.txt | tr -sc '[A-Z][a-z]' '[\\012*]' | tr A-Z a-z | sort | uniq | sed 100q > /tmp/p833_e\ncat /books/genesis.txt | tr -sc '[A-Z][a-z]' '[\\012*]' | head -n 200 > /tmp/p833_g\ncat /tmp/p833_g | tr A-Z a-z | sort | comm -23 - /tmp/p833_e"),
        script!(Poets, "8_1.sh", "sort_words_by_n_syllables", Books, "cat $IN | sed 's;^;/books/;' | xargs cat | tr -sc '[A-Z][a-z]' '[\\012*]' | tr A-Z a-z | sort -u > /tmp/p81_w\ncat /tmp/p81_w | tr -sc '[AEIOUaeiou\\012]' ' ' | awk '{print NF}' > /tmp/p81_n\npaste /tmp/p81_n /tmp/p81_w | sort -k1n | awk '$1 == 2 {print $2, $0}'"),
        // ---- unix50 (34: ids 1-36 minus 22 and 27, as in the paper) -------
        script!(Unix50, "1.sh", "1.0: extract last name", Names, "cat $IN | cut -d ' ' -f 2"),
        script!(Unix50, "2.sh", "1.1: extract names and sort", Names, "cat $IN | cut -d ' ' -f 2 | sort"),
        script!(Unix50, "3.sh", "1.2: extract names and sort", Names, "cat $IN | head -n 2 | cut -d ' ' -f 2"),
        script!(Unix50, "4.sh", "1.3: sort top first names", Names, "cat $IN | cut -d ' ' -f 1 | sort | uniq -c | sort -rn"),
        script!(Unix50, "5.sh", "2.1: all Unix utilities", Credits, "cat $IN | cut -d ' ' -f 4 | tr -d ','"),
        script!(Unix50, "6.sh", "3.1: first letter of last names", Names, "cat $IN | cut -d ' ' -f 2 | cut -c 1-1 | sort | uniq -c"),
        script!(Unix50, "7.sh", "4.1: number of rounds", Chess, r"cat $IN | tr ' ' '\n' | grep '\.' | wc -l"),
        script!(Unix50, "8.sh", "4.2: pieces captured", Chess, r"cat $IN | tr ' ' '\n' | grep 'x' | grep '[KQRBN]' | wc -l"),
        script!(Unix50, "9.sh", "4.3: pieces captured with pawn", Chess, r"cat $IN | tr ' ' '\n' | grep 'x' | grep -v '[KQRBN]' | grep -v '\.' | cut -c 1-1 | wc -l"),
        script!(Unix50, "10.sh", "4.4: histogram by piece", Chess, r"cat $IN | tr ' ' '\n' | grep 'x' | grep '\.' | cut -d '.' -f 2 | grep '[KQRBN]' | cut -c 1-1 | sort | uniq -c | sort -nr"),
        script!(Unix50, "11.sh", "4.5: histogram by piece and pawn", Chess, r"cat $IN | tr ' ' '\n' | grep 'x' | grep '\.' | cut -d '.' -f 2 | tr '[a-z]' 'P' | cut -c 1-1 | sort | uniq -c | sort -nr"),
        script!(Unix50, "12.sh", "4.6: piece used most", Chess, r"cat $IN | tr ' ' '\n' | grep 'x' | cut -d '.' -f 2 | grep '[KQRBN]' | cut -c 1-1 | sort | uniq -c | sort -nr | head -n 3 | tail -n 1"),
        script!(Unix50, "13.sh", "5.1: extract hellow world", Quoted, r#"cat $IN | grep 'print' | cut -d "\"" -f 2 | cut -c 1-12"#),
        script!(Unix50, "14.sh", "6.1: order bodies", Awards, "cat $IN | awk '{print $2, $0}' | sort | cut -d ' ' -f 2"),
        script!(Unix50, "15.sh", "7.1: number of versions", Releases, "cat $IN | cut -f 1 | grep 'V' | wc -l"),
        script!(Unix50, "16.sh", "7.2: most frequent machine", Releases, "cat $IN | cut -f 2 | tr -s ' ' '\\n' | sort | uniq -c | sort -nr | head -n 1"),
        script!(Unix50, "17.sh", "7.3: decades unix released", Releases, "cat $IN | cut -f 4 | cut -c 3-3 | sort | uniq | sed 's/$/0s/'"),
        script!(Unix50, "18.sh", "8.1: count unix birth-year", Credits, "cat $IN | tr ' ' '\\n' | grep 1969 | wc -l"),
        script!(Unix50, "19.sh", "8.2: location office", Credits, "cat $IN | grep 'Bell' | awk 'length <= 45' | awk '{$1=$1};1'"),
        script!(Unix50, "20.sh", "8.3: four most involved", Credits, "cat $IN | grep '(' | cut -d '(' -f 2 | cut -d ')' -f 1 | head -n 4"),
        script!(Unix50, "21.sh", "8.4: longest words w/o hyphens", Gutenberg, "cat $IN | tr -c \"[a-z][A-Z]\" '\\n' | sort -u | awk 'length >= 16'"),
        script!(Unix50, "23.sh", "9.1: extract word PORT", Quoted, "cat $IN | grep '[A-Z]' | fmt -w1 | grep 'PORT' | tr '[a-z]' '\\n' | tr -d '\\n' | cut -c 1-4"),
        script!(Unix50, "24.sh", "9.2: extract word BELL", Quoted, "cat $IN | grep 'BELL' | cut -c 1-4"),
        script!(Unix50, "25.sh", "9.3: animal decorate", Quoted, "cat $IN | cut -c 1-2 | sort -u"),
        script!(Unix50, "26.sh", "9.4: four corners", Quoted, r#"cat $IN | grep '"' | cut -d '"' -f 2 | cut -c 1-1 | uniq | head -n 4"#),
        script!(Unix50, "28.sh", "9.6: follow directions", Quoted, "cat $IN | grep 'the' | tr -c '[A-Z]' '\\n' | sort | uniq -c | sort -rn | head -n 5 | awk '{print $2}' | sort | uniq | wc -l"),
        script!(Unix50, "29.sh", "9.7: four corners", Quoted, "cat $IN | tail +2 | rev | tail +3 | rev"),
        script!(Unix50, "30.sh", "9.8: TELE-communications", Quoted, "cat $IN | tr -c '[a-z][A-Z]' '\\n' | grep 'TELE' | sed 1d | tr A-Z a-z | sort | uniq -c | sort -rn | sed 100q"),
        script!(Unix50, "31.sh", "9.9", Quoted, "cat $IN | tr -c '[a-z][A-Z]' '\\n' | grep '[A-Z]' | tail +2 | cut -c 1-2 | sort | uniq -c | sort -rn | head -n 3 | tail -n 1"),
        script!(Unix50, "32.sh", "10.1: count recipients", Mail, "cat $IN | grep '@' | tr -s ' ' '\\n' | grep -c '@'"),
        script!(Unix50, "33.sh", "10.2: list recipients", Mail, "cat $IN | grep '@' | fmt -w1 | grep '@'"),
        script!(Unix50, "34.sh", "10.3: extract username", Mail, "cat $IN | grep '@' | fmt -w1 | grep '@' | cut -d '@' -f 1 | tr '[A-Z]' '[a-z]' | sort | uniq"),
        script!(Unix50, "35.sh", "11.1: year received medal", Awards, "cat $IN | grep 'UNIX' | cut -c 1-4"),
        script!(Unix50, "36.sh", "11.2: most repeated first name", Awards, "cat $IN | cut -d ' ' -f 3 | sort | uniq -c | sort -rn | head -n 1 | awk '{print $2}' | sort"),
    ];
    CORPUS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_unique_within_suite() {
        let c = corpus();
        let mut seen = std::collections::HashSet::new();
        for s in c {
            assert!(
                seen.insert((s.suite.dir(), s.id)),
                "duplicate {}/{}",
                s.suite.dir(),
                s.id
            );
        }
    }

    #[test]
    fn unix50_skips_22_and_27() {
        let ids: Vec<&str> = corpus()
            .iter()
            .filter(|s| s.suite == Suite::Unix50)
            .map(|s| s.id)
            .collect();
        assert!(!ids.contains(&"22.sh"));
        assert!(!ids.contains(&"27.sh"));
        assert!(ids.contains(&"36.sh"));
    }

    #[test]
    fn figure1_script_is_wf() {
        let wf = corpus()
            .iter()
            .find(|s| s.id == "wf.sh")
            .expect("wf.sh present");
        assert!(wf.text.contains("tr -cs A-Za-z"));
        assert!(wf.text.contains("sort -rn"));
    }

    #[test]
    fn every_script_reads_in_or_books() {
        for s in corpus() {
            assert!(
                s.text.contains("$IN") || s.text.contains("/books/"),
                "{} does not consume its input",
                s.id
            );
        }
    }
}
