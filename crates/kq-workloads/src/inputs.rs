//! Synthetic input generators for the benchmark corpus.
//!
//! The paper's datasets (COVID-19 bus telemetry, 1823 Project Gutenberg
//! books, the unix50 puzzle inputs, chess logs) are not redistributable
//! here, so each generator produces data with the same *structure* — the
//! properties the pipelines actually exercise: duplicate words and lines,
//! sorted runs, timestamped CSV rows, movetext with captures, delimiter-
//! separated records. All generators are deterministic in their seed.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Common English-like vocabulary with a Zipf-flavoured sampler: earlier
/// words are proportionally more frequent.
const VOCAB: &[&str] = &[
    "the",
    "of",
    "and",
    "to",
    "a",
    "in",
    "that",
    "it",
    "was",
    "he",
    "for",
    "on",
    "with",
    "as",
    "his",
    "they",
    "be",
    "at",
    "one",
    "have",
    "this",
    "from",
    "or",
    "had",
    "by",
    "word",
    "but",
    "what",
    "some",
    "we",
    "can",
    "out",
    "other",
    "were",
    "all",
    "there",
    "when",
    "up",
    "use",
    "your",
    "how",
    "said",
    "each",
    "she",
    "which",
    "their",
    "time",
    "will",
    "way",
    "about",
    "many",
    "then",
    "them",
    "write",
    "would",
    "like",
    "these",
    "her",
    "long",
    "make",
    "thing",
    "see",
    "him",
    "two",
    "has",
    "look",
    "more",
    "day",
    "could",
    "come",
    "did",
    "number",
    "sound",
    "most",
    "people",
    "water",
    "over",
    "land",
    "light",
    "moonlight",
    "darkness",
    "kingdom",
    "mountain",
    "river",
    "ancient",
    "whisper",
    "journey",
    "forgotten",
    "twilight",
    "uncharacteristically",
    "incomprehensibilities",
    "misunderstandings",
];

fn zipf_word<R: Rng + ?Sized>(rng: &mut R) -> &'static str {
    // P(rank k) ∝ 1/(k+1): sample via inverse-ish trick on a squared
    // uniform, cheap and close enough for workload purposes.
    let u: f64 = rng.gen::<f64>();
    let idx = ((u * u) * VOCAB.len() as f64) as usize;
    VOCAB[idx.min(VOCAB.len() - 1)]
}

/// Book-like text: sentences wrapped at ~60 columns, capitalized sentence
/// heads, punctuation, occasional blank lines and accented characters
/// (exercising `iconv`/`col`).
pub fn gutenberg_text(target_bytes: usize, seed: u64) -> String {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x6774);
    let mut out = String::with_capacity(target_bytes + 80);
    let mut col = 0usize;
    let mut sentence_pos = 0usize;
    while out.len() < target_bytes {
        // Canned verses keep the corpus's phrase-hunting pipelines
        // productive (poets 6_1 greps "the land of"/"And he said";
        // 6_7 counts lines with repeated "light").
        if col == 0 && rng.gen_bool(0.02) {
            out.push_str(match rng.gen_range(0..3) {
                0 => "And he said unto them in the land of the river\n",
                1 => "the light of the moonlight is the light of twilight\n",
                _ => "And he said the land of light was a land of light\n",
            });
            continue;
        }
        let mut word = zipf_word(&mut rng).to_owned();
        if sentence_pos == 0 {
            let mut c = word.chars();
            if let Some(f) = c.next() {
                word = f.to_uppercase().collect::<String>() + c.as_str();
            }
        }
        if rng.gen_bool(0.01) {
            word = word.replace('e', "é");
        }
        sentence_pos += 1;
        if col + word.len() + 1 > 60 {
            out.push('\n');
            col = 0;
            if rng.gen_bool(0.03) {
                out.push('\n');
            }
        } else if col > 0 {
            out.push(' ');
            col += 1;
        }
        out.push_str(&word);
        col += word.len();
        if sentence_pos > 6 && rng.gen_bool(0.25) {
            out.push_str(if rng.gen_bool(0.8) { "." } else { "," });
            col += 1;
            if rng.gen_bool(0.8) {
                sentence_pos = 0;
            }
        }
    }
    out.push('\n');
    out
}

/// Mass-transit telemetry CSV: `timestamp,vehicle,line,delay` rows over a
/// year of simulated service (the analytics-mts schema).
pub fn mass_transit_csv(rows: usize, seed: u64) -> String {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x4d75);
    let mut out = String::with_capacity(rows * 40);
    for _ in 0..rows {
        let month = rng.gen_range(1..=12u32);
        let day = rng.gen_range(1..=28u32);
        let hour = rng.gen_range(5..=23u32);
        let minute = rng.gen_range(0..60u32);
        let vehicle = rng.gen_range(100..160u32);
        let line = rng.gen_range(1..25u32);
        let delay = rng.gen_range(0..900u32);
        out.push_str(&format!(
            "2020-{month:02}-{day:02}T{hour:02}:{minute:02}:00,veh{vehicle},line{line},{delay}\n"
        ));
    }
    out
}

/// Chess movetext lines for the unix50 4.x puzzles: numbered moves, piece
/// letters `KQRBN`, captures `x`, pawn moves in lowercase.
pub fn chess_games(games: usize, seed: u64) -> String {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xc4e5);
    let pieces = ['K', 'Q', 'R', 'B', 'N'];
    let files = ['a', 'b', 'c', 'd', 'e', 'f', 'g', 'h'];
    let mut out = String::new();
    for _ in 0..games {
        let n_moves = rng.gen_range(8..30);
        let mut line = String::new();
        for m in 1..=n_moves {
            if m > 1 {
                line.push(' ');
            }
            line.push_str(&format!("{m}."));
            for half in 0..2 {
                if half > 0 {
                    line.push(' ');
                }
                let capture = rng.gen_bool(0.25);
                let piece = rng.gen_bool(0.5);
                if piece {
                    line.push(pieces[rng.gen_range(0..pieces.len())]);
                }
                if capture {
                    if !piece {
                        line.push(files[rng.gen_range(0..files.len())]);
                    }
                    line.push('x');
                }
                line.push(files[rng.gen_range(0..files.len())]);
                line.push(char::from_digit(rng.gen_range(1..9), 10).unwrap());
            }
        }
        out.push_str(&line);
        out.push('\n');
    }
    out
}

/// `First Last` name rows (unix50 1.x).
pub fn names_list(rows: usize, seed: u64) -> String {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x9a3e);
    let first = [
        "Ken", "Dennis", "Brian", "Rob", "Doug", "Joe", "Steve", "Bjarne", "David", "Peter",
        "Brenda", "Lorinda",
    ];
    let last = [
        "Thompson",
        "Ritchie",
        "Kernighan",
        "Pike",
        "McIlroy",
        "Ossanna",
        "Johnson",
        "Cherry",
        "Baker",
        "Weinberger",
        "Aho",
        "Morris",
    ];
    let mut out = String::new();
    for _ in 0..rows {
        out.push_str(first[rng.gen_range(0..first.len())]);
        out.push(' ');
        out.push_str(last[rng.gen_range(0..last.len())]);
        out.push('\n');
    }
    out
}

/// Tab-separated release records for the unix50 7.x puzzles:
/// `version<TAB>machine list<TAB>site<TAB>year`.
pub fn releases_tsv(rows: usize, seed: u64) -> String {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x7e1e);
    let orgs = ["AT&T", "BSD", "AT&T Bell Labs", "MIT", "DEC"];
    let machines = ["PDP-7", "PDP-11", "VAX", "Interdata", "Honeywell"];
    let mut out = String::new();
    for i in 0..rows {
        let org = orgs[rng.gen_range(0..orgs.len())];
        let m1 = machines[rng.gen_range(0..machines.len())];
        let m2 = machines[rng.gen_range(0..machines.len())];
        let year = 1969 + (i as u32 % 25);
        out.push_str(&format!("V{}\t{m1} {m2} {m1}\t{org}\t{year}\n", i % 11));
    }
    out
}

/// Credit lines with parenthesized contributors (unix50 8.x).
pub fn credits_text(rows: usize, seed: u64) -> String {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x83c3);
    let people = ["ken", "dmr", "bwk", "rob", "doug", "srb", "lem"];
    let places = [
        "Bell Labs Murray Hill New Jersey",
        "Bell Labs Holmdel",
        "MIT Cambridge",
        "University of California Berkeley computing laboratory annex",
    ];
    let mut out = String::new();
    for i in 0..rows {
        if rng.gen_bool(0.6) {
            out.push_str(&format!(
                "{} wrote module {} ({})\n",
                people[rng.gen_range(0..people.len())],
                i,
                people[rng.gen_range(0..people.len())]
            ));
        } else {
            out.push_str(&format!(
                "in 1969 UNIX was born at {}\n",
                places[rng.gen_range(0..places.len())]
            ));
        }
    }
    out
}

/// Mixed prose with quoted strings and code (unix50 5.x/9.x).
pub fn quoted_text(rows: usize, seed: u64) -> String {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x95c1);
    let mut out = String::new();
    for i in 0..rows {
        match i % 5 {
            0 => out.push_str(&format!("printf(\"hello world {i}\");\n")),
            1 => out.push_str(&format!(
                "the PORTer carried TELEgrams to {} camp\n",
                zipf_word(&mut rng)
            )),
            2 => out.push_str(&format!(
                "\"{} {}\" said the {}\n",
                zipf_word(&mut rng),
                zipf_word(&mut rng),
                zipf_word(&mut rng)
            )),
            3 => out.push_str(&format!(
                "ELEPHANTs and BELLs ring {} times\n",
                rng.gen_range(1..9)
            )),
            _ => {
                for _ in 0..6 {
                    out.push_str(zipf_word(&mut rng));
                    out.push(' ');
                }
                out.push_str("end\n");
            }
        }
    }
    out
}

/// Email-ish message text (unix50 10.x).
pub fn mail_text(rows: usize, seed: u64) -> String {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x3a11);
    let users = ["ken", "dmr", "bwk", "rob", "doug"];
    let hosts = ["research.att.com", "bell-labs.com", "mit.edu"];
    let mut out = String::new();
    for i in 0..rows {
        if i % 3 == 0 {
            out.push_str(&format!(
                "To: {}@{} {}@{}\n",
                users[rng.gen_range(0..users.len())],
                hosts[rng.gen_range(0..hosts.len())],
                users[rng.gen_range(0..users.len())],
                hosts[rng.gen_range(0..hosts.len())],
            ));
        } else {
            for _ in 0..5 {
                out.push_str(zipf_word(&mut rng));
                out.push(' ');
            }
            out.push('\n');
        }
    }
    out
}

/// Nobel-style award rows (unix50 11.x).
pub fn awards_text(rows: usize, seed: u64) -> String {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x0b31);
    let names = [
        "Ken Thompson",
        "Dennis Ritchie",
        "Niklaus Wirth",
        "Donald Knuth",
        "Barbara Liskov",
    ];
    let mut out = String::new();
    for i in 0..rows {
        let year = 1966 + (i as u32 % 50);
        let name = names[rng.gen_range(0..names.len())];
        let what = if rng.gen_bool(0.3) {
            "UNIX"
        } else {
            "computing"
        };
        out.push_str(&format!("{year} medal to {name} for {what}\n"));
    }
    out
}

/// A sorted dictionary of most of the vocabulary (for `spell`'s
/// `comm -23`): every seventh word is withheld so the spell checker always
/// has something to report, like the typo-bearing originals.
pub fn dictionary() -> String {
    let mut words: Vec<&str> = VOCAB.to_vec();
    words.sort_unstable();
    words.dedup();
    let mut out = String::new();
    for (i, w) in words.iter().enumerate() {
        if i % 7 == 3 {
            continue;
        }
        out.push_str(w);
        out.push('\n');
    }
    out
}

/// A list of numbered book file names plus their generated contents
/// (the poets scripts' `sed "s;^;$DIR;" | xargs cat` prelude).
pub fn book_library(n_books: usize, bytes_per_book: usize, seed: u64) -> Vec<(String, String)> {
    (0..n_books)
        .map(|i| {
            // Every book opens with a verse so the phrase-hunting poets
            // pipelines stay productive even at test scales.
            let mut text = String::from(
                "And he said unto them in the land of the river
",
            );
            text.push_str(&gutenberg_text(bytes_per_book, seed.wrapping_add(i as u64)));
            (format!("pg{:04}.txt", 100 + i), text)
        })
        .collect()
}

/// A file tree for `shortest-scripts.sh`: paths plus (content, file-type)
/// pairs, roughly half of them shell scripts of varying length.
pub fn file_tree(n_files: usize, seed: u64) -> Vec<(String, String, String)> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xf17e);
    (0..n_files)
        .map(|i| {
            let path = format!("/usr/bin/tool{i:03}");
            if rng.gen_bool(0.5) {
                let lines = rng.gen_range(0..40);
                let mut content = String::from("#!/bin/sh\n");
                for l in 0..lines {
                    content.push_str(&format!("echo step {l}\n"));
                }
                (
                    path,
                    content,
                    "POSIX shell script, ASCII text executable".to_owned(),
                )
            } else {
                (
                    path,
                    "\u{7f}ELF\n".repeat(rng.gen_range(1..5)),
                    "ELF 64-bit LSB pie executable, x86-64".to_owned(),
                )
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gutenberg_is_deterministic_and_sized() {
        let a = gutenberg_text(5000, 1);
        let b = gutenberg_text(5000, 1);
        assert_eq!(a, b);
        assert!(a.len() >= 5000 && a.len() < 5200);
        assert!(a.ends_with('\n'));
        assert!(a.contains(' '));
    }

    #[test]
    fn gutenberg_differs_by_seed() {
        assert_ne!(gutenberg_text(2000, 1), gutenberg_text(2000, 2));
    }

    #[test]
    fn transit_rows_have_four_fields() {
        let csv = mass_transit_csv(100, 7);
        for line in csv.lines() {
            assert_eq!(line.split(',').count(), 4, "{line}");
            assert!(line.contains('T'));
        }
    }

    #[test]
    fn chess_lines_have_captures_and_pieces() {
        let text = chess_games(50, 3);
        assert!(text.contains('x'));
        assert!(text.contains('.'));
        assert!(text.chars().any(|c| "KQRBN".contains(c)));
    }

    #[test]
    fn names_have_two_fields() {
        for line in names_list(50, 1).lines() {
            assert_eq!(line.split(' ').count(), 2);
        }
    }

    #[test]
    fn releases_are_tab_separated() {
        for line in releases_tsv(20, 1).lines() {
            assert_eq!(line.split('\t').count(), 4);
        }
    }

    #[test]
    fn dictionary_is_sorted() {
        let d = dictionary();
        let lines: Vec<&str> = d.lines().collect();
        let mut sorted = lines.clone();
        sorted.sort_unstable();
        assert_eq!(lines, sorted);
    }

    #[test]
    fn library_and_tree_shapes() {
        let lib = book_library(3, 1000, 9);
        assert_eq!(lib.len(), 3);
        assert!(lib
            .iter()
            .all(|(name, text)| name.ends_with(".txt") && text.len() >= 1000));
        let tree = file_tree(20, 9);
        assert_eq!(tree.len(), 20);
        assert!(tree.iter().any(|(_, _, t)| t.contains("shell script")));
        assert!(tree.iter().any(|(_, _, t)| t.contains("ELF")));
    }

    #[test]
    fn mail_contains_recipients() {
        let m = mail_text(30, 2);
        assert!(m.contains('@'));
        assert!(m.contains("To: "));
    }
}
