//! Trace analysis: per-node busy time, the critical path, and the
//! end-of-run metrics block.
//!
//! # The critical path
//!
//! The dataflow executor records one span per node task and, as meta
//! records, the graph structure (one record per node, one per statement
//! dependency). [`analyze`] merges each node's spans into busy intervals
//! and walks **backward** from the globally latest span end: each step
//! claims the window from the current node's first activity to the point
//! where the previous step took over, splits it into busy time (the
//! node's merged intervals inside the window) and wait time (queue gate /
//! starve / scheduling gaps), then hands off to the node's predecessor —
//! node `ni - 1` within the statement, or (from a statement's `Split`)
//! the dependency statement whose work ends latest. The windows tile the
//! whole trace extent, so the path total equals the run's wall clock by
//! construction and the busy/wait split says *where* that wall clock
//! went — the input signal for the ROADMAP's adaptive-execution work.

use crate::record::{Kind, Record};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Aggregate activity of one dataflow node.
#[derive(Debug, Clone)]
pub struct NodeStat {
    /// Statement index.
    pub si: u64,
    /// Node index within the statement.
    pub ni: u64,
    /// Node kind (from the graph meta record's name).
    pub kind: String,
    /// Human label (the node's command chain).
    pub label: String,
    /// Number of task spans recorded at this node.
    pub tasks: usize,
    /// Self time: the union of the node's span intervals, ns.
    pub busy_ns: u64,
    /// Earliest span start, ns (0 when the node never ran).
    pub first_ns: u64,
    /// Latest span end, ns.
    pub last_ns: u64,
}

/// One step of the critical path (printed last-to-first reversed, i.e.
/// in execution order).
#[derive(Debug, Clone)]
pub struct PathStep {
    /// Statement index.
    pub si: u64,
    /// Node index.
    pub ni: u64,
    /// Node kind + label.
    pub label: String,
    /// The wall-clock window this step accounts for, ns.
    pub window_ns: u64,
    /// Busy time inside the window, ns.
    pub busy_ns: u64,
    /// Wait time inside the window (window − busy), ns.
    pub wait_ns: u64,
}

/// Everything [`analyze`] derives from a record set.
#[derive(Debug, Clone)]
pub struct Analysis {
    /// Total spans in the trace (all categories).
    pub span_count: usize,
    /// Trace extent: latest span end − earliest span start, ns.
    pub extent_ns: u64,
    /// Per-node stats, every graph node present (ran or not).
    pub nodes: Vec<NodeStat>,
    /// The critical path, in execution order.
    pub path: Vec<PathStep>,
    /// Sum of the path windows, ns. Tiles the extent when the trace has
    /// dataflow spans; 0 otherwise.
    pub path_total_ns: u64,
}

fn merge_intervals(intervals: &mut Vec<(u64, u64)>) {
    intervals.sort_unstable();
    let mut merged: Vec<(u64, u64)> = Vec::with_capacity(intervals.len());
    for &(s, e) in intervals.iter() {
        match merged.last_mut() {
            Some(last) if s <= last.1 => last.1 = last.1.max(e),
            _ => merged.push((s, e)),
        }
    }
    *intervals = merged;
}

fn busy_within(intervals: &[(u64, u64)], lo: u64, hi: u64) -> u64 {
    intervals
        .iter()
        .map(|&(s, e)| e.min(hi).saturating_sub(s.max(lo)))
        .sum()
}

/// Analyzes a record set (see the [module docs](self)).
pub fn analyze(records: &[Record]) -> Analysis {
    let spans: Vec<&Record> = records.iter().filter(|r| r.kind == Kind::Span).collect();
    let span_count = spans.len();
    let t_min = spans.iter().map(|r| r.t0).min().unwrap_or(0);
    let t_max = spans.iter().map(|r| r.t1).max().unwrap_or(0);
    let extent_ns = t_max.saturating_sub(t_min);

    // Graph structure from the meta records.
    let mut nodes: BTreeMap<(u64, u64), NodeStat> = BTreeMap::new();
    let mut deps: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
    for r in records {
        if r.kind != Kind::Meta || r.cat != "graph" {
            continue;
        }
        if r.name == "dep" {
            if let (Some(si), Some(dep)) = (r.si, r.seq) {
                deps.entry(si).or_default().push(dep);
            }
        } else if let (Some(si), Some(ni)) = (r.si, r.ni) {
            nodes.insert(
                (si, ni),
                NodeStat {
                    si,
                    ni,
                    kind: r.name.clone(),
                    label: r.label.clone(),
                    tasks: 0,
                    busy_ns: 0,
                    first_ns: 0,
                    last_ns: 0,
                },
            );
        }
    }

    // Node busy intervals from the dataflow task spans.
    let mut intervals: BTreeMap<(u64, u64), Vec<(u64, u64)>> = BTreeMap::new();
    for r in &spans {
        if r.cat != "dataflow" {
            continue;
        }
        if let (Some(si), Some(ni)) = (r.si, r.ni) {
            intervals.entry((si, ni)).or_default().push((r.t0, r.t1));
            if let Some(stat) = nodes.get_mut(&(si, ni)) {
                stat.tasks += 1;
            }
        }
    }
    for (key, ivs) in &mut intervals {
        merge_intervals(ivs);
        if let Some(stat) = nodes.get_mut(key) {
            stat.busy_ns = ivs.iter().map(|(s, e)| e - s).sum();
            stat.first_ns = ivs.first().map_or(0, |iv| iv.0);
            stat.last_ns = ivs.last().map_or(0, |iv| iv.1);
        }
    }

    // Backward critical-path walk.
    let mut path: Vec<PathStep> = Vec::new();
    let mut cursor = nodes
        .values()
        .filter(|n| n.tasks > 0)
        .max_by_key(|n| n.last_ns)
        .map(|n| (n.si, n.ni));
    let mut end = t_max;
    let mut steps_left = nodes.len() + 1;
    while let Some(key) = cursor {
        if steps_left == 0 {
            break;
        }
        steps_left -= 1;
        let stat = &nodes[&key];
        // The predecessor: the previous node in-statement, or (from the
        // statement's first node) the dependency statement that finished
        // latest. Only predecessors that ran can hand work over.
        let pred = if key.1 > 0 {
            nodes
                .get(&(key.0, key.1 - 1))
                .filter(|n| n.tasks > 0)
                .map(|n| (n.si, n.ni))
        } else {
            deps.get(&key.0)
                .into_iter()
                .flatten()
                .filter_map(|dep| {
                    nodes
                        .values()
                        .filter(|n| n.si == *dep && n.tasks > 0)
                        .max_by_key(|n| n.last_ns)
                })
                .max_by_key(|n| n.last_ns)
                .map(|n| (n.si, n.ni))
        };
        // This step claims [its first activity, the previous claim).
        // With no predecessor it also absorbs the leading gap back to
        // the trace start, so the windows tile the whole extent.
        let mut lo = stat.first_ns.min(end);
        if pred.is_none() {
            lo = t_min;
        }
        let ivs = intervals.get(&key).map_or(&[][..], Vec::as_slice);
        let busy = busy_within(ivs, lo, end);
        let window = end - lo;
        path.push(PathStep {
            si: key.0,
            ni: key.1,
            label: format!("{} {}", stat.kind, stat.label)
                .trim_end()
                .to_owned(),
            window_ns: window,
            busy_ns: busy,
            wait_ns: window - busy,
        });
        end = lo;
        cursor = pred;
        if end == t_min && pred.is_none() {
            break;
        }
    }
    path.reverse();
    let path_total_ns = path.iter().map(|s| s.window_ns).sum();

    Analysis {
        span_count,
        extent_ns,
        nodes: nodes.into_values().collect(),
        path,
        path_total_ns,
    }
}

fn ms(ns: u64) -> f64 {
    ns as f64 / 1e6
}

/// Renders the human report: extent, critical path, top-`top` busy nodes.
pub fn render_report(a: &Analysis, top: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "trace: {} span(s), extent {:.1} ms",
        a.span_count,
        ms(a.extent_ns)
    );
    if a.path.is_empty() {
        out.push_str("critical path: no dataflow node spans in this trace\n");
    } else {
        let pct = if a.extent_ns > 0 {
            100.0 * a.path_total_ns as f64 / a.extent_ns as f64
        } else {
            100.0
        };
        let _ = writeln!(
            out,
            "critical path: total {:.1} ms ({pct:.1}% of trace extent, {} step(s))",
            ms(a.path_total_ns),
            a.path.len()
        );
        for step in &a.path {
            let _ = writeln!(
                out,
                "  s{} n{} {:<40} window {:>9.1} ms  busy {:>9.1} ms  wait {:>9.1} ms",
                step.si + 1,
                step.ni,
                step.label,
                ms(step.window_ns),
                ms(step.busy_ns),
                ms(step.wait_ns)
            );
        }
    }
    let mut busiest: Vec<&NodeStat> = a.nodes.iter().filter(|n| n.tasks > 0).collect();
    busiest.sort_by_key(|n| std::cmp::Reverse(n.busy_ns));
    if !busiest.is_empty() {
        let _ = writeln!(out, "top busy nodes:");
        for n in busiest.iter().take(top) {
            let pct = if a.extent_ns > 0 {
                100.0 * n.busy_ns as f64 / a.extent_ns as f64
            } else {
                0.0
            };
            let _ = writeln!(
                out,
                "  s{} n{} {:<40} busy {:>9.1} ms ({pct:>5.1}%)  {} task(s)",
                n.si + 1,
                n.ni,
                format!("{} {}", n.kind, n.label).trim_end(),
                ms(n.busy_ns),
                n.tasks
            );
        }
    }
    out
}

/// Renders the `--metrics` block: span totals per category/name, then
/// counter sums — one line per key, stable order.
pub fn render_metrics(records: &[Record]) -> Vec<String> {
    let mut span_agg: BTreeMap<(String, String), (usize, u64)> = BTreeMap::new();
    let mut counter_agg: BTreeMap<(String, String), (usize, f64)> = BTreeMap::new();
    for r in records {
        match r.kind {
            Kind::Span => {
                let e = span_agg.entry((r.cat.clone(), r.name.clone())).or_default();
                e.0 += 1;
                e.1 += r.t1 - r.t0;
            }
            Kind::Counter => {
                let e = counter_agg
                    .entry((r.cat.clone(), r.name.clone()))
                    .or_default();
                e.0 += 1;
                e.1 += r.v.unwrap_or(0.0);
            }
            _ => {}
        }
    }
    let mut lines = Vec::new();
    for ((cat, name), (count, total_ns)) in &span_agg {
        lines.push(format!(
            "metrics: span {cat}/{name}: {count} span(s), {:.1} ms total",
            ms(*total_ns)
        ));
    }
    for ((cat, name), (count, total)) in &counter_agg {
        let rendered = if *total == total.trunc() {
            format!("{}", *total as i64)
        } else {
            format!("{total:.3}")
        };
        lines.push(format!(
            "metrics: counter {cat}/{name}: {rendered} over {count} sample(s)"
        ));
    }
    lines
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(si: u64, ni: u64, t0: u64, t1: u64) -> Record {
        Record {
            kind: Kind::Span,
            cat: "dataflow".into(),
            name: "map".into(),
            label: String::new(),
            si: Some(si),
            ni: Some(ni),
            seq: Some(0),
            t0,
            t1,
            tid: 0,
            v: None,
        }
    }

    fn node(si: u64, ni: u64, kind: &str) -> Record {
        Record {
            kind: Kind::Meta,
            cat: "graph".into(),
            name: kind.into(),
            label: format!("cmd-{si}-{ni}"),
            si: Some(si),
            ni: Some(ni),
            seq: None,
            t0: 0,
            t1: 0,
            tid: 0,
            v: None,
        }
    }

    fn dep(si: u64, on: u64) -> Record {
        Record {
            kind: Kind::Meta,
            cat: "graph".into(),
            name: "dep".into(),
            label: String::new(),
            si: Some(si),
            ni: None,
            seq: Some(on),
            t0: 0,
            t1: 0,
            tid: 0,
            v: None,
        }
    }

    #[test]
    fn path_tiles_the_extent_within_one_statement() {
        // Split [0,100), worker [50,400), fold [350,1000).
        let records = vec![
            node(0, 0, "split"),
            node(0, 1, "worker"),
            node(0, 2, "fold"),
            span(0, 0, 0, 100),
            span(0, 1, 50, 400),
            span(0, 2, 350, 1000),
        ];
        let a = analyze(&records);
        assert_eq!(a.extent_ns, 1000);
        assert_eq!(a.path_total_ns, a.extent_ns, "windows tile the extent");
        let order: Vec<(u64, u64)> = a.path.iter().map(|s| (s.si, s.ni)).collect();
        assert_eq!(order, vec![(0, 0), (0, 1), (0, 2)]);
        // The fold's step: window [350,1000) all busy.
        assert_eq!(a.path.last().unwrap().busy_ns, 650);
        assert_eq!(a.path.last().unwrap().wait_ns, 0);
    }

    #[test]
    fn path_crosses_statement_dependencies() {
        let records = vec![
            node(0, 0, "split"),
            node(0, 1, "fold"),
            node(1, 0, "split"),
            node(1, 1, "worker"),
            dep(1, 0),
            span(0, 0, 0, 100),
            span(0, 1, 100, 500),
            span(1, 0, 500, 600),
            span(1, 1, 600, 900),
        ];
        let a = analyze(&records);
        assert_eq!(a.path_total_ns, a.extent_ns);
        let order: Vec<(u64, u64)> = a.path.iter().map(|s| (s.si, s.ni)).collect();
        assert_eq!(order, vec![(0, 0), (0, 1), (1, 0), (1, 1)]);
    }

    #[test]
    fn wait_time_is_window_minus_busy() {
        // The worker idles [100,300) waiting on its queue.
        let records = vec![
            node(0, 0, "split"),
            node(0, 1, "worker"),
            span(0, 0, 0, 100),
            span(0, 1, 50, 100),
            span(0, 1, 300, 500),
        ];
        let a = analyze(&records);
        let worker = a.path.last().unwrap();
        assert_eq!(worker.window_ns, 450);
        assert_eq!(worker.busy_ns, 250);
        assert_eq!(worker.wait_ns, 200);
    }

    #[test]
    fn no_dataflow_spans_yields_empty_path() {
        let mut r = span(0, 0, 0, 10);
        r.cat = "plan".into();
        r.si = None;
        r.ni = None;
        let a = analyze(&[r]);
        assert!(a.path.is_empty());
        assert_eq!(a.path_total_ns, 0);
        let rendered = render_report(&a, 5);
        assert!(rendered.contains("critical path"), "{rendered}");
    }

    #[test]
    fn node_stats_merge_overlapping_spans() {
        let records = vec![
            node(0, 1, "worker"),
            span(0, 1, 0, 100),
            span(0, 1, 50, 150),
            span(0, 1, 200, 250),
        ];
        let a = analyze(&records);
        let stat = a.nodes.iter().find(|n| n.ni == 1).unwrap();
        assert_eq!(stat.busy_ns, 200, "overlap counted once");
        assert_eq!(stat.tasks, 3);
        let rendered = render_report(&a, 3);
        assert!(rendered.contains("top busy nodes"), "{rendered}");
        assert!(rendered.contains("worker cmd-0-1"), "{rendered}");
    }

    #[test]
    fn metrics_aggregate_spans_and_counters() {
        let mut c = span(0, 1, 0, 10);
        c.kind = Kind::Counter;
        c.name = "bytes_in".into();
        c.v = Some(1024.0);
        let records = vec![span(0, 1, 0, 1_000_000), span(0, 1, 0, 500_000), c];
        let lines = render_metrics(&records);
        let text = lines.join("\n");
        assert!(
            text.contains("span dataflow/map: 2 span(s), 1.5 ms"),
            "{text}"
        );
        assert!(
            text.contains("counter dataflow/bytes_in: 1024 over 1 sample(s)"),
            "{text}"
        );
    }
}
