//! The process-global recorder: TLS buffers, the sink, and the session.
//!
//! # Overhead model
//!
//! With no session active, [`enabled`] is one `Relaxed` atomic load and
//! every builder ([`span`], [`instant`], [`counter`], [`meta`]) returns an
//! inert `None` wrapper before touching the clock or allocating — the cost
//! of an instrumentation point is a branch. With a session active, a span
//! costs two `Instant::now()` reads plus a push onto the thread's own
//! buffer behind an uncontended per-thread mutex; the only locks shared
//! across threads (the sink and the buffer registry) are taken once per
//! thread lifetime and once per session boundary.
//!
//! # Why a buffer registry instead of TLS destructors
//!
//! The obvious design — flush each thread's buffer from its
//! `thread_local!` destructor — silently loses records: `thread::scope`
//! returns when every spawned closure has *returned*, which happens
//! before the OS thread runs its TLS destructors. A scoped pool worker
//! can therefore flush after the executor (and the session) has already
//! finished. Instead, every thread's buffer is an `Arc` registered in a
//! process-global registry the moment the thread first records, and
//! [`TraceSession::finish`] drains every registered buffer directly —
//! live threads included. The TLS destructor only moves leftovers to the
//! sink and deregisters; correctness never depends on when it runs.
//!
//! # Sessions
//!
//! Exactly one session records at a time: [`TraceSession::start`] holds a
//! process-global lock until `finish`, so concurrent tests (or a future
//! daemon's concurrent requests) serialize instead of interleaving their
//! records. Timestamps come from one process-wide monotonic epoch, so
//! they are comparable across threads within a session.

use crate::record::{Kind, Record};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::Instant;

static ENABLED: AtomicBool = AtomicBool::new(false);
static SINK: Mutex<Vec<Record>> = Mutex::new(Vec::new());
static REGISTRY: Mutex<Vec<Arc<Mutex<Vec<Record>>>>> = Mutex::new(Vec::new());
static SESSION: Mutex<()> = Mutex::new(());
static EPOCH: OnceLock<Instant> = OnceLock::new();
static NEXT_TID: AtomicU64 = AtomicU64::new(0);

/// True when a [`TraceSession`] is live. The one check every
/// instrumentation point pays when tracing is off.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Nanoseconds since the process trace epoch (first use).
fn now_ns() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

struct TlsBuf {
    tid: u64,
    buf: Arc<Mutex<Vec<Record>>>,
}

impl TlsBuf {
    fn new() -> TlsBuf {
        let buf = Arc::new(Mutex::new(Vec::new()));
        registry().push(Arc::clone(&buf));
        TlsBuf {
            tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
            buf,
        }
    }
}

impl Drop for TlsBuf {
    fn drop(&mut self) {
        // Lock order (everywhere): sink, then registry/buffer. Holding the
        // sink throughout serializes this against a concurrent `finish`,
        // so leftovers either land in the sink before `finish` takes it
        // or are drained from the buffer by `finish` itself.
        let mut sink = sink();
        let records = std::mem::take(&mut *lock(&self.buf));
        sink.extend(records);
        registry().retain(|b| !Arc::ptr_eq(b, &self.buf));
    }
}

thread_local! {
    static TLS: TlsBuf = TlsBuf::new();
}

fn sink() -> MutexGuard<'static, Vec<Record>> {
    SINK.lock().unwrap_or_else(|e| e.into_inner())
}

fn registry() -> MutexGuard<'static, Vec<Arc<Mutex<Vec<Record>>>>> {
    REGISTRY.lock().unwrap_or_else(|e| e.into_inner())
}

fn lock(buf: &Mutex<Vec<Record>>) -> MutexGuard<'_, Vec<Record>> {
    buf.lock().unwrap_or_else(|e| e.into_inner())
}

fn push(record: Record) {
    // `try_with` so a record emitted during thread teardown (after the TLS
    // destructor ran) is dropped instead of panicking.
    let _ = TLS.try_with(|t| lock(&t.buf).push(record));
}

fn current_tid() -> u64 {
    TLS.try_with(|t| t.tid).unwrap_or(u64::MAX)
}

/// One recording window. Holds the process-global session lock from
/// [`start`](TraceSession::start) to [`finish`](TraceSession::finish);
/// records emitted anywhere in the process in between are collected.
pub struct TraceSession {
    guard: Option<MutexGuard<'static, ()>>,
}

impl TraceSession {
    /// Begins recording, waiting for any other live session to finish.
    pub fn start() -> TraceSession {
        let guard = SESSION.lock().unwrap_or_else(|e| e.into_inner());
        // Discard anything a previous session's stragglers left behind —
        // both the sink and every live thread's buffer.
        {
            let mut sink = sink();
            sink.clear();
            for buf in registry().iter() {
                lock(buf).clear();
            }
        }
        ENABLED.store(true, Ordering::SeqCst);
        TraceSession { guard: Some(guard) }
    }

    /// Stops recording and returns every record, ordered by start time.
    ///
    /// Drains every registered thread buffer directly — including threads
    /// whose TLS destructors have not run yet (`thread::scope` returns
    /// before they do), so scoped pool workers never lose records.
    pub fn finish(mut self) -> Vec<Record> {
        ENABLED.store(false, Ordering::SeqCst);
        let mut records = {
            let mut sink = sink();
            for buf in registry().iter() {
                let drained = std::mem::take(&mut *lock(buf));
                sink.extend(drained);
            }
            std::mem::take(&mut *sink)
        };
        records.sort_by_key(|r| (r.t0, r.t1, r.tid));
        drop(self.guard.take());
        records
    }
}

impl Drop for TraceSession {
    fn drop(&mut self) {
        if self.guard.take().is_some() {
            // Abandoned without `finish` (error path): stop recording.
            ENABLED.store(false, Ordering::SeqCst);
        }
    }
}

struct SpanInner {
    cat: &'static str,
    name: &'static str,
    label: String,
    si: Option<u64>,
    ni: Option<u64>,
    seq: Option<u64>,
    v: Option<f64>,
    t0: u64,
}

/// An in-flight span; records its interval when dropped (or via
/// [`Span::done`]). Inert — no clock, no allocation — when tracing is off.
pub struct Span(Option<SpanInner>);

/// Opens a span now. The builder methods are no-ops on an inert span, so
/// callers pay nothing for labels when tracing is off.
#[inline]
pub fn span(cat: &'static str, name: &'static str) -> Span {
    if !enabled() {
        return Span(None);
    }
    Span(Some(SpanInner {
        cat,
        name,
        label: String::new(),
        si: None,
        ni: None,
        seq: None,
        v: None,
        t0: now_ns(),
    }))
}

impl Span {
    /// Attaches a human-readable label.
    pub fn label(mut self, label: impl AsRef<str>) -> Span {
        if let Some(inner) = &mut self.0 {
            inner.label = label.as_ref().to_owned();
        }
        self
    }

    /// Attaches the statement index.
    pub fn si(mut self, si: usize) -> Span {
        if let Some(inner) = &mut self.0 {
            inner.si = Some(si as u64);
        }
        self
    }

    /// Attaches the node / stage / segment index.
    pub fn ni(mut self, ni: usize) -> Span {
        if let Some(inner) = &mut self.0 {
            inner.ni = Some(ni as u64);
        }
        self
    }

    /// Attaches the chunk / piece / round ordinal.
    pub fn seq(mut self, seq: usize) -> Span {
        if let Some(inner) = &mut self.0 {
            inner.seq = Some(seq as u64);
        }
        self
    }

    /// Attaches an auxiliary quantity (bytes, chunks, ...).
    pub fn v(mut self, v: f64) -> Span {
        if let Some(inner) = &mut self.0 {
            inner.v = Some(v);
        }
        self
    }

    /// Ends the span now (equivalent to dropping it).
    pub fn done(self) {}
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(inner) = self.0.take() {
            push(Record {
                kind: Kind::Span,
                cat: inner.cat.to_owned(),
                name: inner.name.to_owned(),
                label: inner.label,
                si: inner.si,
                ni: inner.ni,
                seq: inner.seq,
                t0: inner.t0,
                t1: now_ns(),
                tid: current_tid(),
                v: inner.v,
            });
        }
    }
}

/// A point record under construction ([`instant`], [`counter`], or
/// [`meta`]); emitted when dropped. Inert when tracing is off.
pub struct Event(Option<Record>);

fn event(kind: Kind, cat: &'static str, name: &'static str, v: Option<f64>) -> Event {
    if !enabled() {
        return Event(None);
    }
    let now = now_ns();
    Event(Some(Record {
        kind,
        cat: cat.to_owned(),
        name: name.to_owned(),
        label: String::new(),
        si: None,
        ni: None,
        seq: None,
        t0: now,
        t1: now,
        tid: current_tid(),
        v,
    }))
}

/// A point event at the current time.
#[inline]
pub fn instant(cat: &'static str, name: &'static str) -> Event {
    event(Kind::Instant, cat, name, None)
}

/// A named quantity observed at the current time.
#[inline]
pub fn counter(cat: &'static str, name: &'static str, v: f64) -> Event {
    event(Kind::Counter, cat, name, Some(v))
}

/// A structural record (graph node, dependency edge, run config).
#[inline]
pub fn meta(cat: &'static str, name: &'static str) -> Event {
    event(Kind::Meta, cat, name, None)
}

impl Event {
    /// Attaches a human-readable label.
    pub fn label(mut self, label: impl AsRef<str>) -> Event {
        if let Some(r) = &mut self.0 {
            r.label = label.as_ref().to_owned();
        }
        self
    }

    /// Attaches the statement index.
    pub fn si(mut self, si: usize) -> Event {
        if let Some(r) = &mut self.0 {
            r.si = Some(si as u64);
        }
        self
    }

    /// Attaches the node / stage / segment index.
    pub fn ni(mut self, ni: usize) -> Event {
        if let Some(r) = &mut self.0 {
            r.ni = Some(ni as u64);
        }
        self
    }

    /// Attaches the chunk / piece / round ordinal.
    pub fn seq(mut self, seq: usize) -> Event {
        if let Some(r) = &mut self.0 {
            r.seq = Some(seq as u64);
        }
        self
    }

    /// Attaches (or overrides) the value.
    pub fn v(mut self, v: f64) -> Event {
        if let Some(r) = &mut self.0 {
            r.v = Some(v);
        }
        self
    }

    /// Emits the record now (equivalent to dropping it).
    pub fn emit(self) {}
}

impl Drop for Event {
    fn drop(&mut self) {
        if let Some(record) = self.0.take() {
            push(record);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_emits_nothing() {
        // No session: builders are inert.
        span("t", "noop").label("x").si(1).done();
        counter("t", "noop", 1.0).emit();
        let session = TraceSession::start();
        let records = session.finish();
        assert!(records.is_empty(), "{records:?}");
    }

    #[test]
    fn session_collects_spans_across_scoped_threads() {
        let session = TraceSession::start();
        span("t", "main").label("m").done();
        std::thread::scope(|scope| {
            for i in 0..4 {
                scope.spawn(move || {
                    span("t", "worker").seq(i).done();
                });
            }
        });
        let records = session.finish();
        assert_eq!(records.len(), 5);
        assert_eq!(records.iter().filter(|r| r.name == "worker").count(), 4);
        let tids: std::collections::HashSet<u64> = records
            .iter()
            .filter(|r| r.name == "worker")
            .map(|r| r.tid)
            .collect();
        assert_eq!(tids.len(), 4, "one tid per worker thread");
        for r in &records {
            assert!(r.t1 >= r.t0);
        }
    }

    #[test]
    fn sessions_serialize_and_do_not_leak_records() {
        let first = TraceSession::start();
        span("t", "first").done();
        let got = first.finish();
        assert_eq!(got.len(), 1);
        let second = TraceSession::start();
        span("t", "second").done();
        let got = second.finish();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].name, "second");
    }

    #[test]
    fn records_sort_by_start_time() {
        let session = TraceSession::start();
        let outer = span("t", "outer");
        span("t", "inner").done();
        outer.done();
        instant("t", "after").emit();
        let records = session.finish();
        let names: Vec<&str> = records.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(names, vec!["outer", "inner", "after"]);
    }

    #[test]
    fn abandoned_session_stops_recording() {
        let session = TraceSession::start();
        drop(session);
        assert!(!enabled());
        let session = TraceSession::start();
        assert!(enabled());
        assert!(session.finish().is_empty());
    }
}
