//! The workspace's tracing and metrics plane.
//!
//! Every layer of the pipeline — planning, synthesis, ingest, chunking,
//! folds, and all five executors — records its work through this crate as
//! **spans** (an interval of work), **instants** (a point event),
//! **counters** (a named quantity), and **meta** records (structure, e.g.
//! the dataflow graph's nodes and statement dependencies). The recorder is
//! feature-off-by-default and lock-cheap:
//!
//! * **Disabled** (no [`TraceSession`] active), every instrumentation
//!   point is a single relaxed atomic load and an early return — no
//!   allocation, no clock read, no lock. The executors stay within noise
//!   of their un-instrumented selves (`benches/trace_overhead.rs` guards
//!   this).
//! * **Enabled**, records go to a thread-local buffer; the process-global
//!   sink is only locked when a thread exits (scoped pool workers flush
//!   through their TLS destructor) or the session finishes. The hot path
//!   is two monotonic clock reads and a `Vec` push per span.
//!
//! # Span taxonomy
//!
//! Identity is `(kind, cat, name, si, ni, seq)` plus a human `label`;
//! `si`/`ni` are statement and dataflow-node indices, `seq` a chunk or
//! round ordinal. Because chunk boundaries are deterministic for a given
//! input and `--chunk-kb`, the span identity *multiset* is stable across
//! runs and worker counts (absent early-exit cancellation, which consumes
//! a timing-dependent chunk count) — only timestamps and thread ids vary.
//! The categories in use:
//!
//! | cat | names | layer |
//! |---|---|---|
//! | `plan` | `plan` | `Planner::plan` wall time |
//! | `synth` | `synthesize`, `round`, `rounds`, `observations` | per-command synthesis |
//! | `cache` | `validate` span; `hit`, `validated`, `rejected`, `miss` instants | combiner-cache lookups |
//! | `ingest` | `read` (label `map`/`heap`), `release` | file → data-plane ingest, page release |
//! | `chunk` | `cut` | incremental re-chunking |
//! | `spill` | `run-out`, `map-back` | bounded-memory fold spills |
//! | `serial` | `stage` | the serial oracle |
//! | `static` | `stage`, `piece`, `combine` | the static executor |
//! | `chunked` | `stage`, `map`, `combine` | the chunked executor |
//! | `streaming` | `statement`, `send`, `map`, `bounded-run`, `seq-run`, `fold-push`, `fold-finish`, `early-exit` | the streaming executor |
//! | `dataflow` | `run`, `gather-input`, `split`, `map`, `fold-push`, `fold-finish`, `gather`, `gather-run`, `emit`, `early-exit`, `cancel`, `stmt-finish`, per-node counters | the shared-pool executor, one span per node task |
//! | `graph` | node-kind metas (`split`, `worker`, `fold`, `gather`, `bounded`), `dep` | dataflow graph structure |
//!
//! # Exports
//!
//! A finished session yields plain [`Record`]s. [`write_jsonl`] writes one
//! flat JSON object per line (parsed back by [`parse_jsonl`] — the schema
//! round-trip is tested field-for-field), and [`write_chrome_trace`]
//! derives a Chrome `trace_event` array loadable in Perfetto or
//! `chrome://tracing`: one track per worker thread plus one track per
//! dataflow node. [`report::analyze`] computes per-node busy time and the
//! critical path through the dataflow graph (see [`report`]).

#![deny(unsafe_code)]
#![warn(missing_docs)]

mod chrome;
mod record;
mod recorder;
pub mod report;

pub use chrome::write_chrome_trace;
pub use record::{parse_jsonl, write_jsonl, Kind, Record};
pub use recorder::{counter, enabled, instant, meta, span, Event, Span, TraceSession};
