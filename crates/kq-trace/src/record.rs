//! The flat record model and its JSON-lines codec.
//!
//! A [`Record`] is deliberately flat — every field is a scalar — so the
//! hand-rolled writer and parser stay trivial and every consumer (the
//! Chrome exporter, the critical-path report, external tooling) reads the
//! same schema. Required fields on every line: `k`, `cat`, `name`, `t0`,
//! `t1`, `tid`; `label`, `si`, `ni`, `seq`, and `v` appear when set.

use std::fmt::Write as _;
use std::io::{self, Write};

/// What a [`Record`] describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Kind {
    /// An interval of work: `t0..t1`.
    Span,
    /// A point event (`t0 == t1`).
    Instant,
    /// A named quantity in `v` observed at `t0`.
    Counter,
    /// Structure, not time: graph nodes, dependencies, run config.
    Meta,
}

impl Kind {
    /// The one-word wire name (the JSON `k` field).
    pub fn as_str(self) -> &'static str {
        match self {
            Kind::Span => "span",
            Kind::Instant => "instant",
            Kind::Counter => "counter",
            Kind::Meta => "meta",
        }
    }

    fn from_str(s: &str) -> Option<Kind> {
        match s {
            "span" => Some(Kind::Span),
            "instant" => Some(Kind::Instant),
            "counter" => Some(Kind::Counter),
            "meta" => Some(Kind::Meta),
            _ => None,
        }
    }
}

/// One trace record. Timestamps are nanoseconds on the process-local
/// monotonic clock (comparable within a file, meaningless across files).
#[derive(Debug, Clone, PartialEq)]
pub struct Record {
    /// Span, instant, counter, or meta.
    pub kind: Kind,
    /// Category: the subsystem that recorded it (see the crate docs).
    pub cat: String,
    /// Name within the category.
    pub name: String,
    /// Human-readable label (a command chain, a path); may be empty.
    pub label: String,
    /// Statement index, when the record belongs to one.
    pub si: Option<u64>,
    /// Dataflow-node (or stage/segment) index within the statement.
    pub ni: Option<u64>,
    /// Chunk / piece / round ordinal.
    pub seq: Option<u64>,
    /// Start time, ns.
    pub t0: u64,
    /// End time, ns (`== t0` for everything but spans).
    pub t1: u64,
    /// Dense per-process thread ordinal of the recording thread.
    pub tid: u64,
    /// Counter value or auxiliary quantity (bytes, chunks, ...).
    pub v: Option<f64>,
}

impl Record {
    /// The stable identity tuple the determinism contract is stated over:
    /// everything except timestamps, thread id, and counter value.
    pub fn identity(
        &self,
    ) -> (
        Kind,
        &str,
        &str,
        &str,
        Option<u64>,
        Option<u64>,
        Option<u64>,
    ) {
        (
            self.kind,
            &self.cat,
            &self.name,
            &self.label,
            self.si,
            self.ni,
            self.seq,
        )
    }

    /// Serializes the record as one JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(96);
        s.push_str("{\"k\":\"");
        s.push_str(self.kind.as_str());
        s.push_str("\",\"cat\":\"");
        escape_into(&mut s, &self.cat);
        s.push_str("\",\"name\":\"");
        escape_into(&mut s, &self.name);
        s.push('"');
        if !self.label.is_empty() {
            s.push_str(",\"label\":\"");
            escape_into(&mut s, &self.label);
            s.push('"');
        }
        for (key, val) in [("si", self.si), ("ni", self.ni), ("seq", self.seq)] {
            if let Some(v) = val {
                let _ = write!(s, ",\"{key}\":{v}");
            }
        }
        let _ = write!(
            s,
            ",\"t0\":{},\"t1\":{},\"tid\":{}",
            self.t0, self.t1, self.tid
        );
        if let Some(v) = self.v {
            if v == v.trunc() && v.abs() < 9e15 {
                let _ = write!(s, ",\"v\":{}", v as i64);
            } else {
                let _ = write!(s, ",\"v\":{v}");
            }
        }
        s.push('}');
        s
    }

    /// Parses one JSON-lines object back into a record, validating that
    /// every required field is present and well-typed.
    pub fn from_json(line: &str) -> Result<Record, String> {
        let fields = parse_object(line)?;
        let get_str = |key: &str| -> Result<String, String> {
            match fields.iter().find(|(k, _)| k == key) {
                Some((_, JVal::Str(s))) => Ok(s.clone()),
                Some(_) => Err(format!("field {key:?} is not a string")),
                None => Err(format!("missing required field {key:?}")),
            }
        };
        let get_num = |key: &str| -> Result<Option<f64>, String> {
            match fields.iter().find(|(k, _)| k == key) {
                Some((_, JVal::Num(n))) => Ok(Some(*n)),
                Some(_) => Err(format!("field {key:?} is not a number")),
                None => Ok(None),
            }
        };
        let require = |key: &str| -> Result<u64, String> {
            get_num(key)?
                .map(|n| n as u64)
                .ok_or_else(|| format!("missing required field {key:?}"))
        };
        let kind = Kind::from_str(&get_str("k")?).ok_or_else(|| "unknown kind".to_owned())?;
        let label = match fields.iter().find(|(k, _)| k == "label") {
            Some((_, JVal::Str(s))) => s.clone(),
            Some(_) => return Err("field \"label\" is not a string".into()),
            None => String::new(),
        };
        let record = Record {
            kind,
            cat: get_str("cat")?,
            name: get_str("name")?,
            label,
            si: get_num("si")?.map(|n| n as u64),
            ni: get_num("ni")?.map(|n| n as u64),
            seq: get_num("seq")?.map(|n| n as u64),
            t0: require("t0")?,
            t1: require("t1")?,
            tid: require("tid")?,
            v: get_num("v")?,
        };
        if record.t1 < record.t0 {
            return Err(format!("t1 {} precedes t0 {}", record.t1, record.t0));
        }
        Ok(record)
    }
}

/// Writes records as JSON lines, one object per record.
pub fn write_jsonl(records: &[Record], out: &mut impl Write) -> io::Result<()> {
    for r in records {
        out.write_all(r.to_json().as_bytes())?;
        out.write_all(b"\n")?;
    }
    Ok(())
}

/// Parses a whole JSON-lines file; blank lines are skipped, any malformed
/// line fails with its line number.
pub fn parse_jsonl(text: &str) -> Result<Vec<Record>, String> {
    let mut records = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let r = Record::from_json(line).map_err(|e| format!("line {}: {e}", idx + 1))?;
        records.push(r);
    }
    Ok(records)
}

/// Appends `raw` to `out` with JSON string escaping (quotes, backslashes,
/// control characters; non-ASCII passes through as UTF-8).
pub(crate) fn escape_into(out: &mut String, raw: &str) {
    for c in raw.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

enum JVal {
    Str(String),
    Num(f64),
}

/// A minimal parser for the flat objects this crate writes: string keys,
/// string or number values, no nesting.
fn parse_object(line: &str) -> Result<Vec<(String, JVal)>, String> {
    let mut chars = line.trim().char_indices().peekable();
    let text = line.trim();
    let mut fields = Vec::new();
    match chars.next() {
        Some((_, '{')) => {}
        _ => return Err("expected '{'".into()),
    }
    loop {
        skip_ws(&mut chars);
        match chars.peek() {
            Some((_, '}')) => {
                chars.next();
                break;
            }
            Some((_, '"')) => {}
            _ => return Err("expected a key string".into()),
        }
        let key = parse_string(&mut chars)?;
        skip_ws(&mut chars);
        match chars.next() {
            Some((_, ':')) => {}
            _ => return Err(format!("expected ':' after key {key:?}")),
        }
        skip_ws(&mut chars);
        let value = match chars.peek() {
            Some((_, '"')) => JVal::Str(parse_string(&mut chars)?),
            Some((start, c)) if c.is_ascii_digit() || *c == '-' => {
                let start = *start;
                let mut end = text.len();
                while let Some((i, c)) = chars.peek() {
                    if c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E') {
                        chars.next();
                    } else {
                        end = *i;
                        break;
                    }
                }
                let n: f64 = text[start..end]
                    .parse()
                    .map_err(|_| format!("bad number {:?}", &text[start..end]))?;
                JVal::Num(n)
            }
            _ => return Err(format!("unsupported value for key {key:?}")),
        };
        fields.push((key, value));
        skip_ws(&mut chars);
        match chars.next() {
            Some((_, ',')) => continue,
            Some((_, '}')) => break,
            _ => return Err("expected ',' or '}'".into()),
        }
    }
    Ok(fields)
}

fn skip_ws(chars: &mut std::iter::Peekable<std::str::CharIndices<'_>>) {
    while matches!(chars.peek(), Some((_, c)) if c.is_whitespace()) {
        chars.next();
    }
}

fn parse_string(
    chars: &mut std::iter::Peekable<std::str::CharIndices<'_>>,
) -> Result<String, String> {
    match chars.next() {
        Some((_, '"')) => {}
        _ => return Err("expected '\"'".into()),
    }
    let mut out = String::new();
    while let Some((_, c)) = chars.next() {
        match c {
            '"' => return Ok(out),
            '\\' => match chars.next() {
                Some((_, '"')) => out.push('"'),
                Some((_, '\\')) => out.push('\\'),
                Some((_, '/')) => out.push('/'),
                Some((_, 'n')) => out.push('\n'),
                Some((_, 'r')) => out.push('\r'),
                Some((_, 't')) => out.push('\t'),
                Some((_, 'u')) => {
                    let mut code = 0u32;
                    for _ in 0..4 {
                        let (_, h) = chars.next().ok_or("truncated \\u escape")?;
                        code = code * 16 + h.to_digit(16).ok_or("bad \\u escape")?;
                    }
                    out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                }
                other => return Err(format!("bad escape {other:?}")),
            },
            c => out.push(c),
        }
    }
    Err("unterminated string".into())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Record {
        Record {
            kind: Kind::Span,
            cat: "dataflow".into(),
            name: "map".into(),
            label: "grep \"a\\b\" | tr\tA-Z a-z".into(),
            si: Some(1),
            ni: Some(2),
            seq: Some(37),
            t0: 1000,
            t1: 2500,
            tid: 3,
            v: Some(64.0),
        }
    }

    #[test]
    fn round_trips_every_field() {
        let r = sample();
        assert_eq!(Record::from_json(&r.to_json()).unwrap(), r);
        let bare = Record {
            label: String::new(),
            si: None,
            ni: None,
            seq: None,
            v: None,
            ..sample()
        };
        assert_eq!(Record::from_json(&bare.to_json()).unwrap(), bare);
    }

    #[test]
    fn round_trips_fractional_and_negative_values() {
        let mut r = sample();
        r.v = Some(0.375);
        assert_eq!(Record::from_json(&r.to_json()).unwrap().v, Some(0.375));
        r.v = Some(-12.0);
        assert_eq!(Record::from_json(&r.to_json()).unwrap().v, Some(-12.0));
    }

    #[test]
    fn jsonl_round_trip_and_blank_lines() {
        let records = vec![sample(), {
            let mut r = sample();
            r.kind = Kind::Counter;
            r.t1 = r.t0;
            r
        }];
        let mut buf = Vec::new();
        write_jsonl(&records, &mut buf).unwrap();
        let text = format!("\n{}\n\n", String::from_utf8(buf).unwrap());
        assert_eq!(parse_jsonl(&text).unwrap(), records);
    }

    #[test]
    fn missing_required_fields_are_rejected_with_the_line() {
        let err = parse_jsonl("{\"k\":\"span\",\"cat\":\"x\"}").unwrap_err();
        assert!(err.starts_with("line 1:"), "{err}");
        assert!(err.contains("name"), "{err}");
        assert!(Record::from_json(
            "{\"k\":\"nope\",\"cat\":\"x\",\"name\":\"y\",\"t0\":0,\"t1\":0,\"tid\":0}"
        )
        .is_err());
        assert!(Record::from_json("not json").is_err());
    }

    #[test]
    fn backwards_span_is_rejected() {
        let line = "{\"k\":\"span\",\"cat\":\"x\",\"name\":\"y\",\"t0\":10,\"t1\":5,\"tid\":0}";
        assert!(Record::from_json(line).unwrap_err().contains("precedes"));
    }

    #[test]
    fn identity_ignores_time_and_thread() {
        let a = sample();
        let mut b = sample();
        b.t0 = 9;
        b.t1 = 11;
        b.tid = 99;
        b.v = Some(1.0);
        assert_eq!(a.identity(), b.identity());
    }
}
