//! Chrome `trace_event` export (the Perfetto / `chrome://tracing` format).
//!
//! The emitted file is a JSON array of complete-duration (`ph:"X"`) events
//! plus `thread_name` metadata, all under one pid. Two track families:
//!
//! * **worker threads** — every span lands on the track of the thread
//!   that recorded it (`tid` = the recorder's dense thread ordinal), so
//!   the pool's utilization and stealing pattern are visible directly;
//! * **dataflow nodes** — spans carrying both a statement index and a
//!   node index are *additionally* mirrored onto a per-node track (named
//!   `s<si> n<ni> <label>` from the graph meta records), so the same run
//!   reads as a dataflow timeline: one row per graph node, intervals
//!   showing when that node actually had a task in flight.
//!
//! Timestamps are microseconds relative to the earliest record, so the
//! viewer opens at t=0.

use crate::record::{escape_into, Kind, Record};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io::{self, Write};

/// Track ids: worker threads use their recorder ordinal directly; node
/// tracks start here (far above any realistic thread count).
const NODE_TRACK_BASE: u64 = 1 << 20;

fn node_track(si: u64, ni: u64) -> u64 {
    NODE_TRACK_BASE + si * 1024 + ni
}

/// Writes `records` as a Chrome `trace_event` JSON array.
pub fn write_chrome_trace(records: &[Record], out: &mut impl Write) -> io::Result<()> {
    let base = records.iter().map(|r| r.t0).min().unwrap_or(0);
    let mut body = String::from("[\n");
    let mut first = true;
    let mut emit = |line: String, body: &mut String| {
        if !std::mem::take(&mut first) {
            body.push_str(",\n");
        }
        body.push_str(&line);
    };

    // Process + worker-thread names.
    emit(meta_event("process_name", 0, "kumquat"), &mut body);
    let mut tids: Vec<u64> = records.iter().map(|r| r.tid).collect();
    tids.sort_unstable();
    tids.dedup();
    for tid in &tids {
        emit(
            meta_event("thread_name", *tid, &format!("worker-{tid}")),
            &mut body,
        );
    }

    // Node-track names from the graph meta records.
    let mut node_labels: BTreeMap<(u64, u64), String> = BTreeMap::new();
    for r in records {
        if r.kind == Kind::Meta && r.cat == "graph" && r.name != "dep" {
            if let (Some(si), Some(ni)) = (r.si, r.ni) {
                let label = if r.label.is_empty() {
                    r.name.clone()
                } else {
                    format!("{} {}", r.name, r.label)
                };
                node_labels.insert((si, ni), label);
            }
        }
    }
    for ((si, ni), label) in &node_labels {
        emit(
            meta_event(
                "thread_name",
                node_track(*si, *ni),
                &format!("s{} n{} {label}", si + 1, ni),
            ),
            &mut body,
        );
    }

    for r in records {
        if r.kind != Kind::Span {
            continue;
        }
        emit(span_event(r, base, r.tid), &mut body);
        if let (Some(si), Some(ni)) = (r.si, r.ni) {
            // Mirror node-task spans onto the per-node track. Only spans
            // whose (si, ni) names a known graph node get a mirror, so
            // stage spans from the non-dataflow executors (which reuse
            // the indices) don't fabricate empty tracks.
            if node_labels.contains_key(&(si, ni)) {
                emit(span_event(r, base, node_track(si, ni)), &mut body);
            }
        }
    }
    body.push_str("\n]\n");
    out.write_all(body.as_bytes())
}

fn meta_event(name: &str, tid: u64, value: &str) -> String {
    let mut escaped = String::new();
    escape_into(&mut escaped, value);
    format!(
        "{{\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\"name\":\"{name}\",\
         \"args\":{{\"name\":\"{escaped}\"}}}}"
    )
}

fn span_event(r: &Record, base: u64, tid: u64) -> String {
    let ts = (r.t0 - base) as f64 / 1000.0;
    let dur = (r.t1 - r.t0) as f64 / 1000.0;
    let mut name = String::new();
    escape_into(&mut name, &r.name);
    let mut cat = String::new();
    escape_into(&mut cat, &r.cat);
    let mut s = format!(
        "{{\"ph\":\"X\",\"pid\":1,\"tid\":{tid},\"ts\":{ts:.3},\"dur\":{dur:.3},\
         \"cat\":\"{cat}\",\"name\":\"{name}\",\"args\":{{"
    );
    let mut first = true;
    if !r.label.is_empty() {
        let mut label = String::new();
        escape_into(&mut label, &r.label);
        let _ = write!(s, "\"label\":\"{label}\"");
        first = false;
    }
    for (key, val) in [("si", r.si), ("ni", r.ni), ("seq", r.seq)] {
        if let Some(v) = val {
            if !std::mem::take(&mut first) {
                s.push(',');
            }
            let _ = write!(s, "\"{key}\":{v}");
        }
    }
    if let Some(v) = r.v {
        if !std::mem::take(&mut first) {
            s.push(',');
        }
        let _ = write!(s, "\"v\":{v}");
    }
    s.push_str("}}");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(cat: &str, name: &str, si: Option<u64>, ni: Option<u64>, t0: u64, t1: u64) -> Record {
        Record {
            kind: Kind::Span,
            cat: cat.into(),
            name: name.into(),
            label: "grep a".into(),
            si,
            ni,
            seq: Some(0),
            t0,
            t1,
            tid: 2,
            v: None,
        }
    }

    fn node_meta(si: u64, ni: u64) -> Record {
        Record {
            kind: Kind::Meta,
            cat: "graph".into(),
            name: "worker".into(),
            label: "grep a".into(),
            si: Some(si),
            ni: Some(ni),
            seq: None,
            t0: 0,
            t1: 0,
            tid: 0,
            v: None,
        }
    }

    #[test]
    fn emits_thread_and_node_tracks() {
        let records = vec![
            node_meta(0, 1),
            span("dataflow", "map", Some(0), Some(1), 1000, 2000),
            span("plan", "plan", None, None, 0, 500),
        ];
        let mut buf = Vec::new();
        write_chrome_trace(&records, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("[\n"), "{text}");
        assert!(text.trim_end().ends_with(']'), "{text}");
        assert!(text.contains("\"thread_name\""));
        assert!(text.contains("s1 n1 worker grep a"), "{text}");
        // The node span appears twice: worker track + node track.
        assert_eq!(text.matches("\"name\":\"map\"").count(), 2, "{text}");
        // The plan span appears once, on its thread track only.
        assert_eq!(text.matches("\"name\":\"plan\"").count(), 1, "{text}");
        // Timestamps are rebased to the earliest record.
        assert!(text.contains("\"ts\":0.000"), "{text}");
    }

    #[test]
    fn non_node_spans_with_indices_are_not_mirrored() {
        // A serial-executor stage span has si/ni but no graph node: it
        // must stay on its thread track.
        let records = vec![span("serial", "stage", Some(0), Some(1), 0, 10)];
        let mut buf = Vec::new();
        write_chrome_trace(&records, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.matches("\"name\":\"stage\"").count(), 1, "{text}");
    }
}
