//! Property-based verification of the paper's appendix lemmas (B.1–B.4)
//! over randomly generated RecOp trees and strings. These lemmas underpin
//! the equivalence proofs of Theorems 1–4.

use kq_dsl::ast::Combiner;
use kq_dsl::ast::RecOp;
use kq_dsl::eval::eval;
use kq_dsl::eval::NoRunEnv;
use kq_dsl::{domain, Delim};
use kq_stream::count_delim;
use proptest::prelude::*;

/// A strategy over RecOp trees up to a few levels deep.
fn rec_op() -> impl Strategy<Value = RecOp> {
    let leaf = prop_oneof![
        Just(RecOp::Add),
        Just(RecOp::Concat),
        Just(RecOp::First),
        Just(RecOp::Second),
    ];
    leaf.prop_recursive(3, 12, 1, |inner| {
        (
            inner,
            prop_oneof![Just(Delim::Space), Just(Delim::Comma), Just(Delim::Tab)],
            0..3u8,
        )
            .prop_map(|(child, d, which)| match which {
                0 => RecOp::Front(d, Box::new(child)),
                1 => RecOp::Back(d, Box::new(child)),
                _ => RecOp::Fuse(d, Box::new(child)),
            })
    })
}

fn delim_free_string() -> impl Strategy<Value = String> {
    // Digits and letters only: no DSL delimiter can appear.
    "[a-z0-9]{1,12}"
}

proptest! {
    /// Lemma B.1: if `d` occurs in neither argument, `d` does not occur in
    /// any successful RecOp result.
    #[test]
    fn lemma_b1_recop_preserves_delim_absence(
        g in rec_op(),
        y1 in delim_free_string(),
        y2 in delim_free_string(),
    ) {
        if let Ok(v) = eval(&Combiner::Rec(g), &y1, &y2, &NoRunEnv) {
            for d in Delim::ALL {
                prop_assume!(count_delim(d.as_char(), &y1) == 0);
                prop_assume!(count_delim(d.as_char(), &y2) == 0);
                prop_assert_eq!(count_delim(d.as_char(), &v), 0);
            }
        }
    }

    /// Lemma B.2: no RecOp result equals `y1 ++ z ++ y2` for non-empty `z`
    /// — i.e. RecOp combiners never invent interior content.
    #[test]
    fn lemma_b2_no_invented_interior(
        g in rec_op(),
        y1 in "[a-z]{1,6}",
        y2 in "[a-z]{1,6}",
    ) {
        if let Ok(v) = eval(&Combiner::Rec(g), &y1, &y2, &NoRunEnv) {
            if v.len() > y1.len() + y2.len()
                && v.starts_with(y1.as_str())
                && v.ends_with(y2.as_str())
            {
                // The middle would be invented content.
                prop_assert!(false, "invented interior: {v:?} from {y1:?} {y2:?}");
            }
        }
    }

    /// Lemma B.3: a successful `fuse d b` preserves the count of `d` from
    /// its (equal-count) arguments.
    #[test]
    fn lemma_b3_fuse_preserves_delim_count(
        parts in proptest::collection::vec("[0-9]{1,3}", 2..6),
        parts2 in proptest::collection::vec("[0-9]{1,3}", 2..6),
    ) {
        let g = RecOp::Fuse(Delim::Space, Box::new(RecOp::Add));
        let y1 = parts.join(" ");
        let y2 = parts2.join(" ");
        if let Ok(v) = eval(&Combiner::Rec(g), &y1, &y2, &NoRunEnv) {
            prop_assert_eq!(count_delim(' ', &y1), count_delim(' ', &y2));
            prop_assert_eq!(count_delim(' ', &v), count_delim(' ', &y1));
        }
    }

    /// Lemma B.4: for any RecOp, the result's delimiter count never
    /// exceeds the sum of the arguments' counts.
    #[test]
    fn lemma_b4_delim_count_subadditive(
        g in rec_op(),
        y1 in "[a-z0-9 ,]{0,16}",
        y2 in "[a-z0-9 ,]{0,16}",
    ) {
        if let Ok(v) = eval(&Combiner::Rec(g.clone()), &y1, &y2, &NoRunEnv) {
            for d in [' ', ',', '\t', '\n'] {
                prop_assert!(
                    count_delim(d, &v) <= count_delim(d, &y1) + count_delim(d, &y2) + 2,
                    "combiner {g:?} inflated {d:?}: {v:?} from {y1:?}/{y2:?}"
                );
            }
        }
    }

    /// Domain soundness: evaluation succeeds on every pair *constructed
    /// from* the combiner's legal domain `L(g)` — the guarantee Definition
    /// B.1 states ("for any y1, y2 ∈ L(g), the evaluation succeeds").
    /// Strings are built bottom-up to lie in the domain; `fuse` arity is
    /// matched (a cross-pair constraint `L(g)` cannot express).
    #[test]
    fn eval_total_on_legal_domain(g in rec_op(), seed in 0u64..1000) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let arity = rng.gen_range(2..5usize);
        // Some nested combiners have *empty* domains (e.g. a fuse whose
        // child demands the fuse delimiter inside every piece); the
        // sampler reports those as None and the case is skipped.
        let (y1, y2) = match (
            sample_in_domain(&g, &mut rng, arity),
            sample_in_domain(&g, &mut rng, arity),
        ) {
            (Some(a), Some(b)) => (a, b),
            _ => return Ok(()),
        };
        let c = Combiner::Rec(g);
        prop_assert!(domain::in_domain(&c, &y1), "{c} should admit {y1:?}");
        prop_assert!(domain::in_domain(&c, &y2), "{c} should admit {y2:?}");
        let r = eval(&c, &y1, &y2, &NoRunEnv);
        prop_assert!(r.is_ok(), "{c} failed on {y1:?}/{y2:?}: {:?}", r.err());
    }
}

/// Builds a string in `L(g)` bottom-up; `fuse` uses a caller-fixed arity
/// so both arguments decompose into equally many pieces. Returns `None`
/// when the domain is unsatisfiable (a fuse child that itself requires
/// the fuse delimiter).
fn sample_in_domain(g: &RecOp, rng: &mut rand::rngs::SmallRng, arity: usize) -> Option<String> {
    use rand::Rng;
    Some(match g {
        RecOp::Add => format!("{}", rng.gen_range(0..10_000u32)),
        RecOp::Concat | RecOp::First | RecOp::Second => {
            let n = rng.gen_range(1..6);
            (0..n)
                .map(|_| (b'a' + rng.gen_range(0..26)) as char)
                .collect()
        }
        RecOp::Front(d, b) => format!("{}{}", d.as_char(), sample_in_domain(b, rng, arity)?),
        RecOp::Back(d, b) => format!("{}{}", sample_in_domain(b, rng, arity)?, d.as_char()),
        RecOp::Fuse(d, b) => {
            let mut parts = Vec::with_capacity(arity);
            for _ in 0..arity {
                let p = sample_in_domain(b, rng, arity)?;
                if p.is_empty() || p.contains(d.as_char()) {
                    // The child's domain forces the fuse delimiter into
                    // the piece: L(fuse d b) is empty.
                    return None;
                }
                parts.push(p);
            }
            parts.join(&d.as_char().to_string())
        }
    })
}

/// Deterministic spot checks of the lemmas' edge conditions.
#[test]
fn lemma_edges() {
    // B.3 arity mismatch is an error, not a silent truncation.
    let g = Combiner::Rec(RecOp::Fuse(Delim::Space, Box::new(RecOp::Add)));
    assert!(eval(&g, "1 2", "1 2 3", &NoRunEnv).is_err());
    // B.1 boundary: delimiters inside arguments survive concat only.
    let g = Combiner::Rec(RecOp::Concat);
    assert_eq!(eval(&g, "a b", "c", &NoRunEnv).unwrap(), "a bc");
}
