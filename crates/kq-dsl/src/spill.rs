//! Spill policy for bounded-memory folds.
//!
//! A merge-combiner fold ([`crate::kway::IncrementalFold`]) normally keeps
//! every sorted run on the heap until `finish()`. Under a [`SpillConfig`]
//! it instead writes runs to temp files (through [`kq_io::RunWriter`])
//! once the resident run bytes would cross the budget, maps them back as
//! demand-paged [`kq_stream::Bytes`], and streams the final k-way merge so
//! neither the runs nor the merged output are ever fully heap-resident.
//!
//! [`SpillPolicy`] is the user-facing knob (budget + optional directory)
//! carried by executor options; each barrier stage derives its own
//! [`SpillConfig`] from it so the [`SpillMetrics`] counters are per-stage.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The user-facing spill knob (`--spill-mb` / `--spill-dir`): carried by
/// executor options, turned into one [`SpillConfig`] per barrier stage.
#[derive(Debug, Clone)]
pub struct SpillPolicy {
    /// Resident run-byte budget: when a newly completed run would push the
    /// heap-held run total past this, runs start spilling to disk.
    pub budget_bytes: usize,
    /// Directory for run files; `None` means the system temp dir.
    pub dir: Option<PathBuf>,
}

impl SpillPolicy {
    /// Derives a per-stage config with fresh metrics counters.
    pub fn stage_config(&self) -> SpillConfig {
        SpillConfig {
            budget_bytes: self.budget_bytes,
            dir: self.dir.clone().unwrap_or_else(std::env::temp_dir),
            metrics: Arc::new(SpillMetrics::default()),
        }
    }
}

/// One stage's spill configuration: a resolved directory plus shared
/// counters the executor snapshots into its timing log after the run.
#[derive(Debug, Clone)]
pub struct SpillConfig {
    /// Resident run-byte budget (see [`SpillPolicy::budget_bytes`]).
    pub budget_bytes: usize,
    /// Resolved run-file directory.
    pub dir: PathBuf,
    /// Live counters, shared between the fold (writer) and the executor
    /// (reader).
    pub metrics: Arc<SpillMetrics>,
}

/// Spill activity counters, updated by the fold as it runs.
#[derive(Debug, Default)]
pub struct SpillMetrics {
    runs_spilled: AtomicU64,
    bytes_written: AtomicU64,
    bytes_mapped: AtomicU64,
}

impl SpillMetrics {
    /// Records one run of `bytes` written to disk.
    pub fn record_spill(&self, bytes: u64) {
        self.runs_spilled.fetch_add(1, Ordering::Relaxed);
        self.bytes_written.fetch_add(bytes, Ordering::Relaxed);
        kq_trace::instant("spill", "run-out").v(bytes as f64).emit();
    }

    /// Records `bytes` of spilled data mapped back for merging.
    pub fn record_mapped(&self, bytes: u64) {
        self.bytes_mapped.fetch_add(bytes, Ordering::Relaxed);
        kq_trace::instant("spill", "map-back")
            .v(bytes as f64)
            .emit();
    }

    /// A consistent-enough snapshot: (runs spilled, bytes written, bytes
    /// mapped back).
    pub fn snapshot(&self) -> (u64, u64, u64) {
        (
            self.runs_spilled.load(Ordering::Relaxed),
            self.bytes_written.load(Ordering::Relaxed),
            self.bytes_mapped.load(Ordering::Relaxed),
        )
    }
}
