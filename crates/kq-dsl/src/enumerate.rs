//! Candidate-space enumeration (`G_n`, Definition 3.7).
//!
//! The search space is parameterized by the delimiter alphabet (KumQuat's
//! preprocessing derives it per command from the delimiters observed in
//! probe outputs) and the expansion budget. Each combiner is emitted in
//! both argument orders — Table 10 lists swapped candidates such as
//! `(second b a)` — so the space size is twice the combiner count.
//!
//! With the default budget (`max_size = 7`, i.e. at most five grammar
//! expansions) this enumeration reproduces the paper's per-command space
//! sizes *exactly*:
//!
//! | delimiters | RecOp | StructOp | RunOp | total |
//! |-----------:|------:|---------:|------:|------:|
//! | 1          |   968 |     1728 |     4 |  2700 |
//! | 2          | 12440 |    13960 |     4 | 26404 |
//! | 3          | 59048 |    51392 |     4 | 110444 |

use crate::ast::{Candidate, Combiner, RecOp, RunOp, StructOp};
use kq_stream::Delim;

/// Enumeration parameters.
#[derive(Debug, Clone)]
pub struct EnumConfig {
    /// Delimiters available to `front`/`back`/`fuse`/`stitch2`/`offset`.
    /// `'\n'` should always be present.
    pub delims: Vec<Delim>,
    /// Maximum combiner size `|g|` (Definition 3.6). The paper's deployed
    /// budget is 7 ("seven or fewer nodes", §2), which yields the Table 10
    /// space sizes.
    pub max_size: usize,
    /// Flags for the `merge` candidate (the command's own sort flags when
    /// `f` is a `sort` invocation, empty otherwise).
    pub merge_flags: Vec<String>,
}

impl Default for EnumConfig {
    fn default() -> Self {
        EnumConfig {
            delims: vec![Delim::Newline],
            max_size: 7,
            merge_flags: Vec::new(),
        }
    }
}

/// Per-class candidate counts, reported like Table 10's
/// `26404 (= 12440 + 13960 + 4)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpaceBreakdown {
    /// RecOp candidates (both argument orders).
    pub rec: usize,
    /// StructOp candidates (both argument orders).
    pub structural: usize,
    /// RunOp candidates (`rerun`/`merge` × argument order).
    pub run: usize,
}

impl SpaceBreakdown {
    /// Total candidate count.
    pub fn total(&self) -> usize {
        self.rec + self.structural + self.run
    }
}

impl std::fmt::Display for SpaceBreakdown {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} (= {} + {} + {})",
            self.total(),
            self.rec,
            self.structural,
            self.run
        )
    }
}

/// Enumerates every RecOp with at most `budget` expansions.
fn rec_ops(budget: usize, delims: &[Delim]) -> Vec<RecOp> {
    let mut out = Vec::new();
    if budget == 0 {
        return out;
    }
    out.extend([RecOp::Add, RecOp::Concat, RecOp::First, RecOp::Second]);
    if budget >= 2 {
        for child in rec_ops(budget - 1, delims) {
            for &d in delims {
                out.push(RecOp::Front(d, Box::new(child.clone())));
                out.push(RecOp::Back(d, Box::new(child.clone())));
                out.push(RecOp::Fuse(d, Box::new(child.clone())));
            }
        }
    }
    out
}

/// Enumerates the full candidate space (both argument orders) together
/// with its per-class breakdown.
pub fn enumerate_candidates(config: &EnumConfig) -> (Vec<Candidate>, SpaceBreakdown) {
    let budget = config.max_size.saturating_sub(2);
    let mut combiners: Vec<Combiner> = Vec::new();

    let recs = rec_ops(budget, &config.delims);
    let rec_count = recs.len();
    combiners.extend(recs.iter().cloned().map(Combiner::Rec));

    // StructOp: one expansion for the struct node itself.
    let mut struct_count = 0;
    if budget >= 2 {
        let children = rec_ops(budget - 1, &config.delims);
        for b in &children {
            combiners.push(Combiner::Struct(StructOp::Stitch(b.clone())));
            struct_count += 1;
        }
        for &d in &config.delims {
            for b in &children {
                combiners.push(Combiner::Struct(StructOp::Offset(d, b.clone())));
                struct_count += 1;
            }
        }
        // stitch2: two children sharing the remaining budget.
        for &d in &config.delims {
            for b1 in rec_ops(budget.saturating_sub(2), &config.delims) {
                let b2_budget = budget - 1 - b1.expansions();
                for b2 in rec_ops(b2_budget, &config.delims) {
                    combiners.push(Combiner::Struct(StructOp::Stitch2(d, b1.clone(), b2)));
                    struct_count += 1;
                }
            }
        }
    }

    let run_ops = [
        Combiner::Run(RunOp::Rerun),
        Combiner::Run(RunOp::Merge(config.merge_flags.clone())),
    ];
    combiners.extend(run_ops.iter().cloned());

    let breakdown = SpaceBreakdown {
        rec: rec_count * 2,
        structural: struct_count * 2,
        run: run_ops.len() * 2,
    };

    let mut candidates = Vec::with_capacity(combiners.len() * 2);
    for op in combiners {
        candidates.push(Candidate {
            op: op.clone(),
            swapped: false,
        });
        candidates.push(Candidate { op, swapped: true });
    }
    (candidates, breakdown)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space(n_delims: usize) -> SpaceBreakdown {
        let config = EnumConfig {
            delims: Delim::ALL[..n_delims].to_vec(),
            ..EnumConfig::default()
        };
        let (cands, breakdown) = enumerate_candidates(&config);
        assert_eq!(cands.len(), breakdown.total());
        breakdown
    }

    #[test]
    fn one_delim_space_matches_table10() {
        // e.g. `wc -l`, `tr -cs A-Za-z '\n'`: 2700 (= 968 + 1728 + 4).
        let b = space(1);
        assert_eq!((b.rec, b.structural, b.run), (968, 1728, 4));
        assert_eq!(b.total(), 2700);
    }

    #[test]
    fn two_delim_space_matches_table10() {
        // e.g. `cat`, `sort`, `grep`: 26404 (= 12440 + 13960 + 4).
        let b = space(2);
        assert_eq!((b.rec, b.structural, b.run), (12440, 13960, 4));
        assert_eq!(b.total(), 26404);
    }

    #[test]
    fn three_delim_space_matches_table10() {
        // e.g. `awk "{print $2, $0}"`: 110444 (= 59048 + 51392 + 4).
        let b = space(3);
        assert_eq!((b.rec, b.structural, b.run), (59048, 51392, 4));
        assert_eq!(b.total(), 110444);
    }

    #[test]
    fn display_matches_paper_format() {
        assert_eq!(space(2).to_string(), "26404 (= 12440 + 13960 + 4)");
    }

    #[test]
    fn all_candidates_within_size_budget() {
        let config = EnumConfig {
            delims: vec![Delim::Newline, Delim::Space],
            ..EnumConfig::default()
        };
        let (cands, _) = enumerate_candidates(&config);
        assert!(cands.iter().all(|c| c.size() <= config.max_size));
        // The budget is tight: some candidate attains it.
        assert!(cands.iter().any(|c| c.size() == config.max_size));
    }

    #[test]
    fn candidates_are_distinct() {
        let config = EnumConfig::default();
        let (cands, _) = enumerate_candidates(&config);
        let set: std::collections::HashSet<_> = cands.iter().collect();
        assert_eq!(set.len(), cands.len());
    }

    #[test]
    fn space_contains_known_correct_combiners() {
        let config = EnumConfig {
            delims: vec![Delim::Newline, Delim::Space],
            ..EnumConfig::default()
        };
        let (cands, _) = enumerate_candidates(&config);
        let want = [
            Combiner::Rec(RecOp::Concat),
            Combiner::Rec(RecOp::Back(Delim::Newline, Box::new(RecOp::Add))),
            Combiner::Struct(StructOp::Stitch(RecOp::First)),
            Combiner::Struct(StructOp::Stitch2(Delim::Space, RecOp::Add, RecOp::First)),
            Combiner::Run(RunOp::Rerun),
        ];
        for w in want {
            assert!(cands.iter().any(|c| c.op == w && !c.swapped), "missing {w}");
        }
    }

    #[test]
    fn merge_flags_are_threaded_through() {
        let config = EnumConfig {
            merge_flags: vec!["-rn".to_owned()],
            ..EnumConfig::default()
        };
        let (cands, _) = enumerate_candidates(&config);
        assert!(cands
            .iter()
            .any(|c| matches!(&c.op, Combiner::Run(RunOp::Merge(f)) if f == &["-rn".to_owned()])));
    }

    #[test]
    fn smaller_budget_shrinks_space() {
        let small = EnumConfig {
            max_size: 4,
            ..EnumConfig::default()
        };
        let (cands, b) = enumerate_candidates(&small);
        // Size <= 4: leaves (4), one-level chains (12), stitch over leaves
        // (4), offset over leaves (4), no stitch2 (needs size 5), run (2).
        assert_eq!(b.rec, (4 + 12) * 2);
        assert_eq!(b.structural, (4 + 4) * 2);
        assert_eq!(b.run, 4);
        assert_eq!(cands.len(), b.total());
    }
}
