//! k-way combining (paper §3.5, "Combining Multiple Substreams").
//!
//! Synthesized combiners are binary, but parallel execution produces `k`
//! output substreams. Three combiners generalize natively — `concat` is
//! `cat $*`, `merge <flags>` is `sort -m <flags> $*`, and `rerun` is one
//! re-execution over the concatenation — while every other combiner is
//! applied pairwise, folding left until one stream remains.

use crate::ast::{Candidate, Combiner, RecOp, RunOp};
use crate::eval::{eval, EvalError, RunEnv};
use kq_stream::Bytes;

/// Text view of a substream for the string-semantic combiners; a
/// non-UTF-8 piece is a domain error, not a panic.
fn view(piece: &Bytes) -> Result<&str, EvalError> {
    piece
        .to_str()
        .map_err(|_| EvalError::Command("substream is not valid UTF-8".to_owned()))
}

/// How a binary combiner is generalized to `k` substreams.
///
/// The paper (§3.5) specifies the `Flat` behaviour — native k-way
/// implementations for `concat`/`merge`/`rerun`, pairwise application
/// "until only one substream remains" for everything else — but leaves the
/// pairwise order open. The other two strategies make that order explicit
/// so the ablation bench can measure the difference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CombineStrategy {
    /// Native k-way where available (`cat $*`, `sort -m $*`, one rerun),
    /// balanced tree fold otherwise. This is what execution uses.
    Flat,
    /// Balanced pairwise tree for *every* combiner: each byte is touched
    /// `O(log k)` times.
    TreeFold,
    /// Left fold, combining the accumulator with one piece at a time: the
    /// accumulator is re-traversed at every step (`O(n·k)` bytes for
    /// `concat`-like combiners) — the naive reading of "apply the combiner
    /// on two substreams repeatedly".
    FoldLeft,
}

/// Combines `k` parallel output substreams with the given candidate using
/// the default [`CombineStrategy::Flat`] strategy.
///
/// Empty substreams (a worker that received no lines) are skipped: they
/// contribute nothing to the combined stream, matching the behaviour of
/// the shell implementations (`cat`/`sort -m` of empty files).
///
/// Pieces arrive and leave as [`Bytes`]: a single surviving piece is
/// returned by refcount bump, k-way `concat` gathers the segments with at
/// most one memcpy ([`Rope::into_bytes`]), and `rerun` hands the gathered
/// stream to the command without an extra owned-string round trip.
pub fn combine_all(
    candidate: &Candidate,
    pieces: &[Bytes],
    env: &dyn RunEnv,
) -> Result<Bytes, EvalError> {
    combine_all_with(CombineStrategy::Flat, candidate, pieces, env)
}

/// Combines `k` substreams with an explicit [`CombineStrategy`].
pub fn combine_all_with(
    strategy: CombineStrategy,
    candidate: &Candidate,
    pieces: &[Bytes],
    env: &dyn RunEnv,
) -> Result<Bytes, EvalError> {
    let live: Vec<&Bytes> = pieces.iter().filter(|p| !p.is_empty()).collect();
    match live.as_slice() {
        [] => return Ok(Bytes::new()),
        [one] => return Ok((*one).clone()),
        _ => {}
    }
    if strategy == CombineStrategy::Flat {
        match &candidate.op {
            // concat == `cat $*`: a segment gather, no pairwise work.
            Combiner::Rec(RecOp::Concat) => {
                let mut ordered = live;
                if candidate.swapped {
                    ordered.reverse();
                }
                return Ok(kq_stream::concat_bytes(ordered));
            }
            // merge == `sort -m <flags> $*`: borrow the piece text in
            // place (no per-piece copies).
            Combiner::Run(RunOp::Merge(flags)) => {
                let views: Vec<&str> = live.iter().map(|p| view(p)).collect::<Result<_, _>>()?;
                return env.merge(flags, &views).map(Bytes::from);
            }
            // rerun == gather everything, re-run `f` once on the bytes.
            Combiner::Run(RunOp::Rerun) => {
                return env.rerun_bytes(kq_stream::concat_bytes(live));
            }
            _ => {}
        }
    }
    match strategy {
        CombineStrategy::FoldLeft => {
            let mut acc = live[0].clone();
            for piece in &live[1..] {
                let (x, y) = candidate.oriented(view(&acc)?, view(piece)?);
                acc = Bytes::from(eval(&candidate.op, x, y, env)?);
            }
            Ok(acc)
        }
        // Tree fold: touches each byte O(log k) times, matching the
        // paper's observation that pairwise application "until only one
        // substream remains" stays cheap. Leaves enter the tree as
        // refcounted slices; only combined intermediates are owned.
        CombineStrategy::Flat | CombineStrategy::TreeFold => {
            let mut level: Vec<Bytes> = live.into_iter().cloned().collect();
            while level.len() > 1 {
                let mut next = Vec::with_capacity(level.len().div_ceil(2));
                let mut it = level.chunks(2);
                for pair in &mut it {
                    match pair {
                        [a, b] => {
                            let (x, y) = candidate.oriented(view(a)?, view(b)?);
                            next.push(Bytes::from(eval(&candidate.op, x, y, env)?));
                        }
                        [a] => next.push(a.clone()),
                        _ => unreachable!("chunks(2) yields 1- or 2-element slices"),
                    }
                }
                level = next;
            }
            Ok(level.pop().expect("at least one piece"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::StructOp;
    use crate::eval::NoRunEnv;
    use kq_stream::Delim;

    struct FakeEnv;

    impl RunEnv for FakeEnv {
        fn rerun(&self, input: &str) -> Result<String, EvalError> {
            Ok(format!("f({input})"))
        }

        fn merge(&self, _flags: &[String], streams: &[&str]) -> Result<String, EvalError> {
            kq_coreutils::sort::merge_streams(&[], streams)
                .map_err(|e| EvalError::Command(e.to_string()))
        }
    }

    fn s(v: &[&str]) -> Vec<Bytes> {
        v.iter().copied().map(Bytes::from).collect()
    }

    #[test]
    fn concat_kway_is_plain_concat() {
        let c = Candidate::rec(RecOp::Concat);
        let out = combine_all(&c, &s(&["a\n", "b\n", "c\n"]), &NoRunEnv).unwrap();
        assert_eq!(out, "a\nb\nc\n");
    }

    #[test]
    fn merge_kway_merges_all_at_once() {
        let c = Candidate::run(RunOp::Merge(vec![]));
        let out = combine_all(&c, &s(&["a\nd\n", "b\n", "c\ne\n"]), &FakeEnv).unwrap();
        assert_eq!(out, "a\nb\nc\nd\ne\n");
    }

    #[test]
    fn rerun_kway_executes_once() {
        let c = Candidate::run(RunOp::Rerun);
        let out = combine_all(&c, &s(&["x\n", "y\n"]), &FakeEnv).unwrap();
        assert_eq!(out, "f(x\ny\n)");
    }

    #[test]
    fn general_combiner_folds_pairwise() {
        let c = Candidate::structural(StructOp::Stitch(RecOp::First));
        let out = combine_all(&c, &s(&["a\nb\n", "b\nc\n", "c\nd\n"]), &NoRunEnv).unwrap();
        assert_eq!(out, "a\nb\nc\nd\n");
    }

    #[test]
    fn back_add_folds_counts() {
        let c = Candidate::rec(RecOp::Back(Delim::Newline, Box::new(RecOp::Add)));
        let out = combine_all(&c, &s(&["3\n", "4\n", "5\n"]), &NoRunEnv).unwrap();
        assert_eq!(out, "12\n");
    }

    #[test]
    fn empty_pieces_are_skipped() {
        let c = Candidate::rec(RecOp::Back(Delim::Newline, Box::new(RecOp::Add)));
        let out = combine_all(&c, &s(&["3\n", "", "5\n"]), &NoRunEnv).unwrap();
        assert_eq!(out, "8\n");
    }

    #[test]
    fn single_piece_passes_through() {
        let c = Candidate::run(RunOp::Rerun);
        let out = combine_all(&c, &s(&["only\n"]), &FakeEnv).unwrap();
        assert_eq!(out, "only\n"); // no re-execution needed
    }

    #[test]
    fn no_pieces_is_empty() {
        let c = Candidate::rec(RecOp::Concat);
        assert_eq!(combine_all(&c, &[], &NoRunEnv).unwrap(), "");
    }

    /// All three strategies agree for the combiners the corpus produces:
    /// they differ only in evaluation order, and combining adjacent pieces
    /// of a split stream is associative for these operators.
    #[test]
    fn strategies_agree_on_corpus_combiners() {
        let cases: Vec<(Candidate, Vec<Bytes>)> = vec![
            (
                Candidate::rec(RecOp::Concat),
                s(&["a\n", "b\n", "c\n", "d\n", "e\n"]),
            ),
            (
                Candidate::rec(RecOp::Back(Delim::Newline, Box::new(RecOp::Add))),
                s(&["1\n", "2\n", "3\n", "4\n", "5\n"]),
            ),
            (
                Candidate::structural(StructOp::Stitch(RecOp::First)),
                s(&["a\nb\n", "b\nc\n", "c\nc\nd\n", "d\ne\n"]),
            ),
            (
                Candidate::structural(StructOp::Stitch2(Delim::Space, RecOp::Add, RecOp::First)),
                s(&[
                    "      2 a\n      1 b\n",
                    "      3 b\n",
                    "      1 b\n      4 c\n",
                ]),
            ),
        ];
        for (cand, pieces) in cases {
            let flat = combine_all_with(CombineStrategy::Flat, &cand, &pieces, &NoRunEnv).unwrap();
            let tree =
                combine_all_with(CombineStrategy::TreeFold, &cand, &pieces, &NoRunEnv).unwrap();
            let fold =
                combine_all_with(CombineStrategy::FoldLeft, &cand, &pieces, &NoRunEnv).unwrap();
            assert_eq!(flat, tree, "flat vs tree for {cand}");
            assert_eq!(flat, fold, "flat vs fold for {cand}");
        }
    }

    #[test]
    fn swapped_concat_reverses_under_every_strategy() {
        let mut c = Candidate::rec(RecOp::Concat);
        c.swapped = true;
        let pieces = s(&["a\n", "b\n", "c\n"]);
        for strat in [
            CombineStrategy::Flat,
            CombineStrategy::TreeFold,
            CombineStrategy::FoldLeft,
        ] {
            assert_eq!(
                combine_all_with(strat, &c, &pieces, &NoRunEnv).unwrap(),
                "c\nb\na\n",
                "{strat:?}"
            );
        }
    }

    #[test]
    fn fold_left_merge_stays_sorted() {
        let c = Candidate::run(RunOp::Merge(vec![]));
        let pieces = s(&["a\nd\n", "b\n", "c\ne\n"]);
        let fold = combine_all_with(CombineStrategy::FoldLeft, &c, &pieces, &FakeEnv).unwrap();
        assert_eq!(fold, "a\nb\nc\nd\ne\n");
    }
}
