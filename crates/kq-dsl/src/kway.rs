//! k-way combining (paper §3.5, "Combining Multiple Substreams").
//!
//! Synthesized combiners are binary, but parallel execution produces `k`
//! output substreams. Three combiners generalize natively — `concat` is
//! `cat $*`, `merge <flags>` is `sort -m <flags> $*`, and `rerun` is one
//! re-execution over the concatenation — while every other combiner is
//! applied pairwise, folding left until one stream remains.

use crate::ast::{Candidate, Combiner, RecOp, RunOp};
use crate::eval::{eval, EvalError, RunEnv};
use kq_stream::Bytes;

/// Text view of a substream for the string-semantic combiners; a
/// non-UTF-8 piece is a domain error, not a panic.
fn view(piece: &Bytes) -> Result<&str, EvalError> {
    piece
        .to_str()
        .map_err(|_| EvalError::Command("substream is not valid UTF-8".to_owned()))
}

/// How a binary combiner is generalized to `k` substreams.
///
/// The paper (§3.5) specifies the `Flat` behaviour — native k-way
/// implementations for `concat`/`merge`/`rerun`, pairwise application
/// "until only one substream remains" for everything else — but leaves the
/// pairwise order open. The other two strategies make that order explicit
/// so the ablation bench can measure the difference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CombineStrategy {
    /// Native k-way where available (`cat $*`, `sort -m $*`, one rerun),
    /// balanced tree fold otherwise. This is what execution uses.
    Flat,
    /// Balanced pairwise tree for *every* combiner: each byte is touched
    /// `O(log k)` times.
    TreeFold,
    /// Left fold, combining the accumulator with one piece at a time: the
    /// accumulator is re-traversed at every step (`O(n·k)` bytes for
    /// `concat`-like combiners) — the naive reading of "apply the combiner
    /// on two substreams repeatedly".
    FoldLeft,
}

/// Combines `k` parallel output substreams with the given candidate using
/// the default [`CombineStrategy::Flat`] strategy.
///
/// Empty substreams (a worker that received no lines) are skipped: they
/// contribute nothing to the combined stream, matching the behaviour of
/// the shell implementations (`cat`/`sort -m` of empty files).
///
/// Pieces arrive and leave as [`Bytes`]: a single surviving piece is
/// returned by refcount bump, k-way `concat` gathers the segments with at
/// most one memcpy ([`Rope::into_bytes`]), and `rerun` hands the gathered
/// stream to the command without an extra owned-string round trip.
pub fn combine_all(
    candidate: &Candidate,
    pieces: &[Bytes],
    env: &dyn RunEnv,
) -> Result<Bytes, EvalError> {
    combine_all_with(CombineStrategy::Flat, candidate, pieces, env)
}

/// Combines `k` substreams with an explicit [`CombineStrategy`].
pub fn combine_all_with(
    strategy: CombineStrategy,
    candidate: &Candidate,
    pieces: &[Bytes],
    env: &dyn RunEnv,
) -> Result<Bytes, EvalError> {
    let live: Vec<&Bytes> = pieces.iter().filter(|p| !p.is_empty()).collect();
    match live.as_slice() {
        [] => return Ok(Bytes::new()),
        [one] => return Ok((*one).clone()),
        _ => {}
    }
    if strategy == CombineStrategy::Flat {
        match &candidate.op {
            // concat == `cat $*`: a segment gather, no pairwise work.
            Combiner::Rec(RecOp::Concat) => {
                let mut ordered = live;
                if candidate.swapped {
                    ordered.reverse();
                }
                return Ok(kq_stream::concat_bytes(ordered));
            }
            // merge == `sort -m <flags> $*`: borrow the piece text in
            // place (no per-piece copies).
            Combiner::Run(RunOp::Merge(flags)) => {
                let views: Vec<&str> = live.iter().map(|p| view(p)).collect::<Result<_, _>>()?;
                return env.merge(flags, &views).map(Bytes::from);
            }
            // rerun == gather everything, re-run `f` once on the bytes.
            Combiner::Run(RunOp::Rerun) => {
                return env.rerun_bytes(kq_stream::concat_bytes(live));
            }
            _ => {}
        }
    }
    match strategy {
        CombineStrategy::FoldLeft => {
            let mut acc = live[0].clone();
            for piece in &live[1..] {
                let (x, y) = candidate.oriented(view(&acc)?, view(piece)?);
                acc = Bytes::from(eval(&candidate.op, x, y, env)?);
            }
            Ok(acc)
        }
        // Tree fold: touches each byte O(log k) times, matching the
        // paper's observation that pairwise application "until only one
        // substream remains" stays cheap. Leaves enter the tree as
        // refcounted slices; only combined intermediates are owned.
        CombineStrategy::Flat | CombineStrategy::TreeFold => {
            let mut level: Vec<Bytes> = live.into_iter().cloned().collect();
            while level.len() > 1 {
                let mut next = Vec::with_capacity(level.len().div_ceil(2));
                let mut it = level.chunks(2);
                for pair in &mut it {
                    match pair {
                        [a, b] => {
                            let (x, y) = candidate.oriented(view(a)?, view(b)?);
                            next.push(Bytes::from(eval(&candidate.op, x, y, env)?));
                        }
                        [a] => next.push(a.clone()),
                        _ => unreachable!("chunks(2) yields 1- or 2-element slices"),
                    }
                }
                level = next;
            }
            Ok(level.pop().expect("at least one piece"))
        }
    }
}

/// Combines two adjacent substream groups with a binary combiner (the
/// earlier group is the left argument; [`Candidate::oriented`] handles
/// swapped combiners).
fn combine_pair(
    candidate: &Candidate,
    env: &dyn RunEnv,
    earlier: &Bytes,
    later: &Bytes,
) -> Result<Bytes, EvalError> {
    let (x, y) = candidate.oriented(view(earlier)?, view(later)?);
    eval(&candidate.op, x, y, env).map(Bytes::from)
}

/// Incremental k-way combining: substreams are folded *as they arrive*
/// instead of being gathered first.
///
/// [`combine_all`] needs the complete piece list, which forces the
/// streaming executor to buffer a stage's whole output before combining —
/// exactly the barrier this type removes. Pieces are pushed in stream
/// order and the combine work happens inside [`push`](IncrementalFold::push),
/// overlapping with whatever produces the pieces; [`finish`](IncrementalFold::finish)
/// only settles the remainder.
///
/// Strategy per combiner (mirroring [`CombineStrategy::Flat`]):
///
/// * unswapped `concat` — pieces accumulate in a segment list; `finish`
///   is the single gather memcpy (zero work per push);
/// * `rerun` — pieces are gathered and the command re-executes once at
///   `finish` (pairwise rerun would re-run the command per piece on a
///   growing accumulator, O(n·k) command work);
/// * `merge` — run accumulation: every [`MERGE_RUN_ARITY`] arrivals are
///   k-way merged into one sorted run as soon as they exist, and `finish`
///   merges the runs. Each byte moves through at most two merges (versus
///   one for the all-at-once merge — that's the price of overlapping —
///   and `log k` for a pairwise tree);
/// * everything else (the structural stitches, arithmetic folds) — a
///   binary-counter tree fold: slot *i* holds a combined group of `2^i`
///   adjacent pieces, so each push performs O(1) amortized combines and
///   every byte is touched O(log k) times, matching the tree-fold cost.
///
/// All of these combiners are associative on adjacent pieces of a split
/// stream (see `strategies_agree_on_corpus_combiners` and the
/// `combine_strategies_agree_on_split_pieces` property), so the fold
/// grouping cannot change the result.
pub struct IncrementalFold<'a> {
    candidate: &'a Candidate,
    env: &'a dyn RunEnv,
    state: FoldState,
}

/// Pieces per intermediate merge run (see [`IncrementalFold`]): wide
/// enough that small piece counts degenerate to the single flat merge
/// (no redundant pass), small enough that run merging genuinely overlaps
/// with piece production on long streams.
pub const MERGE_RUN_ARITY: usize = 32;

enum FoldState {
    /// Unswapped concat: a segment list, gathered once at finish.
    Concat(Vec<Bytes>),
    /// Rerun: gather everything, one re-execution at finish.
    Gather(Vec<Bytes>),
    /// Merge: k-way merge every [`MERGE_RUN_ARITY`] pieces into a run as
    /// they arrive; finish merges the runs (earlier runs first, keeping
    /// the stability tiebreak of one flat merge).
    Merge {
        runs: Vec<Bytes>,
        pending: Vec<Bytes>,
    },
    /// Binary-counter tree: slot `i` is a combined run of `2^i` adjacent
    /// pieces (higher slots hold earlier data).
    Counter(Vec<Option<Bytes>>),
}

impl<'a> IncrementalFold<'a> {
    /// An empty fold for `candidate` (finishing immediately yields the
    /// empty stream, like [`combine_all`] on no pieces).
    pub fn new(candidate: &'a Candidate, env: &'a dyn RunEnv) -> IncrementalFold<'a> {
        let state = match &candidate.op {
            Combiner::Rec(RecOp::Concat) if !candidate.swapped => FoldState::Concat(Vec::new()),
            Combiner::Run(RunOp::Rerun) => FoldState::Gather(Vec::new()),
            Combiner::Run(RunOp::Merge(_)) => FoldState::Merge {
                runs: Vec::new(),
                pending: Vec::new(),
            },
            _ => FoldState::Counter(Vec::new()),
        };
        IncrementalFold {
            candidate,
            env,
            state,
        }
    }

    /// Folds in the next substream (empty pieces are skipped, as in
    /// [`combine_all`]). Combine errors surface immediately.
    pub fn push(&mut self, piece: Bytes) -> Result<(), EvalError> {
        if piece.is_empty() {
            return Ok(());
        }
        let (candidate, env) = (self.candidate, self.env);
        match &mut self.state {
            FoldState::Concat(segments) | FoldState::Gather(segments) => segments.push(piece),
            FoldState::Merge { runs, pending } => {
                pending.push(piece);
                if pending.len() >= MERGE_RUN_ARITY {
                    let run = combine_all(candidate, pending, env)?;
                    pending.clear();
                    runs.push(run);
                }
            }
            FoldState::Counter(slots) => {
                let mut carry = piece;
                for slot in slots.iter_mut() {
                    match slot.take() {
                        None => {
                            *slot = Some(carry);
                            return Ok(());
                        }
                        Some(earlier) => carry = combine_pair(candidate, env, &earlier, &carry)?,
                    }
                }
                slots.push(Some(carry));
            }
        }
        Ok(())
    }

    /// Settles the fold into the combined stream (empty when nothing was
    /// pushed).
    pub fn finish(self) -> Result<Bytes, EvalError> {
        let (candidate, env) = (self.candidate, self.env);
        match self.state {
            // Only constructed for unswapped concat: stream order is
            // output order.
            FoldState::Concat(segments) => Ok(kq_stream::concat_bytes(&segments)),
            FoldState::Gather(segments) => combine_all(candidate, &segments, env),
            FoldState::Merge { mut runs, pending } => {
                if !pending.is_empty() {
                    runs.push(combine_all(candidate, &pending, env)?);
                }
                combine_all(candidate, &runs, env)
            }
            FoldState::Counter(slots) => {
                // Low slots hold later data: combine upward so each slot
                // (an earlier group) becomes the left argument.
                let mut acc: Option<Bytes> = None;
                for earlier in slots.into_iter().flatten() {
                    acc = Some(match acc {
                        None => earlier,
                        Some(later) => combine_pair(candidate, env, &earlier, &later)?,
                    });
                }
                Ok(acc.unwrap_or_default())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::StructOp;
    use crate::eval::NoRunEnv;
    use kq_stream::Delim;

    struct FakeEnv;

    impl RunEnv for FakeEnv {
        fn rerun(&self, input: &str) -> Result<String, EvalError> {
            Ok(format!("f({input})"))
        }

        fn merge(&self, _flags: &[String], streams: &[&str]) -> Result<String, EvalError> {
            kq_coreutils::sort::merge_streams(&[], streams)
                .map_err(|e| EvalError::Command(e.to_string()))
        }
    }

    fn s(v: &[&str]) -> Vec<Bytes> {
        v.iter().copied().map(Bytes::from).collect()
    }

    #[test]
    fn concat_kway_is_plain_concat() {
        let c = Candidate::rec(RecOp::Concat);
        let out = combine_all(&c, &s(&["a\n", "b\n", "c\n"]), &NoRunEnv).unwrap();
        assert_eq!(out, "a\nb\nc\n");
    }

    #[test]
    fn merge_kway_merges_all_at_once() {
        let c = Candidate::run(RunOp::Merge(vec![]));
        let out = combine_all(&c, &s(&["a\nd\n", "b\n", "c\ne\n"]), &FakeEnv).unwrap();
        assert_eq!(out, "a\nb\nc\nd\ne\n");
    }

    #[test]
    fn rerun_kway_executes_once() {
        let c = Candidate::run(RunOp::Rerun);
        let out = combine_all(&c, &s(&["x\n", "y\n"]), &FakeEnv).unwrap();
        assert_eq!(out, "f(x\ny\n)");
    }

    #[test]
    fn general_combiner_folds_pairwise() {
        let c = Candidate::structural(StructOp::Stitch(RecOp::First));
        let out = combine_all(&c, &s(&["a\nb\n", "b\nc\n", "c\nd\n"]), &NoRunEnv).unwrap();
        assert_eq!(out, "a\nb\nc\nd\n");
    }

    #[test]
    fn back_add_folds_counts() {
        let c = Candidate::rec(RecOp::Back(Delim::Newline, Box::new(RecOp::Add)));
        let out = combine_all(&c, &s(&["3\n", "4\n", "5\n"]), &NoRunEnv).unwrap();
        assert_eq!(out, "12\n");
    }

    #[test]
    fn empty_pieces_are_skipped() {
        let c = Candidate::rec(RecOp::Back(Delim::Newline, Box::new(RecOp::Add)));
        let out = combine_all(&c, &s(&["3\n", "", "5\n"]), &NoRunEnv).unwrap();
        assert_eq!(out, "8\n");
    }

    #[test]
    fn single_piece_passes_through() {
        let c = Candidate::run(RunOp::Rerun);
        let out = combine_all(&c, &s(&["only\n"]), &FakeEnv).unwrap();
        assert_eq!(out, "only\n"); // no re-execution needed
    }

    #[test]
    fn no_pieces_is_empty() {
        let c = Candidate::rec(RecOp::Concat);
        assert_eq!(combine_all(&c, &[], &NoRunEnv).unwrap(), "");
    }

    /// All three strategies agree for the combiners the corpus produces:
    /// they differ only in evaluation order, and combining adjacent pieces
    /// of a split stream is associative for these operators.
    #[test]
    fn strategies_agree_on_corpus_combiners() {
        let cases: Vec<(Candidate, Vec<Bytes>)> = vec![
            (
                Candidate::rec(RecOp::Concat),
                s(&["a\n", "b\n", "c\n", "d\n", "e\n"]),
            ),
            (
                Candidate::rec(RecOp::Back(Delim::Newline, Box::new(RecOp::Add))),
                s(&["1\n", "2\n", "3\n", "4\n", "5\n"]),
            ),
            (
                Candidate::structural(StructOp::Stitch(RecOp::First)),
                s(&["a\nb\n", "b\nc\n", "c\nc\nd\n", "d\ne\n"]),
            ),
            (
                Candidate::structural(StructOp::Stitch2(Delim::Space, RecOp::Add, RecOp::First)),
                s(&[
                    "      2 a\n      1 b\n",
                    "      3 b\n",
                    "      1 b\n      4 c\n",
                ]),
            ),
        ];
        for (cand, pieces) in cases {
            let flat = combine_all_with(CombineStrategy::Flat, &cand, &pieces, &NoRunEnv).unwrap();
            let tree =
                combine_all_with(CombineStrategy::TreeFold, &cand, &pieces, &NoRunEnv).unwrap();
            let fold =
                combine_all_with(CombineStrategy::FoldLeft, &cand, &pieces, &NoRunEnv).unwrap();
            assert_eq!(flat, tree, "flat vs tree for {cand}");
            assert_eq!(flat, fold, "flat vs fold for {cand}");
        }
    }

    #[test]
    fn swapped_concat_reverses_under_every_strategy() {
        let mut c = Candidate::rec(RecOp::Concat);
        c.swapped = true;
        let pieces = s(&["a\n", "b\n", "c\n"]);
        for strat in [
            CombineStrategy::Flat,
            CombineStrategy::TreeFold,
            CombineStrategy::FoldLeft,
        ] {
            assert_eq!(
                combine_all_with(strat, &c, &pieces, &NoRunEnv).unwrap(),
                "c\nb\na\n",
                "{strat:?}"
            );
        }
    }

    #[test]
    fn fold_left_merge_stays_sorted() {
        let c = Candidate::run(RunOp::Merge(vec![]));
        let pieces = s(&["a\nd\n", "b\n", "c\ne\n"]);
        let fold = combine_all_with(CombineStrategy::FoldLeft, &c, &pieces, &FakeEnv).unwrap();
        assert_eq!(fold, "a\nb\nc\nd\ne\n");
    }

    fn incremental(c: &Candidate, pieces: &[Bytes], env: &dyn RunEnv) -> Bytes {
        let mut fold = IncrementalFold::new(c, env);
        for p in pieces {
            fold.push(p.clone()).unwrap();
        }
        fold.finish().unwrap()
    }

    #[test]
    fn incremental_fold_matches_combine_all_on_corpus_combiners() {
        let cases: Vec<(Candidate, Vec<Bytes>)> = vec![
            (
                Candidate::rec(RecOp::Concat),
                s(&["a\n", "", "b\n", "c\n", "d\n", "e\n", "f\n"]),
            ),
            (
                Candidate::rec(RecOp::Back(Delim::Newline, Box::new(RecOp::Add))),
                s(&["1\n", "2\n", "3\n", "4\n", "5\n", "6\n", "7\n"]),
            ),
            (
                Candidate::structural(StructOp::Stitch(RecOp::First)),
                s(&["a\nb\n", "b\nc\n", "c\nc\nd\n", "d\ne\n", "e\nf\n"]),
            ),
            (
                Candidate::structural(StructOp::Stitch2(Delim::Space, RecOp::Add, RecOp::First)),
                s(&[
                    "      2 a\n      1 b\n",
                    "      3 b\n",
                    "      1 b\n      4 c\n",
                ]),
            ),
        ];
        for (cand, pieces) in cases {
            let flat = combine_all(&cand, &pieces, &NoRunEnv).unwrap();
            assert_eq!(
                incremental(&cand, &pieces, &NoRunEnv),
                flat,
                "incremental vs flat for {cand}"
            );
        }
    }

    #[test]
    fn incremental_merge_matches_kway_merge() {
        let c = Candidate::run(RunOp::Merge(vec![]));
        let pieces = s(&["a\nd\n", "b\n", "", "c\ne\n", "a\nz\n"]);
        let flat = combine_all(&c, &pieces, &FakeEnv).unwrap();
        assert_eq!(incremental(&c, &pieces, &FakeEnv), flat);
    }

    #[test]
    fn incremental_merge_run_accumulation_matches_flat() {
        // More pieces than MERGE_RUN_ARITY: intermediate runs form and the
        // finish merge of runs must equal the one flat k-way merge,
        // including the stability tiebreak (duplicates across pieces).
        let c = Candidate::run(RunOp::Merge(vec![]));
        let piece_strings: Vec<String> = (0..(MERGE_RUN_ARITY * 2 + 3))
            .map(|i| {
                let a = (b'a' + (i % 26) as u8) as char;
                let b = (b'a' + ((i * 7) % 26) as u8) as char;
                let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
                format!("{lo}\n{hi}\n")
            })
            .collect();
        let pieces: Vec<Bytes> = piece_strings
            .iter()
            .map(|p| Bytes::from(p.as_str()))
            .collect();
        let flat = combine_all(&c, &pieces, &FakeEnv).unwrap();
        assert_eq!(incremental(&c, &pieces, &FakeEnv), flat);
    }

    #[test]
    fn incremental_rerun_executes_once() {
        // One re-execution over the gathered stream, not one per push.
        let c = Candidate::run(RunOp::Rerun);
        let pieces = s(&["x\n", "y\n", "z\n"]);
        assert_eq!(incremental(&c, &pieces, &FakeEnv), "f(x\ny\nz\n)");
    }

    #[test]
    fn incremental_swapped_concat_reverses() {
        let mut c = Candidate::rec(RecOp::Concat);
        c.swapped = true;
        let pieces = s(&["a\n", "b\n", "c\n"]);
        assert_eq!(incremental(&c, &pieces, &NoRunEnv), "c\nb\na\n");
    }

    #[test]
    fn incremental_empty_and_single() {
        let c = Candidate::rec(RecOp::Concat);
        assert_eq!(incremental(&c, &[], &NoRunEnv), "");
        assert_eq!(incremental(&c, &s(&["only\n"]), &NoRunEnv), "only\n");
    }
}
