//! k-way combining (paper §3.5, "Combining Multiple Substreams").
//!
//! Synthesized combiners are binary, but parallel execution produces `k`
//! output substreams. Three combiners generalize natively — `concat` is
//! `cat $*`, `merge <flags>` is `sort -m <flags> $*`, and `rerun` is one
//! re-execution over the concatenation — while every other combiner is
//! applied pairwise, folding left until one stream remains.

use crate::ast::{Candidate, Combiner, RecOp, RunOp};
use crate::eval::{eval, EvalError, RunEnv};
use crate::spill::SpillConfig;
use kq_stream::{Bytes, ReleaseCursor};

/// Text view of a substream for the string-semantic combiners; a
/// non-UTF-8 piece is a domain error, not a panic.
fn view(piece: &Bytes) -> Result<&str, EvalError> {
    piece
        .to_str()
        .map_err(|_| EvalError::Command("substream is not valid UTF-8".to_owned()))
}

/// How a binary combiner is generalized to `k` substreams.
///
/// The paper (§3.5) specifies the `Flat` behaviour — native k-way
/// implementations for `concat`/`merge`/`rerun`, pairwise application
/// "until only one substream remains" for everything else — but leaves the
/// pairwise order open. The other two strategies make that order explicit
/// so the ablation bench can measure the difference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CombineStrategy {
    /// Native k-way where available (`cat $*`, `sort -m $*`, one rerun),
    /// balanced tree fold otherwise. This is what execution uses.
    Flat,
    /// Balanced pairwise tree for *every* combiner: each byte is touched
    /// `O(log k)` times.
    TreeFold,
    /// Left fold, combining the accumulator with one piece at a time: the
    /// accumulator is re-traversed at every step (`O(n·k)` bytes for
    /// `concat`-like combiners) — the naive reading of "apply the combiner
    /// on two substreams repeatedly".
    FoldLeft,
}

/// Combines `k` parallel output substreams with the given candidate using
/// the default [`CombineStrategy::Flat`] strategy.
///
/// Empty substreams (a worker that received no lines) are skipped: they
/// contribute nothing to the combined stream, matching the behaviour of
/// the shell implementations (`cat`/`sort -m` of empty files).
///
/// Pieces arrive and leave as [`Bytes`]: a single surviving piece is
/// returned by refcount bump, k-way `concat` gathers the segments with at
/// most one memcpy ([`Rope::into_bytes`]), and `rerun` hands the gathered
/// stream to the command without an extra owned-string round trip.
pub fn combine_all(
    candidate: &Candidate,
    pieces: &[Bytes],
    env: &dyn RunEnv,
) -> Result<Bytes, EvalError> {
    combine_all_with(CombineStrategy::Flat, candidate, pieces, env)
}

/// Combines `k` substreams with an explicit [`CombineStrategy`].
pub fn combine_all_with(
    strategy: CombineStrategy,
    candidate: &Candidate,
    pieces: &[Bytes],
    env: &dyn RunEnv,
) -> Result<Bytes, EvalError> {
    let live: Vec<&Bytes> = pieces.iter().filter(|p| !p.is_empty()).collect();
    match live.as_slice() {
        [] => return Ok(Bytes::new()),
        [one] => return Ok((*one).clone()),
        _ => {}
    }
    if strategy == CombineStrategy::Flat {
        match &candidate.op {
            // concat == `cat $*`: a segment gather, no pairwise work.
            Combiner::Rec(RecOp::Concat) => {
                let mut ordered = live;
                if candidate.swapped {
                    ordered.reverse();
                }
                return Ok(kq_stream::concat_bytes(ordered));
            }
            // merge == `sort -m <flags> $*`: borrow the piece text in
            // place (no per-piece copies).
            Combiner::Run(RunOp::Merge(flags)) => {
                let views: Vec<&str> = live.iter().map(|p| view(p)).collect::<Result<_, _>>()?;
                return env.merge(flags, &views).map(Bytes::from);
            }
            // rerun == gather everything, re-run `f` once on the bytes.
            Combiner::Run(RunOp::Rerun) => {
                return env.rerun_bytes(kq_stream::concat_bytes(live));
            }
            _ => {}
        }
    }
    match strategy {
        CombineStrategy::FoldLeft => {
            let mut acc = live[0].clone();
            for piece in &live[1..] {
                let (x, y) = candidate.oriented(view(&acc)?, view(piece)?);
                acc = Bytes::from(eval(&candidate.op, x, y, env)?);
            }
            Ok(acc)
        }
        // Tree fold: touches each byte O(log k) times, matching the
        // paper's observation that pairwise application "until only one
        // substream remains" stays cheap. Leaves enter the tree as
        // refcounted slices; only combined intermediates are owned.
        CombineStrategy::Flat | CombineStrategy::TreeFold => {
            let mut level: Vec<Bytes> = live.into_iter().cloned().collect();
            while level.len() > 1 {
                let mut next = Vec::with_capacity(level.len().div_ceil(2));
                let mut it = level.chunks(2);
                for pair in &mut it {
                    match pair {
                        [a, b] => {
                            let (x, y) = candidate.oriented(view(a)?, view(b)?);
                            next.push(Bytes::from(eval(&candidate.op, x, y, env)?));
                        }
                        [a] => next.push(a.clone()),
                        _ => unreachable!("chunks(2) yields 1- or 2-element slices"),
                    }
                }
                level = next;
            }
            Ok(level.pop().expect("at least one piece"))
        }
    }
}

/// Combines two adjacent substream groups with a binary combiner (the
/// earlier group is the left argument; [`Candidate::oriented`] handles
/// swapped combiners).
fn combine_pair(
    candidate: &Candidate,
    env: &dyn RunEnv,
    earlier: &Bytes,
    later: &Bytes,
) -> Result<Bytes, EvalError> {
    let (x, y) = candidate.oriented(view(earlier)?, view(later)?);
    eval(&candidate.op, x, y, env).map(Bytes::from)
}

/// Incremental k-way combining: substreams are folded *as they arrive*
/// instead of being gathered first.
///
/// [`combine_all`] needs the complete piece list, which forces the
/// streaming executor to buffer a stage's whole output before combining —
/// exactly the barrier this type removes. Pieces are pushed in stream
/// order and the combine work happens inside [`push`](IncrementalFold::push),
/// overlapping with whatever produces the pieces; [`finish`](IncrementalFold::finish)
/// only settles the remainder.
///
/// Strategy per combiner (mirroring [`CombineStrategy::Flat`]):
///
/// * unswapped `concat` — pieces accumulate in a segment list; `finish`
///   is the single gather memcpy (zero work per push);
/// * `rerun` — pieces are gathered and the command re-executes once at
///   `finish` (pairwise rerun would re-run the command per piece on a
///   growing accumulator, O(n·k) command work);
/// * `merge` — run accumulation: arrivals are k-way merged into one
///   sorted run as soon as enough of them exist, and `finish` merges the
///   runs. Without a spill config a run forms every [`MERGE_RUN_ARITY`]
///   pieces; under one, runs are sized to the budget instead — pieces
///   accumulate until their bytes reach a quarter of
///   [`SpillConfig::budget_bytes`] (capped at [`MERGE_RUN_MAX_PIECES`]
///   pieces), so a spilling sort writes few large runs and `finish` faces
///   a small merge frontier rather than one run per arity-batch of
///   arrivals. Each byte moves through at most two merges (versus one for
///   the all-at-once merge — that's the price of overlapping — and
///   `log k` for a pairwise tree);
/// * everything else (the structural stitches, arithmetic folds) — a
///   binary-counter tree fold: slot *i* holds a combined group of `2^i`
///   adjacent pieces, so each push performs O(1) amortized combines and
///   every byte is touched O(log k) times, matching the tree-fold cost.
///   Under a spill config the slot groups are budget-accounted like merge
///   runs: a stored group that would push the resident slot bytes past
///   the budget goes to a temp file and lives in its slot as a mapped
///   slice, so `uniq -c`-style accumulators no longer grow the heap with
///   their output size.
///
/// All of these combiners are associative on adjacent pieces of a split
/// stream (see `strategies_agree_on_corpus_combiners` and the
/// `combine_strategies_agree_on_split_pieces` property), so the fold
/// grouping cannot change the result.
pub struct IncrementalFold<'a> {
    candidate: &'a Candidate,
    env: &'a dyn RunEnv,
    state: FoldState,
    spill: Option<SpillConfig>,
}

/// Pieces per intermediate merge run (see [`IncrementalFold`]) when no
/// spill budget informs the sizing: wide enough that small piece counts
/// degenerate to the single flat merge (no redundant pass), small enough
/// that run merging genuinely overlaps with piece production on long
/// streams. Also the per-wave input bound of the out-of-core run merge.
pub const MERGE_RUN_ARITY: usize = 32;

/// Ceiling on pieces per merge run under budget-derived sizing: bounds the
/// arity of each run-forming k-way merge (and its per-piece bookkeeping)
/// when the budget allows very large runs of very small pieces.
pub const MERGE_RUN_MAX_PIECES: usize = 1024;

/// The budget-derived run-size target in bytes, when a spill config is
/// present: a quarter of the budget, so a spilling fold keeps at most a
/// handful of in-progress/resident runs while still writing runs that are
/// orders of magnitude larger than arriving pieces (a 64 MiB budget makes
/// 16 MiB runs instead of one run per [`MERGE_RUN_ARITY`] chunks).
fn merge_run_target(spill: &Option<SpillConfig>) -> Option<usize> {
    spill.as_ref().map(|cfg| (cfg.budget_bytes / 4).max(1))
}

enum FoldState {
    /// Unswapped concat: a segment list, gathered once at finish.
    Concat(Vec<Bytes>),
    /// Rerun: gather everything, one re-execution at finish.
    Gather(Vec<Bytes>),
    /// Merge: k-way merge pending pieces into a run once they reach the
    /// run-size trigger — [`merge_run_target`] bytes (`pending_bytes`
    /// tracks that) under a spill config, [`MERGE_RUN_ARITY`] pieces
    /// otherwise; finish merges the runs (earlier runs first, keeping
    /// the stability tiebreak of one flat merge). Under a spill config a
    /// run that would push the heap-resident total (`heap_bytes`) past the
    /// budget goes to a temp file instead and lives in `runs` as a mapped
    /// slice; once any run has spilled (`spilled`), finish streams the
    /// final merge through a temp file too, so the heap never holds more
    /// than the budget plus one pending run.
    Merge {
        runs: Vec<Bytes>,
        pending: Vec<Bytes>,
        pending_bytes: usize,
        heap_bytes: usize,
        spilled: bool,
    },
    /// Binary-counter tree: slot `i` is a combined run of `2^i` adjacent
    /// pieces (higher slots hold earlier data). Under a spill config the
    /// stored groups are budget-accounted (`heap_bytes`) and spill to
    /// mapped slices like merge runs do.
    Counter {
        slots: Vec<Option<Bytes>>,
        heap_bytes: usize,
        spilled: bool,
    },
}

impl<'a> IncrementalFold<'a> {
    /// An empty fold for `candidate` (finishing immediately yields the
    /// empty stream, like [`combine_all`] on no pieces).
    pub fn new(candidate: &'a Candidate, env: &'a dyn RunEnv) -> IncrementalFold<'a> {
        IncrementalFold::new_with_spill(candidate, env, None)
    }

    /// Like [`new`](IncrementalFold::new), but with a spill policy: merge
    /// runs are sized to the budget ([`merge_run_target`]) and go to temp
    /// files once the heap-resident run bytes would cross
    /// `spill.budget_bytes`, and a fold that spilled streams its final
    /// merge through a temp file as well (see [`crate::spill`]).
    /// Counter-tree folds (`uniq -c` stitches, arithmetic) account their
    /// stored slot groups against the same budget and spill them as mapped
    /// slices. Only `concat`/`rerun` ignore the config — their
    /// accumulation is inherently a gather.
    pub fn new_with_spill(
        candidate: &'a Candidate,
        env: &'a dyn RunEnv,
        spill: Option<SpillConfig>,
    ) -> IncrementalFold<'a> {
        let state = match &candidate.op {
            Combiner::Rec(RecOp::Concat) if !candidate.swapped => FoldState::Concat(Vec::new()),
            Combiner::Run(RunOp::Rerun) => FoldState::Gather(Vec::new()),
            Combiner::Run(RunOp::Merge(_)) => FoldState::Merge {
                runs: Vec::new(),
                pending: Vec::new(),
                pending_bytes: 0,
                heap_bytes: 0,
                spilled: false,
            },
            _ => FoldState::Counter {
                slots: Vec::new(),
                heap_bytes: 0,
                spilled: false,
            },
        };
        IncrementalFold {
            candidate,
            env,
            state,
            spill,
        }
    }

    /// Folds in the next substream (empty pieces are skipped, as in
    /// [`combine_all`]). Combine errors surface immediately.
    pub fn push(&mut self, piece: Bytes) -> Result<(), EvalError> {
        if piece.is_empty() {
            return Ok(());
        }
        let (candidate, env) = (self.candidate, self.env);
        match &mut self.state {
            FoldState::Concat(segments) | FoldState::Gather(segments) => segments.push(piece),
            FoldState::Merge {
                runs,
                pending,
                pending_bytes,
                heap_bytes,
                spilled,
            } => {
                *pending_bytes += piece.len();
                pending.push(piece);
                let cut = match merge_run_target(&self.spill) {
                    Some(target) => {
                        *pending_bytes >= target || pending.len() >= MERGE_RUN_MAX_PIECES
                    }
                    None => pending.len() >= MERGE_RUN_ARITY,
                };
                if cut {
                    let run = combine_all(candidate, pending, env)?;
                    pending.clear();
                    *pending_bytes = 0;
                    let run = maybe_spill_run(run, &self.spill, heap_bytes, spilled)?;
                    runs.push(run);
                }
            }
            FoldState::Counter {
                slots,
                heap_bytes,
                spilled,
            } => {
                let mut carry = piece;
                for slot in slots.iter_mut() {
                    match slot.take() {
                        None => {
                            *slot = Some(store_group(carry, &self.spill, heap_bytes, spilled)?);
                            return Ok(());
                        }
                        Some(earlier) => {
                            if !earlier.is_mmap_backed() {
                                *heap_bytes = heap_bytes.saturating_sub(earlier.len());
                            }
                            carry = combine_pair(candidate, env, &earlier, &carry)?;
                        }
                    }
                }
                let carry = store_group(carry, &self.spill, heap_bytes, spilled)?;
                slots.push(Some(carry));
            }
        }
        Ok(())
    }

    /// Settles the fold into the combined stream (empty when nothing was
    /// pushed).
    pub fn finish(self) -> Result<Bytes, EvalError> {
        let IncrementalFold {
            candidate,
            env,
            state,
            spill,
        } = self;
        match state {
            // Only constructed for unswapped concat: stream order is
            // output order.
            FoldState::Concat(segments) => Ok(kq_stream::concat_bytes(&segments)),
            FoldState::Gather(segments) => combine_all(candidate, &segments, env),
            FoldState::Merge {
                mut runs,
                pending,
                pending_bytes: _,
                mut heap_bytes,
                mut spilled,
            } => {
                if !pending.is_empty() {
                    let run = combine_all(candidate, &pending, env)?;
                    let run = maybe_spill_run(run, &spill, &mut heap_bytes, &mut spilled)?;
                    runs.push(run);
                }
                if !spilled {
                    return combine_all(candidate, &runs, env);
                }
                let cfg = spill.as_ref().expect("a run spilled without a config");
                merge_spilled_runs(candidate, env, runs, cfg)
            }
            FoldState::Counter {
                slots,
                mut heap_bytes,
                mut spilled,
            } => {
                // Low slots hold later data: combine upward so each slot
                // (an earlier group) becomes the left argument. At most
                // `log k` intermediates form; each stays budget-accounted
                // so the closing combine chain cannot regrow the heap the
                // incremental pushes kept bounded.
                let mut acc: Option<Bytes> = None;
                for earlier in slots.into_iter().flatten() {
                    acc = Some(match acc {
                        None => earlier,
                        Some(later) => {
                            for consumed in [&earlier, &later] {
                                if !consumed.is_mmap_backed() {
                                    heap_bytes = heap_bytes.saturating_sub(consumed.len());
                                }
                            }
                            let combined = combine_pair(candidate, env, &earlier, &later)?;
                            store_group(combined, &spill, &mut heap_bytes, &mut spilled)?
                        }
                    });
                }
                Ok(acc.unwrap_or_default())
            }
        }
    }
}

/// Fragment granularity of the streamed spilled-run merge: how much merged
/// output buffers before a write.
const SPILL_MERGE_FRAGMENT: usize = 1 << 20;

/// How far each mapped run's release cursor trails the merge frontier.
/// This must stay small relative to a run: the merge holds a window of
/// `k × 2 × lag` resident across the `k` runs, and a lag as large as a
/// run would keep every run fully resident until the merge ends (the
/// cursor only fires once `consumed` outruns `released` by `2 × lag`).
/// 64 KiB bounds the window to a few MiB even at k ≈ 100 while still
/// batching madvise calls well above page granularity.
const SPILL_MERGE_RELEASE_LAG: usize = 1 << 16;

fn spill_err(e: std::io::Error) -> EvalError {
    EvalError::Command(format!("spill: {e}"))
}

/// Applies the spill policy to a freshly completed merge run: keep it on
/// the heap while the resident total stays under budget, otherwise write
/// it out and hand back the mapped (demand-paged, evictable) view.
fn maybe_spill_run(
    run: Bytes,
    spill: &Option<SpillConfig>,
    heap_bytes: &mut usize,
    spilled: &mut bool,
) -> Result<Bytes, EvalError> {
    let Some(cfg) = spill else {
        return Ok(run);
    };
    if heap_bytes.saturating_add(run.len()) <= cfg.budget_bytes {
        *heap_bytes += run.len();
        return Ok(run);
    }
    let mut writer = kq_io::RunWriter::create(&cfg.dir).map_err(spill_err)?;
    writer.write(view(&run)?).map_err(spill_err)?;
    cfg.metrics.record_spill(run.len() as u64);
    // Drop the heap run before mapping the file back, so the two copies
    // never coexist.
    drop(run);
    let mapped = writer.finish().map_err(spill_err)?;
    cfg.metrics.record_mapped(mapped.len() as u64);
    *spilled = true;
    Ok(mapped)
}

/// Counter-slot variant of the spill policy: a freshly stored or combined
/// group is kept on the heap while the resident slot total stays under
/// budget and otherwise written out, exactly like a merge run. Groups that
/// are already disk-backed (mapped) pass through unaccounted.
fn store_group(
    group: Bytes,
    spill: &Option<SpillConfig>,
    heap_bytes: &mut usize,
    spilled: &mut bool,
) -> Result<Bytes, EvalError> {
    if group.is_mmap_backed() {
        return Ok(group);
    }
    maybe_spill_run(group, spill, heap_bytes, spilled)
}

/// Moves the heap-resident pieces of `pieces` into one temp run file and
/// replaces each with its mapped (demand-paged, evictable) sub-slice.
/// Bytes and piece boundaries are preserved exactly — every replacement
/// views the byte range its heap copy occupied — so a later
/// [`combine_all`] over the list sees identical input. The raw-handle
/// fallback list of a selective composite fold routes through this once
/// its resident bytes cross the spill budget (see
/// `kq_synth::CompositeCombiner::incremental_with_spill`). Pieces already
/// mapped (from an earlier batch) and empty pieces are left alone.
/// Returns the number of bytes moved off the heap (0 means nothing was
/// resident and no file was created).
pub fn spill_piece_batch(pieces: &mut [Bytes], cfg: &SpillConfig) -> Result<usize, EvalError> {
    let mut spans: Vec<(usize, std::ops::Range<usize>)> = Vec::new();
    let mut total = 0usize;
    for (i, p) in pieces.iter().enumerate() {
        if p.is_empty() || p.is_mmap_backed() {
            continue;
        }
        spans.push((i, total..total + p.len()));
        total += p.len();
    }
    if total == 0 {
        return Ok(0);
    }
    let mut writer = kq_io::RunWriter::create(&cfg.dir).map_err(spill_err)?;
    for (i, _) in &spans {
        writer.write(view(&pieces[*i])?).map_err(spill_err)?;
    }
    cfg.metrics.record_spill(total as u64);
    let mapped = writer.finish().map_err(spill_err)?;
    cfg.metrics.record_mapped(mapped.len() as u64);
    for (i, span) in spans {
        pieces[i] = mapped.slice(span);
    }
    Ok(total)
}

/// The out-of-core final merge: an arity-bounded merge tree over the
/// accumulated runs, each wave streaming `env.merge_stream` fragments into
/// a fresh temp file while releasing every mapped run's consumed prefix
/// behind the merge frontier, then mapping the merged output back.
///
/// Bounding each wave at [`MERGE_RUN_ARITY`] inputs is a memory bound, not
/// a comparison-cost tweak: the kernel keeps a frontier window of pages
/// resident per *input* mapping (fault-around / large-folio mapping can
/// pin on the order of a folio per run, regardless of how politely we
/// release behind the cursors), so a flat merge over hundreds of runs
/// holds hundreds of those windows at once — O(k) residency that defeats
/// the spill budget exactly when k is large. A wave touches at most
/// `MERGE_RUN_ARITY` mappings, and each group's source runs (heap or
/// mapped) are dropped as soon as its merged output exists, so heap runs
/// also retire progressively instead of living until the very end.
///
/// Groups are contiguous and in order and `merge_stream` breaks ties by
/// stream index, so the merge tree is stable and byte-identical to the
/// flat merge. Multi-wave input (k > arity) only occurs once runs have
/// spilled, i.e. the data already outgrew the budget; the extra disk
/// round-trip per wave is the agreed price.
fn merge_spilled_runs(
    candidate: &Candidate,
    env: &dyn RunEnv,
    mut runs: Vec<Bytes>,
    cfg: &SpillConfig,
) -> Result<Bytes, EvalError> {
    let Combiner::Run(RunOp::Merge(flags)) = &candidate.op else {
        unreachable!("only merge folds spill runs");
    };
    runs.retain(|r| !r.is_empty());
    while runs.len() > 1 {
        let mut next = Vec::with_capacity(runs.len().div_ceil(MERGE_RUN_ARITY));
        while !runs.is_empty() {
            let take = runs.len().min(MERGE_RUN_ARITY);
            let group: Vec<Bytes> = runs.drain(..take).collect();
            if group.len() == 1 {
                next.extend(group);
            } else {
                next.push(merge_run_group(env, flags, &group, cfg)?);
            }
            // `group` drops here: a merged group's sources are finished
            // with, freeing their heap bytes or unmapping their files
            // before the next group starts.
        }
        runs = next;
    }
    Ok(runs.pop().unwrap_or_default())
}

/// One merge wave: streams the k-way merge of `group` into a temp file,
/// trailing a release cursor behind each input's merge frontier, and maps
/// the result back. Peak residency is O(fragment + k × release window),
/// independent of total group bytes.
fn merge_run_group(
    env: &dyn RunEnv,
    flags: &[String],
    group: &[Bytes],
    cfg: &SpillConfig,
) -> Result<Bytes, EvalError> {
    let views: Vec<&str> = group.iter().map(view).collect::<Result<_, _>>()?;
    let mut out = kq_io::RunWriter::create(&cfg.dir).map_err(spill_err)?;
    let mut cursors: Vec<ReleaseCursor> = group
        .iter()
        .map(|_| ReleaseCursor::new(SPILL_MERGE_RELEASE_LAG))
        .collect();
    env.merge_stream(
        flags,
        &views,
        SPILL_MERGE_FRAGMENT,
        &mut |frag, consumed| {
            out.write(frag).map_err(spill_err)?;
            for ((cursor, run), &done) in cursors.iter_mut().zip(group).zip(consumed) {
                cursor.advance(run, done);
            }
            Ok(())
        },
    )?;
    for (cursor, run) in cursors.iter_mut().zip(group) {
        cursor.finish(run);
    }
    cfg.metrics.record_spill(out.written() as u64);
    let merged = out.finish().map_err(spill_err)?;
    cfg.metrics.record_mapped(merged.len() as u64);
    Ok(merged)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::StructOp;
    use crate::eval::NoRunEnv;
    use kq_stream::Delim;

    struct FakeEnv;

    impl RunEnv for FakeEnv {
        fn rerun(&self, input: &str) -> Result<String, EvalError> {
            Ok(format!("f({input})"))
        }

        fn merge(&self, _flags: &[String], streams: &[&str]) -> Result<String, EvalError> {
            kq_coreutils::sort::merge_streams(&[], streams)
                .map_err(|e| EvalError::Command(e.to_string()))
        }
    }

    fn s(v: &[&str]) -> Vec<Bytes> {
        v.iter().copied().map(Bytes::from).collect()
    }

    #[test]
    fn concat_kway_is_plain_concat() {
        let c = Candidate::rec(RecOp::Concat);
        let out = combine_all(&c, &s(&["a\n", "b\n", "c\n"]), &NoRunEnv).unwrap();
        assert_eq!(out, "a\nb\nc\n");
    }

    #[test]
    fn merge_kway_merges_all_at_once() {
        let c = Candidate::run(RunOp::Merge(vec![]));
        let out = combine_all(&c, &s(&["a\nd\n", "b\n", "c\ne\n"]), &FakeEnv).unwrap();
        assert_eq!(out, "a\nb\nc\nd\ne\n");
    }

    #[test]
    fn rerun_kway_executes_once() {
        let c = Candidate::run(RunOp::Rerun);
        let out = combine_all(&c, &s(&["x\n", "y\n"]), &FakeEnv).unwrap();
        assert_eq!(out, "f(x\ny\n)");
    }

    #[test]
    fn general_combiner_folds_pairwise() {
        let c = Candidate::structural(StructOp::Stitch(RecOp::First));
        let out = combine_all(&c, &s(&["a\nb\n", "b\nc\n", "c\nd\n"]), &NoRunEnv).unwrap();
        assert_eq!(out, "a\nb\nc\nd\n");
    }

    #[test]
    fn back_add_folds_counts() {
        let c = Candidate::rec(RecOp::Back(Delim::Newline, Box::new(RecOp::Add)));
        let out = combine_all(&c, &s(&["3\n", "4\n", "5\n"]), &NoRunEnv).unwrap();
        assert_eq!(out, "12\n");
    }

    #[test]
    fn empty_pieces_are_skipped() {
        let c = Candidate::rec(RecOp::Back(Delim::Newline, Box::new(RecOp::Add)));
        let out = combine_all(&c, &s(&["3\n", "", "5\n"]), &NoRunEnv).unwrap();
        assert_eq!(out, "8\n");
    }

    #[test]
    fn single_piece_passes_through() {
        let c = Candidate::run(RunOp::Rerun);
        let out = combine_all(&c, &s(&["only\n"]), &FakeEnv).unwrap();
        assert_eq!(out, "only\n"); // no re-execution needed
    }

    #[test]
    fn no_pieces_is_empty() {
        let c = Candidate::rec(RecOp::Concat);
        assert_eq!(combine_all(&c, &[], &NoRunEnv).unwrap(), "");
    }

    /// All three strategies agree for the combiners the corpus produces:
    /// they differ only in evaluation order, and combining adjacent pieces
    /// of a split stream is associative for these operators.
    #[test]
    fn strategies_agree_on_corpus_combiners() {
        let cases: Vec<(Candidate, Vec<Bytes>)> = vec![
            (
                Candidate::rec(RecOp::Concat),
                s(&["a\n", "b\n", "c\n", "d\n", "e\n"]),
            ),
            (
                Candidate::rec(RecOp::Back(Delim::Newline, Box::new(RecOp::Add))),
                s(&["1\n", "2\n", "3\n", "4\n", "5\n"]),
            ),
            (
                Candidate::structural(StructOp::Stitch(RecOp::First)),
                s(&["a\nb\n", "b\nc\n", "c\nc\nd\n", "d\ne\n"]),
            ),
            (
                Candidate::structural(StructOp::Stitch2(Delim::Space, RecOp::Add, RecOp::First)),
                s(&[
                    "      2 a\n      1 b\n",
                    "      3 b\n",
                    "      1 b\n      4 c\n",
                ]),
            ),
        ];
        for (cand, pieces) in cases {
            let flat = combine_all_with(CombineStrategy::Flat, &cand, &pieces, &NoRunEnv).unwrap();
            let tree =
                combine_all_with(CombineStrategy::TreeFold, &cand, &pieces, &NoRunEnv).unwrap();
            let fold =
                combine_all_with(CombineStrategy::FoldLeft, &cand, &pieces, &NoRunEnv).unwrap();
            assert_eq!(flat, tree, "flat vs tree for {cand}");
            assert_eq!(flat, fold, "flat vs fold for {cand}");
        }
    }

    #[test]
    fn swapped_concat_reverses_under_every_strategy() {
        let mut c = Candidate::rec(RecOp::Concat);
        c.swapped = true;
        let pieces = s(&["a\n", "b\n", "c\n"]);
        for strat in [
            CombineStrategy::Flat,
            CombineStrategy::TreeFold,
            CombineStrategy::FoldLeft,
        ] {
            assert_eq!(
                combine_all_with(strat, &c, &pieces, &NoRunEnv).unwrap(),
                "c\nb\na\n",
                "{strat:?}"
            );
        }
    }

    #[test]
    fn fold_left_merge_stays_sorted() {
        let c = Candidate::run(RunOp::Merge(vec![]));
        let pieces = s(&["a\nd\n", "b\n", "c\ne\n"]);
        let fold = combine_all_with(CombineStrategy::FoldLeft, &c, &pieces, &FakeEnv).unwrap();
        assert_eq!(fold, "a\nb\nc\nd\ne\n");
    }

    fn incremental(c: &Candidate, pieces: &[Bytes], env: &dyn RunEnv) -> Bytes {
        let mut fold = IncrementalFold::new(c, env);
        for p in pieces {
            fold.push(p.clone()).unwrap();
        }
        fold.finish().unwrap()
    }

    #[test]
    fn incremental_fold_matches_combine_all_on_corpus_combiners() {
        let cases: Vec<(Candidate, Vec<Bytes>)> = vec![
            (
                Candidate::rec(RecOp::Concat),
                s(&["a\n", "", "b\n", "c\n", "d\n", "e\n", "f\n"]),
            ),
            (
                Candidate::rec(RecOp::Back(Delim::Newline, Box::new(RecOp::Add))),
                s(&["1\n", "2\n", "3\n", "4\n", "5\n", "6\n", "7\n"]),
            ),
            (
                Candidate::structural(StructOp::Stitch(RecOp::First)),
                s(&["a\nb\n", "b\nc\n", "c\nc\nd\n", "d\ne\n", "e\nf\n"]),
            ),
            (
                Candidate::structural(StructOp::Stitch2(Delim::Space, RecOp::Add, RecOp::First)),
                s(&[
                    "      2 a\n      1 b\n",
                    "      3 b\n",
                    "      1 b\n      4 c\n",
                ]),
            ),
        ];
        for (cand, pieces) in cases {
            let flat = combine_all(&cand, &pieces, &NoRunEnv).unwrap();
            assert_eq!(
                incremental(&cand, &pieces, &NoRunEnv),
                flat,
                "incremental vs flat for {cand}"
            );
        }
    }

    #[test]
    fn incremental_merge_matches_kway_merge() {
        let c = Candidate::run(RunOp::Merge(vec![]));
        let pieces = s(&["a\nd\n", "b\n", "", "c\ne\n", "a\nz\n"]);
        let flat = combine_all(&c, &pieces, &FakeEnv).unwrap();
        assert_eq!(incremental(&c, &pieces, &FakeEnv), flat);
    }

    #[test]
    fn incremental_merge_run_accumulation_matches_flat() {
        // More pieces than MERGE_RUN_ARITY: intermediate runs form and the
        // finish merge of runs must equal the one flat k-way merge,
        // including the stability tiebreak (duplicates across pieces).
        let c = Candidate::run(RunOp::Merge(vec![]));
        let piece_strings: Vec<String> = (0..(MERGE_RUN_ARITY * 2 + 3))
            .map(|i| {
                let a = (b'a' + (i % 26) as u8) as char;
                let b = (b'a' + ((i * 7) % 26) as u8) as char;
                let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
                format!("{lo}\n{hi}\n")
            })
            .collect();
        let pieces: Vec<Bytes> = piece_strings
            .iter()
            .map(|p| Bytes::from(p.as_str()))
            .collect();
        let flat = combine_all(&c, &pieces, &FakeEnv).unwrap();
        assert_eq!(incremental(&c, &pieces, &FakeEnv), flat);
    }

    #[test]
    fn incremental_rerun_executes_once() {
        // One re-execution over the gathered stream, not one per push.
        let c = Candidate::run(RunOp::Rerun);
        let pieces = s(&["x\n", "y\n", "z\n"]);
        assert_eq!(incremental(&c, &pieces, &FakeEnv), "f(x\ny\nz\n)");
    }

    #[test]
    fn incremental_swapped_concat_reverses() {
        let mut c = Candidate::rec(RecOp::Concat);
        c.swapped = true;
        let pieces = s(&["a\n", "b\n", "c\n"]);
        assert_eq!(incremental(&c, &pieces, &NoRunEnv), "c\nb\na\n");
    }

    #[test]
    fn incremental_empty_and_single() {
        let c = Candidate::rec(RecOp::Concat);
        assert_eq!(incremental(&c, &[], &NoRunEnv), "");
        assert_eq!(incremental(&c, &s(&["only\n"]), &NoRunEnv), "only\n");
    }

    /// A throwaway spill config over a private temp dir; the closure runs
    /// with it, then the dir is asserted empty (unlink-after-map means no
    /// run file survives its fold) and removed.
    fn with_spill_dir(tag: &str, budget: usize, f: impl FnOnce(&crate::spill::SpillConfig)) {
        let dir = std::env::temp_dir().join(format!("kq-kway-spill-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = crate::spill::SpillConfig {
            budget_bytes: budget,
            dir: dir.clone(),
            metrics: std::sync::Arc::new(crate::spill::SpillMetrics::default()),
        };
        f(&cfg);
        let leftovers = std::fs::read_dir(&dir).map(|d| d.count()).unwrap_or(0);
        std::fs::remove_dir_all(&dir).ok();
        assert_eq!(leftovers, 0, "spill dir must be clean after the fold");
    }

    fn spill_pieces(n: usize) -> Vec<Bytes> {
        (0..n)
            .map(|i| {
                let a = (b'a' + (i % 26) as u8) as char;
                let b = (b'a' + ((i * 11 + 5) % 26) as u8) as char;
                let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
                Bytes::from(format!("{lo} {i}\n{hi} {i}\n"))
            })
            .collect()
    }

    #[test]
    fn zero_budget_spills_every_run_and_matches_flat() {
        // Budget 0: the run target degenerates to one byte, so every piece
        // becomes its own spilled run and the final merge streams through
        // temp files in arity-bounded waves. Result must be byte-identical
        // to the in-memory flat merge.
        let c = Candidate::run(RunOp::Merge(vec![]));
        let pieces = spill_pieces(MERGE_RUN_ARITY * 3 + 5);
        let flat = combine_all(&c, &pieces, &FakeEnv).unwrap();
        with_spill_dir("zero", 0, |cfg| {
            let mut fold = IncrementalFold::new_with_spill(&c, &FakeEnv, Some(cfg.clone()));
            for p in &pieces {
                fold.push(p.clone()).unwrap();
            }
            assert_eq!(fold.finish().unwrap(), flat);
            let (runs, written, mapped) = cfg.metrics.snapshot();
            // One run per piece, plus the wave merges of the finish.
            assert!(runs >= pieces.len() as u64, "runs spilled: {runs}");
            assert!(written >= flat.len() as u64);
            assert!(mapped >= flat.len() as u64);
        });
    }

    #[test]
    fn budgeted_run_sizing_accumulates_pieces_into_large_runs() {
        // A small-but-nonzero budget: runs cut at budget/4 bytes, so each
        // spilled run aggregates several pieces instead of one run per
        // piece (or per MERGE_RUN_ARITY arrivals).
        let c = Candidate::run(RunOp::Merge(vec![]));
        let pieces = spill_pieces(MERGE_RUN_ARITY * 2);
        let total: usize = pieces.iter().map(Bytes::len).sum();
        let flat = combine_all(&c, &pieces, &FakeEnv).unwrap();
        with_spill_dir("sized", total / 8, |cfg| {
            let mut fold = IncrementalFold::new_with_spill(&c, &FakeEnv, Some(cfg.clone()));
            for p in &pieces {
                fold.push(p.clone()).unwrap();
            }
            assert_eq!(fold.finish().unwrap(), flat);
            let (runs, _, _) = cfg.metrics.snapshot();
            // Target = total/32: roughly 32 runs form, the over-budget
            // ones spill — strictly fewer spills than pieces proves the
            // byte-target batching, more than one proves we still spill.
            assert!(runs > 1, "expected multiple spilled runs, got {runs}");
            assert!(
                runs < pieces.len() as u64,
                "runs must batch pieces: {runs} spills for {} pieces",
                pieces.len()
            );
        });
    }

    #[test]
    fn counter_fold_spills_slot_groups_under_budget() {
        // The satellite case: a uniq -c-shaped stitch accumulator must
        // respect the spill budget instead of growing its output on the
        // heap. Budget 0 forces every stored group out; the combined
        // result (read back through mapped views) must match the
        // in-memory fold.
        let c = Candidate::structural(StructOp::Stitch2(Delim::Space, RecOp::Add, RecOp::First));
        let pieces: Vec<Bytes> = (0..40)
            .map(|i| {
                Bytes::from(format!(
                    "      2 k{:03}\n      1 k{:03}\n",
                    2 * i,
                    2 * i + 1
                ))
            })
            .collect();
        let flat = combine_all(&c, &pieces, &NoRunEnv).unwrap();
        with_spill_dir("counter", 0, |cfg| {
            let mut fold = IncrementalFold::new_with_spill(&c, &NoRunEnv, Some(cfg.clone()));
            for p in &pieces {
                fold.push(p.clone()).unwrap();
            }
            assert_eq!(fold.finish().unwrap(), flat);
            let (runs, written, _) = cfg.metrics.snapshot();
            assert!(runs > 0, "counter groups must spill at budget 0");
            assert!(written > 0);
        });
    }

    #[test]
    fn counter_fold_generous_budget_stays_in_memory() {
        let c = Candidate::structural(StructOp::Stitch(RecOp::First));
        let pieces = s(&["a\nb\n", "b\nc\n", "c\nd\n", "d\ne\n", "e\nf\n"]);
        let flat = combine_all(&c, &pieces, &NoRunEnv).unwrap();
        with_spill_dir("counter-mem", usize::MAX, |cfg| {
            let mut fold = IncrementalFold::new_with_spill(&c, &NoRunEnv, Some(cfg.clone()));
            for p in &pieces {
                fold.push(p.clone()).unwrap();
            }
            assert_eq!(fold.finish().unwrap(), flat);
            assert_eq!(cfg.metrics.snapshot(), (0, 0, 0), "no spill under budget");
        });
    }

    #[test]
    fn spill_piece_batch_preserves_bytes_and_boundaries() {
        with_spill_dir("batch", 0, |cfg| {
            let originals = ["alpha\n", "", "beta\nbeta2\n", "gamma\n"];
            let mut pieces: Vec<Bytes> = originals.iter().copied().map(Bytes::from).collect();
            let moved = spill_piece_batch(&mut pieces, cfg).unwrap();
            assert_eq!(
                moved,
                originals.iter().map(|s| s.len()).sum::<usize>(),
                "every non-empty heap piece moves"
            );
            for (piece, original) in pieces.iter().zip(originals) {
                assert_eq!(piece, original);
                assert_eq!(piece.is_mmap_backed(), !original.is_empty());
            }
            let (runs, written, mapped) = cfg.metrics.snapshot();
            assert_eq!(runs, 1, "one batch file, not one per piece");
            assert_eq!(written, moved as u64);
            assert_eq!(mapped, moved as u64);
            // A second batch over already-mapped pieces is a no-op.
            assert_eq!(spill_piece_batch(&mut pieces, cfg).unwrap(), 0);
            assert_eq!(cfg.metrics.snapshot().0, 1);
        });
    }

    #[test]
    fn spilled_fold_matches_through_the_real_command_env() {
        // CommandEnv overrides merge_stream with the true incremental
        // merge (fragments + per-run progress), which is the path the
        // executors use — cover it end to end, unique flags included.
        let command = kq_coreutils::parse_command("sort -u").unwrap();
        let ctx = kq_coreutils::ExecContext::default();
        let env = crate::eval::CommandEnv {
            command: &command,
            ctx: &ctx,
        };
        let c = Candidate::run(RunOp::Merge(vec!["-u".to_owned()]));
        let pieces: Vec<Bytes> = spill_pieces(MERGE_RUN_ARITY * 2 + 7)
            .iter()
            .map(|p| {
                // Pre-sort each piece under -u semantics (dedup by key).
                let sorted =
                    kq_coreutils::sort::merge_streams(&["-u".to_owned()], &[p.to_str().unwrap()])
                        .unwrap();
                Bytes::from(sorted)
            })
            .collect();
        let flat = combine_all(&c, &pieces, &env).unwrap();
        with_spill_dir("cmdenv", 0, |cfg| {
            let mut fold = IncrementalFold::new_with_spill(&c, &env, Some(cfg.clone()));
            for p in &pieces {
                fold.push(p.clone()).unwrap();
            }
            assert_eq!(fold.finish().unwrap(), flat);
        });
    }

    #[test]
    fn generous_budget_never_touches_disk() {
        let c = Candidate::run(RunOp::Merge(vec![]));
        let pieces = spill_pieces(MERGE_RUN_ARITY + 3);
        let flat = combine_all(&c, &pieces, &FakeEnv).unwrap();
        with_spill_dir("generous", usize::MAX, |cfg| {
            let mut fold = IncrementalFold::new_with_spill(&c, &FakeEnv, Some(cfg.clone()));
            for p in &pieces {
                fold.push(p.clone()).unwrap();
            }
            assert_eq!(fold.finish().unwrap(), flat);
            assert_eq!(cfg.metrics.snapshot(), (0, 0, 0), "no spill under budget");
        });
    }

    #[test]
    fn abandoned_spilled_fold_leaves_no_files() {
        // The cancellation path: runs spill, then the fold is dropped
        // without finish(). Mapped runs unlinked at creation — nothing to
        // clean; the assertion lives in with_spill_dir.
        let c = Candidate::run(RunOp::Merge(vec![]));
        let pieces = spill_pieces(MERGE_RUN_ARITY * 2);
        with_spill_dir("abandon", 0, |cfg| {
            let mut fold = IncrementalFold::new_with_spill(&c, &FakeEnv, Some(cfg.clone()));
            for p in &pieces {
                fold.push(p.clone()).unwrap();
            }
            let (runs, _, _) = cfg.metrics.snapshot();
            assert_eq!(
                runs,
                pieces.len() as u64,
                "budget 0 spills one run per piece before the drop"
            );
            drop(fold);
        });
    }

    proptest::proptest! {
        /// The satellite property: a spill-everything fold equals the
        /// in-memory combine_all for arbitrary sorted pieces.
        #[test]
        fn prop_spilled_merge_equals_combine_all(
            raw in proptest::collection::vec(
                proptest::collection::vec("[a-e]{0,4}", 0..6),
                0..70,
            )
        ) {
            let pieces: Vec<Bytes> = raw
                .iter()
                .map(|lines| {
                    let mut sorted: Vec<&str> = lines.iter().map(String::as_str).collect();
                    sorted.sort_by(|a, b| a.as_bytes().cmp(b.as_bytes()));
                    Bytes::from(sorted.iter().map(|l| format!("{l}\n")).collect::<String>())
                })
                .collect();
            let c = Candidate::run(RunOp::Merge(vec![]));
            let flat = combine_all(&c, &pieces, &FakeEnv).unwrap();
            let dir = std::env::temp_dir().join(format!("kq-kway-prop-{}", std::process::id()));
            let cfg = crate::spill::SpillConfig {
                budget_bytes: 0,
                dir: dir.clone(),
                metrics: std::sync::Arc::new(crate::spill::SpillMetrics::default()),
            };
            let mut fold = IncrementalFold::new_with_spill(&c, &FakeEnv, Some(cfg));
            for p in &pieces {
                fold.push(p.clone()).unwrap();
            }
            let got = fold.finish().unwrap();
            std::fs::remove_dir_all(&dir).ok();
            proptest::prop_assert_eq!(got, flat);
        }
    }
}
