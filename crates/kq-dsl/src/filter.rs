//! Batch, order-independent candidate filtering — the data-parallel core
//! of Algorithm 1.
//!
//! Plausibility (Definition 3.9) is a per-candidate predicate: whether
//! `g` reproduces `y12` on every observation. Filtering a candidate set is
//! therefore an *embarrassingly parallel* map — no candidate's verdict
//! depends on another's — and this module exposes it as such:
//! [`filter_candidates`] returns one `bool` per candidate, and
//! [`filter_candidates_partitioned`] computes the identical vector by
//! fanning contiguous partitions of the candidate set out over scoped
//! worker threads.
//!
//! The two functions are provably interchangeable: each slot `i` of the
//! result is `plausible(&candidates[i], observations, env)`, a pure
//! function of the candidate, the observation list, and the (deterministic)
//! command behind `env`. Worker count and scheduling affect only wall
//! clock, never the vector — which is what lets synthesis stay
//! deterministic given `rng_seed` regardless of `--synth-workers`
//! (pinned by `filtering_is_worker_count_invariant` below and by the
//! corpus-wide determinism suite in `tests/synth_engine.rs`).
//!
//! Elimination counts (the gradient score of Algorithm 2) likewise become
//! order-independent sums over the mask: see [`eliminated_count`].

use crate::ast::Candidate;
use crate::eval::RunEnv;
use crate::{plausible, Observation};

/// Serial batch filter: `out[i] = P(candidates[i], observations)`
/// (Definition 3.9 applied pointwise).
pub fn filter_candidates(
    candidates: &[Candidate],
    observations: &[Observation],
    env: &dyn RunEnv,
) -> Vec<bool> {
    candidates
        .iter()
        .map(|c| plausible(c, observations, env))
        .collect()
}

/// Parallel batch filter: identical output to [`filter_candidates`],
/// computed by splitting the candidate set into `workers` contiguous
/// partitions evaluated on scoped threads. Each thread writes a disjoint
/// slice of the result, so no ordering between workers is observable.
///
/// `workers <= 1` (or a candidate set smaller than two partitions) takes
/// the serial path directly.
pub fn filter_candidates_partitioned(
    candidates: &[Candidate],
    observations: &[Observation],
    env: &dyn RunEnv,
    workers: usize,
) -> Vec<bool> {
    let workers = workers.max(1).min(candidates.len());
    if workers <= 1 {
        return filter_candidates(candidates, observations, env);
    }
    let chunk = candidates.len().div_ceil(workers);
    let mut mask = vec![false; candidates.len()];
    std::thread::scope(|scope| {
        let mut rest: &mut [bool] = &mut mask;
        for part in candidates.chunks(chunk) {
            let (slots, tail) = rest.split_at_mut(part.len());
            rest = tail;
            scope.spawn(move || {
                for (slot, candidate) in slots.iter_mut().zip(part) {
                    *slot = plausible(candidate, observations, env);
                }
            });
        }
    });
    mask
}

/// Number of candidates a filter mask eliminates (`false` slots) — the
/// gradient score of Algorithm 2 as a parallel-safe reduction: the sum is
/// associative and commutative, so partitioned filtering followed by this
/// count equals the serial fold exactly.
pub fn eliminated_count(mask: &[bool]) -> usize {
    mask.iter().filter(|keep| !**keep).count()
}

/// Drops the eliminated candidates in place, preserving order: keeps
/// `alive[i]` iff `mask[i]`. The surviving order is the enumeration
/// order, exactly as a serial `retain` over the same predicate leaves it.
pub fn retain_by_mask(alive: &mut Vec<Candidate>, mask: &[bool]) {
    debug_assert_eq!(alive.len(), mask.len());
    let mut keep = mask.iter();
    alive.retain(|_| *keep.next().expect("mask length matches"));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{RecOp, StructOp};
    use crate::eval::NoRunEnv;

    fn candidates() -> Vec<Candidate> {
        vec![
            Candidate::rec(RecOp::Concat),
            Candidate::rec(RecOp::Add),
            Candidate::rec(RecOp::First),
            Candidate::rec(RecOp::Second),
            Candidate::structural(StructOp::Stitch(RecOp::First)),
            Candidate {
                op: crate::Combiner::Rec(RecOp::First),
                swapped: true,
            },
        ]
    }

    fn observations() -> Vec<Observation> {
        vec![
            Observation::new("a\n", "b\n", "a\nb\n"),
            Observation::new("a\nb\n", "b\nc\n", "a\nb\nc\n"),
        ]
    }

    #[test]
    fn serial_mask_matches_pointwise_plausibility() {
        let cands = candidates();
        let obs = observations();
        let mask = filter_candidates(&cands, &obs, &NoRunEnv);
        for (i, c) in cands.iter().enumerate() {
            assert_eq!(mask[i], plausible(c, &obs, &NoRunEnv), "candidate {c}");
        }
    }

    #[test]
    fn filtering_is_worker_count_invariant() {
        let cands = candidates();
        let obs = observations();
        let serial = filter_candidates(&cands, &obs, &NoRunEnv);
        for workers in [1, 2, 3, 4, 7, 64] {
            let parallel = filter_candidates_partitioned(&cands, &obs, &NoRunEnv, workers);
            assert_eq!(parallel, serial, "workers={workers}");
        }
    }

    #[test]
    fn empty_inputs_are_fine() {
        assert!(filter_candidates_partitioned(&[], &observations(), &NoRunEnv, 4).is_empty());
        // No observations: everything is vacuously plausible.
        let cands = candidates();
        let mask = filter_candidates_partitioned(&cands, &[], &NoRunEnv, 4);
        assert!(mask.iter().all(|&b| b));
    }

    #[test]
    fn eliminated_count_is_the_false_count() {
        assert_eq!(eliminated_count(&[true, false, true, false, false]), 3);
        assert_eq!(eliminated_count(&[]), 0);
    }

    #[test]
    fn retain_by_mask_preserves_order() {
        let mut alive = candidates();
        let survivors = [true, false, true, false, true, false];
        retain_by_mask(&mut alive, &survivors);
        let shown: Vec<String> = alive.iter().map(|c| c.to_string()).collect();
        assert_eq!(
            shown,
            vec!["(concat a b)", "(first a b)", "((stitch first) a b)"]
        );
    }
}
