//! Legal domains `L(g)` (paper Definition B.1).
//!
//! Plausibility (Definition 3.9) requires `y1, y2 ∈ L(g)` *before*
//! evaluation: a combiner is discarded outright when an observation falls
//! outside its domain. The definitions here mirror Definition B.1, with one
//! documented relaxation: `stitch2`/`offset` padding may be empty (GNU
//! `uniq -c` emits no padding for counts of eight or more digits).

use crate::ast::{Combiner, RecOp, RunOp, StructOp};
use kq_stream::{del_pad, split_first, Delim};

/// `y ∈ L(g)`.
pub fn in_domain(g: &Combiner, y: &str) -> bool {
    match g {
        Combiner::Rec(b) => rec_in_domain(b, y),
        Combiner::Struct(s) => struct_in_domain(s, y),
        // L(rerun_f) = legal inputs for f, L(merge) = legal inputs for
        // unixMerge: any string; failures surface as evaluation errors.
        Combiner::Run(RunOp::Rerun) | Combiner::Run(RunOp::Merge(_)) => {
            let _ = y;
            true
        }
    }
}

/// True when `L(g)` is every string — [`in_domain`] is constantly `true`.
///
/// Universal-domain combiners (`concat`, `first`, `second`, `rerun`,
/// `merge`) can never be deselected by a composite's first-member-whose-
/// domain-admits-all-pieces rule: when such a combiner leads a composite,
/// it is the selected member for *any* piece list. Incremental folds use
/// this to commit to the primary member without retaining raw piece
/// handles for a fallback that cannot be selected.
pub fn is_universal(g: &Combiner) -> bool {
    matches!(
        g,
        Combiner::Rec(RecOp::Concat | RecOp::First | RecOp::Second)
            | Combiner::Run(RunOp::Rerun | RunOp::Merge(_))
    )
}

pub(crate) fn rec_in_domain(b: &RecOp, y: &str) -> bool {
    match b {
        RecOp::Add => !y.is_empty() && y.bytes().all(|c| c.is_ascii_digit()),
        RecOp::Concat | RecOp::First | RecOp::Second => true,
        RecOp::Front(d, b) => match y.strip_prefix(d.as_char()) {
            Some(rest) => rec_in_domain(b, rest),
            None => false,
        },
        RecOp::Back(d, b) => match y.strip_suffix(d.as_char()) {
            Some(rest) => rec_in_domain(b, rest),
            None => false,
        },
        RecOp::Fuse(d, b) => {
            let parts: Vec<&str> = y.split(d.as_char()).collect();
            parts.len() >= 2
                && !parts.first().unwrap().is_empty()
                && !parts.last().unwrap().is_empty()
                && parts.iter().all(|p| rec_in_domain(b, p))
        }
    }
}

fn struct_in_domain(s: &StructOp, y: &str) -> bool {
    if y == "\n" {
        // All three structural domains include the empty stream.
        return true;
    }
    if !y.ends_with('\n') {
        return false;
    }
    match s {
        StructOp::Stitch(b) => kq_stream::lines_of(y).all(|l| rec_in_domain(b, l)),
        StructOp::Stitch2(d, b1, b2) => kq_stream::lines_of(y).all(|l| {
            table_line(*d, l)
                .map(|(h, t)| rec_in_domain(b1, h) && rec_in_domain(b2, t))
                .unwrap_or(false)
        }),
        StructOp::Offset(d, b) => kq_stream::lines_of(y).all(|l| {
            if l.is_empty() {
                // L(offset) admits nil lines.
                return true;
            }
            table_line(*d, l)
                .map(|(h, _t)| rec_in_domain(b, h))
                .unwrap_or(false)
        }),
    }
}

/// Decomposes a padded table line `pad ++ h ++ d ++ t`, requiring `d ∉ h`.
/// Returns `None` when the field delimiter is absent.
fn table_line(d: Delim, line: &str) -> Option<(&str, &str)> {
    let (_pad, rest) = del_pad(line);
    let (h, t) = split_first(d.as_char(), rest);
    t.map(|t| (h, t))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Combiner as C, RecOp as R, StructOp as S};

    #[test]
    fn add_domain_is_digit_runs() {
        let g = C::Rec(R::Add);
        assert!(in_domain(&g, "0123"));
        assert!(!in_domain(&g, ""));
        assert!(!in_domain(&g, "12\n"));
        assert!(!in_domain(&g, "-2"));
    }

    #[test]
    fn concat_domain_is_everything() {
        let g = C::Rec(R::Concat);
        assert!(in_domain(&g, ""));
        assert!(in_domain(&g, "any\nthing"));
    }

    #[test]
    fn back_add_domain() {
        let g = C::Rec(R::Back(Delim::Newline, Box::new(R::Add)));
        assert!(in_domain(&g, "42\n"));
        assert!(!in_domain(&g, "42"));
        assert!(!in_domain(&g, "4 2\n"));
        // wc -l output is exactly this shape.
        assert!(in_domain(&g, "0\n"));
    }

    #[test]
    fn fuse_domain_requires_delimiter_and_nonempty_ends() {
        let g = C::Rec(R::Fuse(Delim::Space, Box::new(R::Add)));
        assert!(in_domain(&g, "1 2 3"));
        assert!(!in_domain(&g, "123")); // k >= 2 required
        assert!(!in_domain(&g, " 1")); // first piece empty
        assert!(!in_domain(&g, "1 ")); // last piece empty
        assert!(!in_domain(&g, "1 x")); // piece outside L(add)
    }

    #[test]
    fn stitch_domain_lines_in_child_domain() {
        let g = C::Struct(S::Stitch(R::First));
        assert!(in_domain(&g, "a\nb\n"));
        assert!(in_domain(&g, "\n"));
        assert!(!in_domain(&g, "a\nb")); // not a stream
        let g_add = C::Struct(S::Stitch(R::Add));
        assert!(in_domain(&g_add, "1\n23\n"));
        assert!(!in_domain(&g_add, "1\nx\n"));
    }

    #[test]
    fn stitch2_domain_requires_table_lines() {
        let g = C::Struct(S::Stitch2(Delim::Space, R::Add, R::First));
        assert!(in_domain(&g, "      4 word\n      9 other\n"));
        assert!(in_domain(&g, "\n"));
        assert!(!in_domain(&g, "word\n")); // no field delimiter
        assert!(!in_domain(&g, "      x word\n")); // first field not numeric
    }

    #[test]
    fn offset_domain_admits_empty_lines() {
        let g = C::Struct(S::Offset(Delim::Space, R::Add));
        assert!(in_domain(&g, "3 a\n\n4 b\n"));
        assert!(!in_domain(&g, "bare\n"));
    }

    #[test]
    fn run_ops_accept_everything() {
        assert!(in_domain(&C::Run(RunOp::Rerun), "anything"));
        assert!(in_domain(&C::Run(RunOp::Merge(vec![])), ""));
    }

    #[test]
    fn universal_domains_are_exactly_the_unrestricted_ops() {
        assert!(is_universal(&C::Rec(R::Concat)));
        assert!(is_universal(&C::Rec(R::First)));
        assert!(is_universal(&C::Rec(R::Second)));
        assert!(is_universal(&C::Run(RunOp::Rerun)));
        assert!(is_universal(&C::Run(RunOp::Merge(vec!["-rn".into()]))));
        assert!(!is_universal(&C::Rec(R::Add)));
        assert!(!is_universal(&C::Rec(R::Back(
            Delim::Newline,
            Box::new(R::Add)
        ))));
        assert!(!is_universal(&C::Struct(S::Stitch(R::First))));
    }
}
