//! A stable text encoding for candidates — the wire format of the
//! persistent combiner cache.
//!
//! The `Display` forms in [`crate::ast`] follow the paper's notation and
//! are for humans; this codec is for round-tripping. Every candidate
//! encodes to one whitespace-separated token line and decodes back to an
//! identical value ([`decode_candidate`]`(`[`encode_candidate`]`(c)) ==
//! Ok(c)`, property-tested over the full enumeration in the lemmas suite).
//! Decoding is strict: unknown tokens, wrong arity, or trailing garbage
//! all fail, so a corrupted cache line is rejected rather than guessed at.
//!
//! Grammar (prefix notation, one token per operator):
//!
//! ```text
//! candidate := ("ab" | "ba") op            # argument orientation
//! op        := "add" | "concat" | "first" | "second"
//!            | ("front"|"back"|"fuse") delim rec
//!            | "stitch" rec
//!            | "stitch2" delim rec rec
//!            | "offset" delim rec
//!            | "rerun"
//!            | "merge" count flag*         # flags percent-escaped
//! delim     := "nl" | "tab" | "sp" | "comma"
//! ```

use crate::ast::{Candidate, Combiner, RecOp, RunOp, StructOp};
use kq_stream::Delim;

/// Encodes one candidate as a single line of whitespace-separated tokens
/// (no newline).
pub fn encode_candidate(candidate: &Candidate) -> String {
    let mut out = String::new();
    out.push_str(if candidate.swapped { "ba" } else { "ab" });
    encode_op(&candidate.op, &mut out);
    out
}

/// Decodes a line produced by [`encode_candidate`]. Strict: every token
/// must be consumed and well-formed.
pub fn decode_candidate(line: &str) -> Result<Candidate, String> {
    let mut tokens = line.split_ascii_whitespace();
    let swapped = match tokens.next() {
        Some("ab") => false,
        Some("ba") => true,
        other => return Err(format!("bad orientation token {other:?}")),
    };
    let op = decode_op(&mut tokens)?;
    if let Some(extra) = tokens.next() {
        return Err(format!("trailing token {extra:?}"));
    }
    Ok(Candidate { op, swapped })
}

fn encode_op(op: &Combiner, out: &mut String) {
    match op {
        Combiner::Rec(b) => encode_rec(b, out),
        Combiner::Struct(StructOp::Stitch(b)) => {
            out.push_str(" stitch");
            encode_rec(b, out);
        }
        Combiner::Struct(StructOp::Stitch2(d, b1, b2)) => {
            out.push_str(" stitch2 ");
            out.push_str(delim_name(*d));
            encode_rec(b1, out);
            encode_rec(b2, out);
        }
        Combiner::Struct(StructOp::Offset(d, b)) => {
            out.push_str(" offset ");
            out.push_str(delim_name(*d));
            encode_rec(b, out);
        }
        Combiner::Run(RunOp::Rerun) => out.push_str(" rerun"),
        Combiner::Run(RunOp::Merge(flags)) => {
            out.push_str(&format!(" merge {}", flags.len()));
            for flag in flags {
                out.push(' ');
                out.push_str(&escape_token(flag));
            }
        }
    }
}

fn encode_rec(b: &RecOp, out: &mut String) {
    match b {
        RecOp::Add => out.push_str(" add"),
        RecOp::Concat => out.push_str(" concat"),
        RecOp::First => out.push_str(" first"),
        RecOp::Second => out.push_str(" second"),
        RecOp::Front(d, child) | RecOp::Back(d, child) | RecOp::Fuse(d, child) => {
            out.push(' ');
            out.push_str(match b {
                RecOp::Front(..) => "front",
                RecOp::Back(..) => "back",
                _ => "fuse",
            });
            out.push(' ');
            out.push_str(delim_name(*d));
            encode_rec(child, out);
        }
    }
}

fn decode_op<'a>(tokens: &mut impl Iterator<Item = &'a str>) -> Result<Combiner, String> {
    let head = tokens.next().ok_or("missing operator token")?;
    Ok(match head {
        "stitch" => Combiner::Struct(StructOp::Stitch(decode_rec(tokens)?)),
        "stitch2" => {
            let d = decode_delim(tokens)?;
            Combiner::Struct(StructOp::Stitch2(
                d,
                decode_rec(tokens)?,
                decode_rec(tokens)?,
            ))
        }
        "offset" => {
            let d = decode_delim(tokens)?;
            Combiner::Struct(StructOp::Offset(d, decode_rec(tokens)?))
        }
        "rerun" => Combiner::Run(RunOp::Rerun),
        "merge" => {
            let count: usize = tokens
                .next()
                .ok_or("merge: missing flag count")?
                .parse()
                .map_err(|_| "merge: bad flag count".to_owned())?;
            let mut flags = Vec::with_capacity(count);
            for _ in 0..count {
                let raw = tokens.next().ok_or("merge: missing flag")?;
                flags.push(unescape_token(raw)?);
            }
            Combiner::Run(RunOp::Merge(flags))
        }
        rec => Combiner::Rec(decode_rec_head(rec, tokens)?),
    })
}

fn decode_rec<'a>(tokens: &mut impl Iterator<Item = &'a str>) -> Result<RecOp, String> {
    let head = tokens.next().ok_or("missing RecOp token")?;
    decode_rec_head(head, tokens)
}

fn decode_rec_head<'a>(
    head: &str,
    tokens: &mut impl Iterator<Item = &'a str>,
) -> Result<RecOp, String> {
    Ok(match head {
        "add" => RecOp::Add,
        "concat" => RecOp::Concat,
        "first" => RecOp::First,
        "second" => RecOp::Second,
        "front" | "back" | "fuse" => {
            let d = decode_delim(tokens)?;
            let child = Box::new(decode_rec(tokens)?);
            match head {
                "front" => RecOp::Front(d, child),
                "back" => RecOp::Back(d, child),
                _ => RecOp::Fuse(d, child),
            }
        }
        other => return Err(format!("unknown RecOp token {other:?}")),
    })
}

fn delim_name(d: Delim) -> &'static str {
    match d {
        Delim::Newline => "nl",
        Delim::Tab => "tab",
        Delim::Space => "sp",
        Delim::Comma => "comma",
    }
}

fn decode_delim<'a>(tokens: &mut impl Iterator<Item = &'a str>) -> Result<Delim, String> {
    match tokens.next() {
        Some("nl") => Ok(Delim::Newline),
        Some("tab") => Ok(Delim::Tab),
        Some("sp") => Ok(Delim::Space),
        Some("comma") => Ok(Delim::Comma),
        other => Err(format!("bad delimiter token {other:?}")),
    }
}

/// Percent-escapes a token so it contains no whitespace, control bytes,
/// `%`, or `;` (the cache file's candidate separator). Lossless over
/// arbitrary strings.
pub fn escape_token(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len());
    for b in raw.bytes() {
        if b <= 0x20 || b >= 0x7f || b == b'%' || b == b';' {
            out.push('%');
            out.push_str(&format!("{b:02x}"));
        } else {
            out.push(b as char);
        }
    }
    out
}

/// Reverses [`escape_token`]; fails on malformed escapes or invalid UTF-8.
pub fn unescape_token(escaped: &str) -> Result<String, String> {
    let bytes = escaped.as_bytes();
    let mut out: Vec<u8> = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            let hex = bytes
                .get(i + 1..i + 3)
                .ok_or_else(|| format!("truncated escape in {escaped:?}"))?;
            let hex = std::str::from_utf8(hex).map_err(|_| "non-ASCII escape".to_owned())?;
            out.push(u8::from_str_radix(hex, 16).map_err(|_| format!("bad escape %{hex}"))?);
            i += 3;
        } else {
            out.push(bytes[i]);
            i += 1;
        }
    }
    String::from_utf8(out).map_err(|_| format!("escaped token {escaped:?} is not UTF-8"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(c: &Candidate) {
        let line = encode_candidate(c);
        let back = decode_candidate(&line).unwrap_or_else(|e| panic!("{line:?}: {e}"));
        assert_eq!(&back, c, "through {line:?}");
    }

    #[test]
    fn representative_candidates_roundtrip() {
        roundtrip(&Candidate::rec(RecOp::Concat));
        roundtrip(&Candidate {
            op: Combiner::Rec(RecOp::Second),
            swapped: true,
        });
        roundtrip(&Candidate::rec(RecOp::Back(
            Delim::Newline,
            Box::new(RecOp::Fuse(Delim::Space, Box::new(RecOp::Add))),
        )));
        roundtrip(&Candidate::structural(StructOp::Stitch(RecOp::First)));
        roundtrip(&Candidate::structural(StructOp::Stitch2(
            Delim::Space,
            RecOp::Add,
            RecOp::First,
        )));
        roundtrip(&Candidate::structural(StructOp::Offset(
            Delim::Tab,
            RecOp::Add,
        )));
        roundtrip(&Candidate::run(RunOp::Rerun));
        roundtrip(&Candidate::run(RunOp::Merge(vec![])));
        roundtrip(&Candidate::run(RunOp::Merge(vec![
            "-rn".to_owned(),
            "-k1,2 %;".to_owned(), // space, percent, semicolon all escape
        ])));
    }

    #[test]
    fn full_enumeration_roundtrips() {
        // Every candidate the enumerator can emit survives the codec.
        let config = crate::EnumConfig {
            delims: vec![Delim::Newline, Delim::Space, Delim::Tab, Delim::Comma],
            max_size: 6,
            merge_flags: vec!["-rn".to_owned()],
        };
        let (candidates, _) = crate::enumerate_candidates(&config);
        assert!(candidates.len() > 1000, "space too small to be convincing");
        for c in &candidates {
            roundtrip(c);
        }
    }

    #[test]
    fn corrupted_lines_are_rejected() {
        for bad in [
            "",
            "ab",
            "xy concat",
            "ab frobnicate",
            "ab front concat",   // missing delimiter
            "ab front nl",       // missing child
            "ab concat extra",   // trailing garbage
            "ab merge",          // missing count
            "ab merge 2 -r",     // missing flag
            "ab merge one -r",   // non-numeric count
            "ab stitch2 sp add", // missing second child
        ] {
            assert!(decode_candidate(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn escape_roundtrips_hostile_tokens() {
        for raw in ["", "-rn", "a b", "100%;", "\t\n\u{1f}", "naïve"] {
            assert_eq!(unescape_token(&escape_token(raw)).unwrap(), raw);
            let escaped = escape_token(raw);
            assert!(!escaped.contains(char::is_whitespace));
            assert!(!escaped.contains(';'));
        }
        assert!(unescape_token("%zz").is_err());
        assert!(unescape_token("%2").is_err());
    }
}
