//! The KumQuat combiner DSL (paper Figure 3):
//!
//! ```text
//! g ∈ Combiner_f := b | s | r
//! b ∈ RecOp      := add | concat | first | second
//!                 | front d b | back d b | fuse d b
//! s ∈ StructOp   := stitch b | stitch2 d b1 b2 | offset d b
//! r ∈ RunOp_f    := rerun_f | merge <flags>
//! d ∈ Delim      := '\n' | '\t' | ' ' | ','
//! ```
//!
//! A combiner is a binary operation over the *outputs* of two command
//! instances; a correct combiner `g` for command `f` satisfies
//! `f(x1 ++ x2) = g(f(x1), f(x2))` for all input streams.
//!
//! This crate provides the AST ([`ast`]), the big-step evaluation semantics
//! of Figure 6 ([`eval`]), the legal-domain predicate `L(g)` of Definition
//! B.1 ([`domain`]), combiner size and candidate enumeration ([`enumerate`]
//! — reproducing the paper's per-command search-space counts exactly), the
//! representative combiners and observation-sufficiency predicates of
//! Table 2 and Definitions B.11–B.15 ([`repr`]), and k-way combining for
//! `k > 2` parallel substreams ([`kway`], paper §3.5).
//!
//! ```
//! use kq_dsl::ast::{Combiner, RecOp, StructOp};
//! use kq_dsl::eval::{eval, NoRunEnv};
//! use kq_dsl::Delim;
//!
//! // The `uniq -c` combiner: merge boundary records whose keys agree.
//! let g = Combiner::Struct(StructOp::Stitch2(Delim::Space, RecOp::Add, RecOp::First));
//! let y1 = "      2 apple\n      1 beta\n";
//! let y2 = "      3 beta\n      1 cat\n";
//! let combined = eval(&g, y1, y2, &NoRunEnv).unwrap();
//! assert_eq!(combined, "      2 apple\n      4 beta\n      1 cat\n");
//!
//! // Size (Definition 3.6) and the legal domain L(g) (Definition B.1).
//! assert_eq!(g.size(), 5);
//! assert!(kq_dsl::domain::in_domain(&g, y1));
//! assert!(!kq_dsl::domain::in_domain(&g, "unpadded words\n"));
//! ```

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod codec;
pub mod domain;
pub mod enumerate;
pub mod eval;
pub mod filter;
pub mod kway;
pub mod repr;
pub mod spill;

pub use ast::{Candidate, Combiner, RecOp, RunOp, StructOp};
pub use codec::{decode_candidate, encode_candidate};
pub use enumerate::{enumerate_candidates, EnumConfig, SpaceBreakdown};
pub use eval::{CommandEnv, EvalError, RunEnv};
pub use filter::{
    eliminated_count, filter_candidates, filter_candidates_partitioned, retain_by_mask,
};
pub use kq_stream::Delim;
pub use kway::{combine_all, combine_all_with, CombineStrategy, IncrementalFold};
pub use spill::{SpillConfig, SpillMetrics, SpillPolicy};

/// An observation `⟨y1, y2, y12⟩ = ⟨f(x1), f(x2), f(x1 ++ x2)⟩`
/// (paper Definition 3.4/3.5).
///
/// `Hash` lets the synthesis loop dedup observations through a hashed
/// seen-set (the content fingerprint is the hash; equality resolves any
/// collision exactly) instead of a quadratic `contains` scan.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Observation {
    /// `f(x1)`.
    pub y1: String,
    /// `f(x2)`.
    pub y2: String,
    /// `f(x1 ++ x2)`.
    pub y12: String,
}

impl Observation {
    /// Convenience constructor.
    pub fn new(y1: impl Into<String>, y2: impl Into<String>, y12: impl Into<String>) -> Self {
        Observation {
            y1: y1.into(),
            y2: y2.into(),
            y12: y12.into(),
        }
    }
}

/// `P(g, Y)` — plausibility (Definition 3.9): `g` is plausible for the
/// observations iff every `y1, y2` lies in `L(g)` and `g y1 y2` evaluates
/// exactly to `y12`.
pub fn plausible(candidate: &Candidate, observations: &[Observation], env: &dyn RunEnv) -> bool {
    observations.iter().all(|o| {
        let (a, b) = candidate.oriented(&o.y1, &o.y2);
        domain::in_domain(&candidate.op, a)
            && domain::in_domain(&candidate.op, b)
            && matches!(eval::eval(&candidate.op, a, b, env), Ok(v) if v == o.y12)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use eval::NoRunEnv;

    #[test]
    fn plausibility_requires_domain_membership() {
        // `add` on outputs that are not digit runs is implausible even when
        // concatenation would match.
        let cand = Candidate::rec(RecOp::Add);
        let obs = vec![Observation::new("a\n", "b\n", "a\nb\n")];
        assert!(!plausible(&cand, &obs, &NoRunEnv));
    }

    #[test]
    fn concat_plausible_for_mapping_outputs() {
        let cand = Candidate::rec(RecOp::Concat);
        let obs = vec![
            Observation::new("a\n", "b\n", "a\nb\n"),
            Observation::new("x\ny\n", "z\n", "x\ny\nz\n"),
        ];
        assert!(plausible(&cand, &obs, &NoRunEnv));
    }

    #[test]
    fn concat_rejected_by_counterexample() {
        // The `uniq`-style boundary merge defeats concat.
        let cand = Candidate::rec(RecOp::Concat);
        let obs = vec![Observation::new("a\nb\n", "b\nc\n", "a\nb\nc\n")];
        assert!(!plausible(&cand, &obs, &NoRunEnv));
    }

    #[test]
    fn swapped_candidate_orients_arguments() {
        let cand = Candidate {
            op: Combiner::Rec(RecOp::First),
            swapped: true,
        };
        // (first b a) == y2.
        let obs = vec![Observation::new("l\n", "r\n", "r\n")];
        assert!(plausible(&cand, &obs, &NoRunEnv));
    }
}
