//! Big-step evaluation of combiners (paper Figure 6).
//!
//! Evaluation either produces the combined string or fails with a *domain
//! error* — the analogue of a rule's premises not matching. Candidate
//! filtering treats both a failure and a wrong result as grounds to discard
//! the candidate.

use crate::ast::{Combiner, RecOp, RunOp, StructOp};
use kq_stream::{
    add_pad, del_back, del_front, del_pad, split_first, split_first_line, split_last_line,
    split_last_nonempty_line,
};

/// An evaluation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// The arguments fall outside the rule premises (`L(g)` violation or a
    /// structural mismatch like differing `fuse` arity).
    Domain(&'static str),
    /// A `rerun`/`merge` execution failed.
    Command(String),
}

impl std::fmt::Display for EvalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EvalError::Domain(m) => write!(f, "domain error: {m}"),
            EvalError::Command(m) => write!(f, "command error: {m}"),
        }
    }
}

impl std::error::Error for EvalError {}

/// The fragment consumer for [`RunEnv::merge_stream`]: receives each
/// merged line-aligned fragment plus, per input stream, the count of bytes
/// the merge has consumed from it so far.
pub type MergeStreamSink<'a> = dyn FnMut(&str, &[usize]) -> Result<(), EvalError> + 'a;

/// The environment needed by `RunOp` combiners: how to re-run the command
/// `f` and how to invoke `unixMerge`.
///
/// `Sync` is a supertrait so one environment can serve concurrent
/// candidate filtering ([`crate::filter`]): partitions of a candidate set
/// are evaluated on worker threads that share the `&dyn RunEnv`. Both
/// built-in environments qualify ([`NoRunEnv`] is stateless;
/// [`CommandEnv`] borrows a `Send + Sync` command and context), and the
/// requirement is what makes `&dyn RunEnv: Send`.
pub trait RunEnv: Sync {
    /// `rerun_f`: execute `f` on the given input.
    fn rerun(&self, input: &str) -> Result<String, EvalError>;

    /// `unixMerge <flags>`: merge pre-sorted streams (`sort -m <flags>`).
    fn merge(&self, flags: &[String], streams: &[&str]) -> Result<String, EvalError>;

    /// Byte-plane `rerun_f`: execute `f` on a shared byte slice without
    /// round-tripping through owned strings. The default shim copies;
    /// command-backed environments override it with a zero-copy hand-off.
    fn rerun_bytes(&self, input: kq_stream::Bytes) -> Result<kq_stream::Bytes, EvalError> {
        let text = input
            .to_str()
            .map_err(|_| EvalError::Command("substream is not valid UTF-8".to_owned()))?;
        self.rerun(text).map(kq_stream::Bytes::from)
    }

    /// Streaming `unixMerge <flags>`: merge pre-sorted streams, handing
    /// the output to `sink` in line-aligned fragments of roughly
    /// `fragment_bytes` together with, per stream, the byte offset the
    /// merge has consumed so far. The out-of-core fold uses the offsets to
    /// release mapped run pages behind the merge frontier and the
    /// fragments to write the merged output to disk, so neither the runs
    /// nor the result need ever be fully resident. The default shim does
    /// one flat merge and calls the sink once with everything consumed;
    /// command-backed environments override it with the true incremental
    /// merge.
    fn merge_stream(
        &self,
        flags: &[String],
        streams: &[&str],
        fragment_bytes: usize,
        sink: &mut MergeStreamSink,
    ) -> Result<(), EvalError> {
        let _ = fragment_bytes;
        let merged = self.merge(flags, streams)?;
        let consumed: Vec<usize> = streams.iter().map(|s| s.len()).collect();
        sink(&merged, &consumed)
    }
}

/// A [`RunEnv`] for contexts where `RunOp` combiners cannot occur (pure
/// RecOp/StructOp evaluation, unit tests). `rerun` and `merge` fail.
pub struct NoRunEnv;

impl RunEnv for NoRunEnv {
    fn rerun(&self, _input: &str) -> Result<String, EvalError> {
        Err(EvalError::Command("rerun unavailable".to_owned()))
    }

    fn merge(&self, _flags: &[String], _streams: &[&str]) -> Result<String, EvalError> {
        Err(EvalError::Command("merge unavailable".to_owned()))
    }
}

/// A [`RunEnv`] backed by an in-process [`kq_coreutils::Command`].
pub struct CommandEnv<'a> {
    /// The black-box command `f`.
    pub command: &'a kq_coreutils::Command,
    /// Its execution context (virtual filesystem).
    pub ctx: &'a kq_coreutils::ExecContext,
}

impl RunEnv for CommandEnv<'_> {
    fn rerun(&self, input: &str) -> Result<String, EvalError> {
        self.command
            .run_str(input, self.ctx)
            .map_err(|e| EvalError::Command(e.to_string()))
    }

    fn merge(&self, flags: &[String], streams: &[&str]) -> Result<String, EvalError> {
        kq_coreutils::sort::merge_streams(flags, streams)
            .map_err(|e| EvalError::Command(e.to_string()))
    }

    fn rerun_bytes(&self, input: kq_stream::Bytes) -> Result<kq_stream::Bytes, EvalError> {
        self.command
            .run(input, self.ctx)
            .map_err(|e| EvalError::Command(e.to_string()))
    }

    fn merge_stream(
        &self,
        flags: &[String],
        streams: &[&str],
        fragment_bytes: usize,
        sink: &mut MergeStreamSink,
    ) -> Result<(), EvalError> {
        // The sink's own error must survive the round-trip through the
        // command layer's error type, so stash it and restore on the way
        // out instead of stringifying it.
        let mut sink_err: Option<EvalError> = None;
        let res =
            kq_coreutils::sort::merge_streams_to(flags, streams, fragment_bytes, &mut |f, c| {
                sink(f, c).map_err(|e| {
                    sink_err = Some(e);
                    kq_coreutils::CmdError::new("sort", "merge sink failed")
                })
            });
        res.map_err(|e| {
            sink_err
                .take()
                .unwrap_or_else(|| EvalError::Command(e.to_string()))
        })
    }
}

/// Evaluates `g y1 y2` per Figure 6.
pub fn eval(g: &Combiner, y1: &str, y2: &str, env: &dyn RunEnv) -> Result<String, EvalError> {
    match g {
        Combiner::Rec(b) => eval_rec(b, y1, y2),
        Combiner::Struct(s) => eval_struct(s, y1, y2),
        Combiner::Run(RunOp::Rerun) => {
            let mut joined = String::with_capacity(y1.len() + y2.len());
            joined.push_str(y1);
            joined.push_str(y2);
            env.rerun(&joined)
        }
        Combiner::Run(RunOp::Merge(flags)) => env.merge(flags, &[y1, y2]),
    }
}

pub(crate) fn eval_rec(b: &RecOp, y1: &str, y2: &str) -> Result<String, EvalError> {
    match b {
        RecOp::Add => {
            let parse = |s: &str| -> Result<i64, EvalError> {
                if s.is_empty() || !s.bytes().all(|c| c.is_ascii_digit()) {
                    return Err(EvalError::Domain("add expects a digit run"));
                }
                s.parse().map_err(|_| EvalError::Domain("add overflow"))
            };
            Ok((parse(y1)? + parse(y2)?).to_string())
        }
        RecOp::Concat => {
            let mut out = String::with_capacity(y1.len() + y2.len());
            out.push_str(y1);
            out.push_str(y2);
            Ok(out)
        }
        RecOp::First => Ok(y1.to_owned()),
        RecOp::Second => Ok(y2.to_owned()),
        RecOp::Front(d, b) => {
            let d = d.as_char();
            let t1 = del_front(d, y1).ok_or(EvalError::Domain("front: missing delimiter"))?;
            let t2 = del_front(d, y2).ok_or(EvalError::Domain("front: missing delimiter"))?;
            let v = eval_rec(b, t1, t2)?;
            let mut out = String::with_capacity(v.len() + 1);
            out.push(d);
            out.push_str(&v);
            Ok(out)
        }
        RecOp::Back(d, b) => {
            let d = d.as_char();
            let t1 = del_back(d, y1).ok_or(EvalError::Domain("back: missing delimiter"))?;
            let t2 = del_back(d, y2).ok_or(EvalError::Domain("back: missing delimiter"))?;
            let mut out = eval_rec(b, t1, t2)?;
            out.push(d);
            Ok(out)
        }
        RecOp::Fuse(d, b) => {
            let d = d.as_char();
            let p1: Vec<&str> = y1.split(d).collect();
            let p2: Vec<&str> = y2.split(d).collect();
            if p1.len() < 2 {
                return Err(EvalError::Domain("fuse: delimiter absent"));
            }
            if p1.len() != p2.len() {
                return Err(EvalError::Domain("fuse: piece counts differ"));
            }
            let mut out = String::with_capacity(y1.len() + y2.len());
            for (i, (a, c)) in p1.iter().zip(p2.iter()).enumerate() {
                if i > 0 {
                    out.push(d);
                }
                out.push_str(&eval_rec(b, a, c)?);
            }
            Ok(out)
        }
    }
}

fn eval_struct(s: &StructOp, y1: &str, y2: &str) -> Result<String, EvalError> {
    match s {
        StructOp::Stitch(b) => {
            // Figure 6 short-circuits a bare "\n" to concatenation; we let
            // it flow through the general rule instead, which compares the
            // empty boundary line like any other. This is required for the
            // paper's own §3.4 claim that (stitch first) is correct for
            // `uniq`: with the short-circuit, x1 = "\n", x2 = "\na\n" is a
            // counterexample (uniq merges the boundary empties; the
            // short-circuit would not). See DESIGN.md.
            if !y1.ends_with('\n') || !y2.ends_with('\n') {
                return Err(EvalError::Domain("stitch: arguments must be streams"));
            }
            let (pre, l1) = split_last_line(y1);
            let (l2, post) = split_first_line(y2);
            if l1 != l2 {
                return Ok(format!("{y1}{y2}"));
            }
            let v = eval_rec(b, l1, l2)?;
            let mut out = String::with_capacity(y1.len() + y2.len());
            if let Some(pre) = pre {
                out.push_str(pre);
                out.push('\n');
            }
            out.push_str(&v);
            out.push('\n');
            out.push_str(post);
            Ok(out)
        }
        StructOp::Stitch2(d, b1, b2) => {
            if y1 == "\n" || y2 == "\n" {
                return Ok(format!("{y1}{y2}"));
            }
            if !y1.ends_with('\n') || !y2.ends_with('\n') {
                return Err(EvalError::Domain("stitch2: arguments must be streams"));
            }
            let d = d.as_char();
            let (pre, l1) = split_last_line(y1);
            let (l2, post) = split_first_line(y2);
            let (p1, rest1) = del_pad(l1);
            let (_p2, rest2) = del_pad(l2);
            let (h1, t1) = split_first(d, rest1);
            let (h2, t2) = split_first(d, rest2);
            let (Some(t1), Some(t2)) = (t1, t2) else {
                return Err(EvalError::Domain("stitch2: missing field delimiter"));
            };
            if t1 != t2 {
                return Ok(format!("{y1}{y2}"));
            }
            let h = eval_rec(b1, h1, h2)?;
            let t = eval_rec(b2, t1, t2)?;
            // addPad: keep the first field right-aligned to the column it
            // occupied in l1 (GNU `uniq -c`-style alignment).
            let width = p1 + h1.chars().count();
            let v = format!("{}{}{}", add_pad(width, &h), d, t);
            let mut out = String::with_capacity(y1.len() + y2.len());
            if let Some(pre) = pre {
                out.push_str(pre);
                out.push('\n');
            }
            out.push_str(&v);
            out.push('\n');
            out.push_str(post);
            Ok(out)
        }
        StructOp::Offset(d, b) => {
            if !y1.ends_with('\n') || !y2.ends_with('\n') {
                return Err(EvalError::Domain("offset: arguments must be streams"));
            }
            let d = d.as_char();
            let (_, l1) = split_last_nonempty_line(y1);
            let Some(l1) = l1 else {
                return Err(EvalError::Domain("offset: y1 has no non-empty line"));
            };
            let (_, rest1) = del_pad(l1);
            let (h1, _) = split_first(d, rest1);
            // helper d b: rewrite the first field of every line of y2.
            let mut out = String::with_capacity(y1.len() + y2.len());
            out.push_str(y1);
            for line in kq_stream::lines_of(y2) {
                if line.is_empty() {
                    out.push('\n');
                    continue;
                }
                let (p2, rest2) = del_pad(line);
                let (h2, t2) = split_first(d, rest2);
                let Some(t2) = t2 else {
                    return Err(EvalError::Domain("offset: missing field delimiter"));
                };
                let h = eval_rec(b, h1, h2)?;
                let width = p2 + h2.chars().count();
                out.push_str(&add_pad(width, &h));
                out.push(d);
                out.push_str(t2);
                out.push('\n');
            }
            Ok(out)
        }
    }
}

/// Samples a value in `L(g1) ∩ L(g2)` and checks Definition B.7
/// (equivalence by intersection) on the given pairs: both evaluate and
/// agree on every pair that lies in both domains. Returns the number of
/// pairs actually exercised.
pub fn check_equiv_by_intersection(
    g1: &Combiner,
    g2: &Combiner,
    pairs: &[(String, String)],
    env: &dyn RunEnv,
) -> Result<usize, String> {
    let mut exercised = 0;
    for (a, b) in pairs {
        let in_both = crate::domain::in_domain(g1, a)
            && crate::domain::in_domain(g1, b)
            && crate::domain::in_domain(g2, a)
            && crate::domain::in_domain(g2, b);
        if !in_both {
            continue;
        }
        exercised += 1;
        let v1 = eval(g1, a, b, env).map_err(|e| format!("{g1} failed on {a:?},{b:?}: {e}"))?;
        let v2 = eval(g2, a, b, env).map_err(|e| format!("{g2} failed on {a:?},{b:?}: {e}"))?;
        if v1 != v2 {
            return Err(format!(
                "{g1} and {g2} disagree on ({a:?}, {b:?}): {v1:?} vs {v2:?}"
            ));
        }
    }
    Ok(exercised)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Combiner as C, RecOp as R, StructOp as S};
    use kq_stream::Delim;

    fn rec(b: R, y1: &str, y2: &str) -> Result<String, EvalError> {
        eval(&C::Rec(b), y1, y2, &NoRunEnv)
    }

    #[test]
    fn add_rule() {
        assert_eq!(rec(R::Add, "4", "9").unwrap(), "13");
        assert_eq!(rec(R::Add, "007", "01").unwrap(), "8");
        assert!(rec(R::Add, "4x", "9").is_err());
        assert!(rec(R::Add, "", "9").is_err());
        assert!(rec(R::Add, "-4", "9").is_err());
    }

    #[test]
    fn concat_first_second_rules() {
        assert_eq!(rec(R::Concat, "ab", "cd").unwrap(), "abcd");
        assert_eq!(rec(R::First, "ab", "cd").unwrap(), "ab");
        assert_eq!(rec(R::Second, "ab", "cd").unwrap(), "cd");
    }

    #[test]
    fn front_back_rules() {
        let back_add = R::Back(Delim::Newline, Box::new(R::Add));
        assert_eq!(rec(back_add.clone(), "4\n", "9\n").unwrap(), "13\n");
        assert!(rec(back_add, "4", "9\n").is_err());
        let front_concat = R::Front(Delim::Space, Box::new(R::Concat));
        assert_eq!(rec(front_concat, " ab", " cd").unwrap(), " abcd");
    }

    #[test]
    fn fuse_rule() {
        // wc-style triple counts fused by spaces.
        let fuse_add = R::Fuse(Delim::Space, Box::new(R::Add));
        assert_eq!(
            rec(fuse_add.clone(), "1 2 3", "10 20 30").unwrap(),
            "11 22 33"
        );
        assert!(rec(fuse_add.clone(), "1 2", "1 2 3").is_err());
        assert!(rec(fuse_add, "123", "456").is_err()); // no delimiter
    }

    #[test]
    fn nested_back_fuse_add() {
        // (back '\n' (fuse ' ' add)) — the default `wc` combiner.
        let g = R::Back(
            Delim::Newline,
            Box::new(R::Fuse(Delim::Space, Box::new(R::Add))),
        );
        assert_eq!(rec(g, "1 2 6\n", "3 4 5\n").unwrap(), "4 6 11\n");
    }

    #[test]
    fn stitch_merges_equal_boundary_lines() {
        let g = C::Struct(S::Stitch(R::First));
        // uniq: ... b | b ... -> single b.
        assert_eq!(
            eval(&g, "a\nb\n", "b\nc\n", &NoRunEnv).unwrap(),
            "a\nb\nc\n"
        );
        // Distinct boundary lines concatenate.
        assert_eq!(
            eval(&g, "a\nb\n", "c\nd\n", &NoRunEnv).unwrap(),
            "a\nb\nc\nd\n"
        );
    }

    #[test]
    fn stitch_single_line_streams() {
        let g = C::Struct(S::Stitch(R::First));
        assert_eq!(eval(&g, "b\n", "b\n", &NoRunEnv).unwrap(), "b\n");
        assert_eq!(eval(&g, "b\n", "b\nz\n", &NoRunEnv).unwrap(), "b\nz\n");
    }

    #[test]
    fn stitch_empty_stream_concatenates() {
        let g = C::Struct(S::Stitch(R::First));
        assert_eq!(eval(&g, "\n", "x\n", &NoRunEnv).unwrap(), "\nx\n");
        assert_eq!(eval(&g, "x\n", "\n", &NoRunEnv).unwrap(), "x\n\n");
    }

    #[test]
    fn stitch_merges_empty_boundary_lines() {
        // The uniq case that rules out Figure 6's bare-newline
        // short-circuit: empty boundary lines merge like any other.
        let g = C::Struct(S::Stitch(R::First));
        assert_eq!(eval(&g, "\n", "\nx\n", &NoRunEnv).unwrap(), "\nx\n");
        assert_eq!(eval(&g, "a\n\n", "\nb\n", &NoRunEnv).unwrap(), "a\n\nb\n");
    }

    #[test]
    fn stitch2_adds_counts_and_keeps_padding() {
        // The `uniq -c` combiner: (stitch2 ' ' add first).
        let g = C::Struct(S::Stitch2(Delim::Space, R::Add, R::First));
        let y1 = "      2 alpha\n      4 word\n";
        let y2 = "      9 word\n      1 beta\n";
        assert_eq!(
            eval(&g, y1, y2, &NoRunEnv).unwrap(),
            "      2 alpha\n     13 word\n      1 beta\n"
        );
    }

    #[test]
    fn stitch2_distinct_tails_concatenate() {
        let g = C::Struct(S::Stitch2(Delim::Space, R::Add, R::First));
        let y1 = "      4 word\n";
        let y2 = "      9 other\n";
        assert_eq!(
            eval(&g, y1, y2, &NoRunEnv).unwrap(),
            "      4 word\n      9 other\n"
        );
    }

    #[test]
    fn stitch2_padding_overflow_widens() {
        let g = C::Struct(S::Stitch2(Delim::Space, R::Add, R::First));
        let y1 = "9999999 w\n";
        let y2 = "      1 w\n";
        assert_eq!(eval(&g, y1, y2, &NoRunEnv).unwrap(), "10000000 w\n");
    }

    #[test]
    fn offset_adjusts_first_fields() {
        // (offset ' ' add): shift y2's counts by y1's final count —
        // the `xargs -L 1 wc -l`-style running adjustment.
        let g = C::Struct(S::Offset(Delim::Space, R::Add));
        let y1 = "3 a.txt\n10 b.txt\n";
        let y2 = "4 c.txt\n1 d.txt\n";
        assert_eq!(
            eval(&g, y1, y2, &NoRunEnv).unwrap(),
            "3 a.txt\n10 b.txt\n14 c.txt\n11 d.txt\n"
        );
    }

    #[test]
    fn offset_second_is_concat_on_tables() {
        let g = C::Struct(S::Offset(Delim::Space, R::Second));
        let y1 = "3 a\n";
        let y2 = "4 b\n5 c\n";
        assert_eq!(eval(&g, y1, y2, &NoRunEnv).unwrap(), "3 a\n4 b\n5 c\n");
    }

    #[test]
    fn offset_keeps_empty_lines() {
        let g = C::Struct(S::Offset(Delim::Space, R::Second));
        assert_eq!(
            eval(&g, "1 x\n", "\n2 y\n", &NoRunEnv).unwrap(),
            "1 x\n\n2 y\n"
        );
    }

    #[test]
    fn equiv_by_intersection_example1() {
        // Example 1 of the appendix: (front d concat) ≡∩ (back d concat).
        let g1 = C::Rec(R::Front(Delim::Space, Box::new(R::Concat)));
        let g2 = C::Rec(R::Back(Delim::Space, Box::new(R::Concat)));
        let pairs = vec![
            (" a ".to_owned(), " b ".to_owned()),
            (" x y ".to_owned(), " z ".to_owned()),
        ];
        let n = check_equiv_by_intersection(&g1, &g2, &pairs, &NoRunEnv).unwrap();
        assert_eq!(n, 2);
    }

    #[test]
    fn equiv_by_intersection_stitch_forms() {
        // (stitch2 d first first) ≡∩ (stitch first).
        let g1 = C::Struct(S::Stitch2(Delim::Space, R::First, R::First));
        let g2 = C::Struct(S::Stitch(R::First));
        let pairs = vec![
            (" 1 w\n".to_owned(), " 1 w\n".to_owned()),
            (" 1 w\n".to_owned(), " 2 z\n".to_owned()),
        ];
        // Both defined on padded-table streams; they agree wherever both
        // are defined.
        let n = check_equiv_by_intersection(&g1, &g2, &pairs, &NoRunEnv).unwrap();
        assert!(n >= 1);
    }

    #[test]
    fn disagreement_is_detected() {
        let g1 = C::Rec(R::First);
        let g2 = C::Rec(R::Second);
        let pairs = vec![("x".to_owned(), "y".to_owned())];
        assert!(check_equiv_by_intersection(&g1, &g2, &pairs, &NoRunEnv).is_err());
    }
}
