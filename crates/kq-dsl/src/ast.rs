//! Combiner AST (paper Figure 3) and combiner size (Definition 3.6).

use kq_stream::Delim;
use std::fmt;

/// Recursive operators `b ∈ RecOp`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum RecOp {
    /// Numeric addition of two digit-run strings.
    Add,
    /// String concatenation.
    Concat,
    /// Select the first argument.
    First,
    /// Select the second argument.
    Second,
    /// Strip delimiter `d` from the front of both arguments, apply the
    /// child, re-attach `d` in front.
    Front(Delim, Box<RecOp>),
    /// Strip `d` from the back, apply the child, re-attach at the back.
    Back(Delim, Box<RecOp>),
    /// Split both arguments on `d` into equally many pieces, apply the
    /// child piecewise, re-join with `d`.
    Fuse(Delim, Box<RecOp>),
}

/// Structural operators `s ∈ StructOp` — combiners conditioned on the
/// values at the `y1`/`y2` boundary.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum StructOp {
    /// Compare `y1`'s last line with `y2`'s first; when equal, merge them
    /// with the child operator.
    Stitch(RecOp),
    /// Like `stitch` but the lines are padded two-field records
    /// (`pad count d rest`): when the *rest* fields agree, combine the
    /// first fields with `b1` and the rests with `b2`, preserving padding.
    Stitch2(Delim, RecOp, RecOp),
    /// Use the first field of `y1`'s last non-empty line to adjust the
    /// first field of every line of `y2`.
    Offset(Delim, RecOp),
}

/// Command-executing operators `r ∈ RunOp_f`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum RunOp {
    /// Re-run the command `f` on `y1 ++ y2`.
    Rerun,
    /// `sort -m <flags>`: merge two pre-sorted streams.
    Merge(Vec<String>),
}

/// A combiner `g ∈ Combiner_f`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Combiner {
    /// A recursive operator.
    Rec(RecOp),
    /// A structural (boundary-conditioned) operator.
    Struct(StructOp),
    /// A command-executing operator.
    Run(RunOp),
}

impl RecOp {
    /// Number of grammar-production expansions in this subtree.
    pub fn expansions(&self) -> usize {
        match self {
            RecOp::Add | RecOp::Concat | RecOp::First | RecOp::Second => 1,
            RecOp::Front(_, b) | RecOp::Back(_, b) | RecOp::Fuse(_, b) => 1 + b.expansions(),
        }
    }
}

impl Combiner {
    /// Number of grammar-production expansions (used by Definition 3.6).
    pub fn expansions(&self) -> usize {
        match self {
            Combiner::Rec(b) => b.expansions(),
            Combiner::Struct(StructOp::Stitch(b)) => 1 + b.expansions(),
            Combiner::Struct(StructOp::Stitch2(_, b1, b2)) => 1 + b1.expansions() + b2.expansions(),
            Combiner::Struct(StructOp::Offset(_, b)) => 1 + b.expansions(),
            Combiner::Run(_) => 1,
        }
    }

    /// `|g|` — combiner size (Definition 3.6): two (for the two stream
    /// arguments) plus the number of production expansions.
    pub fn size(&self) -> usize {
        2 + self.expansions()
    }

    /// The operator class, in the priority order used when constructing
    /// composite combiners (paper §3.2): RecOp first, then StructOp, then
    /// RunOp.
    pub fn class(&self) -> CombinerClass {
        match self {
            Combiner::Rec(_) => CombinerClass::Rec,
            Combiner::Struct(_) => CombinerClass::Struct,
            Combiner::Run(_) => CombinerClass::Run,
        }
    }

    /// True when this combiner is plain string concatenation — the
    /// precondition for intermediate-combiner elimination (Theorem 5).
    pub fn is_concat(&self) -> bool {
        matches!(self, Combiner::Rec(RecOp::Concat))
    }
}

/// The three operator classes of the DSL.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CombinerClass {
    /// Recursive operators (`add`, `concat`, selections, delimiters).
    Rec,
    /// Structural operators (`stitch`, `stitch2`, `offset`).
    Struct,
    /// Command-executing operators (`rerun`, `merge`).
    Run,
}

/// A candidate in the search space: a combiner plus its argument order.
/// The enumerator emits both `(g a b)` and `(g b a)` — Table 10 lists
/// swapped plausible combiners such as `(second b a)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Candidate {
    /// The combiner expression.
    pub op: Combiner,
    /// When true, the candidate evaluates `g(y2, y1)`.
    pub swapped: bool,
}

impl Candidate {
    /// An unswapped RecOp candidate.
    pub fn rec(op: RecOp) -> Candidate {
        Candidate {
            op: Combiner::Rec(op),
            swapped: false,
        }
    }

    /// An unswapped StructOp candidate.
    pub fn structural(op: StructOp) -> Candidate {
        Candidate {
            op: Combiner::Struct(op),
            swapped: false,
        }
    }

    /// An unswapped RunOp candidate.
    pub fn run(op: RunOp) -> Candidate {
        Candidate {
            op: Combiner::Run(op),
            swapped: false,
        }
    }

    /// Orders the argument pair according to the candidate's orientation.
    pub fn oriented<'a>(&self, y1: &'a str, y2: &'a str) -> (&'a str, &'a str) {
        if self.swapped {
            (y2, y1)
        } else {
            (y1, y2)
        }
    }

    /// `|g|` of the underlying combiner (orientation does not affect size).
    pub fn size(&self) -> usize {
        self.op.size()
    }
}

impl fmt::Display for RecOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecOp::Add => write!(f, "add"),
            RecOp::Concat => write!(f, "concat"),
            RecOp::First => write!(f, "first"),
            RecOp::Second => write!(f, "second"),
            RecOp::Front(d, b) => write!(f, "(front {d} {b})"),
            RecOp::Back(d, b) => write!(f, "(back {d} {b})"),
            RecOp::Fuse(d, b) => write!(f, "(fuse {d} {b})"),
        }
    }
}

impl fmt::Display for StructOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StructOp::Stitch(b) => write!(f, "(stitch {b})"),
            StructOp::Stitch2(d, b1, b2) => write!(f, "(stitch2 {d} {b1} {b2})"),
            StructOp::Offset(d, b) => write!(f, "(offset {d} {b})"),
        }
    }
}

impl fmt::Display for RunOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunOp::Rerun => write!(f, "rerun"),
            RunOp::Merge(flags) if flags.is_empty() => write!(f, "merge"),
            RunOp::Merge(flags) => write!(f, "merge({})", flags.join(" ")),
        }
    }
}

impl fmt::Display for Combiner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Combiner::Rec(b) => b.fmt(f),
            Combiner::Struct(s) => s.fmt(f),
            Combiner::Run(r) => r.fmt(f),
        }
    }
}

impl fmt::Display for Candidate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.swapped {
            write!(f, "({} b a)", self.op)
        } else {
            write!(f, "({} a b)", self.op)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn back_add() -> Combiner {
        Combiner::Rec(RecOp::Back(Delim::Newline, Box::new(RecOp::Add)))
    }

    #[test]
    fn sizes_match_paper_examples() {
        // Example 2 of the appendix: |g_a| = 3, |g_fbfa| = 6, |g_saf| = 5.
        assert_eq!(Combiner::Rec(RecOp::Add).size(), 3);
        let fbfa = Combiner::Rec(RecOp::Front(
            Delim::Newline,
            Box::new(RecOp::Back(
                Delim::Space,
                Box::new(RecOp::Fuse(Delim::Tab, Box::new(RecOp::Add))),
            )),
        ));
        assert_eq!(fbfa.size(), 6);
        let saf = Combiner::Struct(StructOp::Stitch2(Delim::Space, RecOp::Add, RecOp::First));
        assert_eq!(saf.size(), 5);
    }

    #[test]
    fn run_op_sizes() {
        assert_eq!(Combiner::Run(RunOp::Rerun).size(), 3);
        assert_eq!(Combiner::Run(RunOp::Merge(vec![])).size(), 3);
    }

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(back_add().to_string(), "(back '\\n' add)");
        let saf = Combiner::Struct(StructOp::Stitch2(Delim::Space, RecOp::Add, RecOp::First));
        assert_eq!(saf.to_string(), "(stitch2 ' ' add first)");
        let cand = Candidate {
            op: Combiner::Rec(RecOp::Second),
            swapped: true,
        };
        assert_eq!(cand.to_string(), "(second b a)");
    }

    #[test]
    fn class_priority_order() {
        assert!(CombinerClass::Rec < CombinerClass::Struct);
        assert!(CombinerClass::Struct < CombinerClass::Run);
    }

    #[test]
    fn concat_detection_for_theorem5() {
        assert!(Combiner::Rec(RecOp::Concat).is_concat());
        assert!(!Combiner::Rec(RecOp::Front(Delim::Newline, Box::new(RecOp::Concat))).is_concat());
        assert!(!Combiner::Run(RunOp::Rerun).is_concat());
    }

    #[test]
    fn oriented_swaps() {
        let c = Candidate {
            op: Combiner::Rec(RecOp::First),
            swapped: true,
        };
        assert_eq!(c.oriented("x", "y"), ("y", "x"));
        let c = Candidate::rec(RecOp::First);
        assert_eq!(c.oriented("x", "y"), ("x", "y"));
    }
}
