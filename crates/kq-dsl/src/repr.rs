//! Representative combiners (Definition B.11) and the observation-
//! sufficiency predicates of Table 2 and Definitions B.13–B.15.
//!
//! `E(g, Y)` is a conservative predicate: when it holds, the observation
//! set `Y` is rich enough that every plausible candidate in the same class
//! is equivalent-by-intersection to the correct combiner `g` (Theorems
//! 1–4). The synthesizer uses these predicates in tests and diagnostics to
//! certify that its generated inputs were sufficient.

use crate::ast::{Combiner, RecOp, StructOp};
use crate::Observation;
use kq_stream::{del_pad, split_first, split_first_line, split_last_line, Delim};

/// `G_rec` — the representative RecOp combiners (Definition B.11),
/// instantiated with a delimiter alphabet.
pub fn g_rec(delims: &[Delim]) -> Vec<Combiner> {
    let mut out = vec![
        Combiner::Rec(RecOp::Add),
        Combiner::Rec(RecOp::Concat),
        Combiner::Rec(RecOp::First),
        Combiner::Rec(RecOp::Second),
    ];
    for &d in delims {
        out.push(Combiner::Rec(RecOp::Back(d, Box::new(RecOp::Add))));
        out.push(Combiner::Rec(RecOp::Fuse(d, Box::new(RecOp::Add))));
        out.push(Combiner::Rec(RecOp::Front(d, Box::new(RecOp::Concat))));
        for &d2 in delims {
            out.push(Combiner::Rec(RecOp::Back(
                d,
                Box::new(RecOp::Fuse(d2, Box::new(RecOp::Add))),
            )));
            for &d3 in delims {
                out.push(Combiner::Rec(RecOp::Front(
                    d,
                    Box::new(RecOp::Back(
                        d2,
                        Box::new(RecOp::Fuse(d3, Box::new(RecOp::Add))),
                    )),
                )));
            }
        }
    }
    out
}

/// `G_struct` — the representative StructOp combiners (Definition B.11).
pub fn g_struct(delims: &[Delim]) -> Vec<Combiner> {
    let mut out = vec![Combiner::Struct(StructOp::Stitch(RecOp::First))];
    for &d in delims {
        out.push(Combiner::Struct(StructOp::Stitch2(
            d,
            RecOp::Add,
            RecOp::First,
        )));
        out.push(Combiner::Struct(StructOp::Offset(d, RecOp::Add)));
    }
    out
}

fn non_delim_nonzero(c: char) -> bool {
    !Delim::is_delim_char(c) && c != '0'
}

/// `E(g_a, Y)`: some `y1` and some `y2` are not all-zero digit runs.
pub fn e_add(obs: &[Observation]) -> bool {
    obs.iter().any(|o| !o.y1.chars().all(|c| c == '0'))
        && obs.iter().any(|o| !o.y2.chars().all(|c| c == '0'))
}

/// `E(g_c, Y)`: some `y1` and some `y2` are non-empty.
pub fn e_concat(obs: &[Observation]) -> bool {
    obs.iter().any(|o| !o.y1.is_empty()) && obs.iter().any(|o| !o.y2.is_empty())
}

/// `E(g_f, Y)`: some observation has `y1 ≠ y2`, and some `y2` contains a
/// character outside `Delim ∪ {'0'}`.
pub fn e_first(obs: &[Observation]) -> bool {
    obs.iter().any(|o| o.y1 != o.y2) && obs.iter().any(|o| o.y2.chars().any(non_delim_nonzero))
}

/// `E(g_s, Y)` — symmetric to [`e_first`].
pub fn e_second(obs: &[Observation]) -> bool {
    obs.iter().any(|o| o.y1 != o.y2) && obs.iter().any(|o| o.y1.chars().any(non_delim_nonzero))
}

/// `E(g_ba, Y)`: strip the trailing delimiter from every component, then
/// require `E(g_a)` on the residue. Observations that do not carry the
/// delimiter are dropped (the predicate is conservative).
pub fn e_back_add(d: Delim, obs: &[Observation]) -> bool {
    let stripped: Vec<Observation> = obs
        .iter()
        .filter_map(|o| {
            Some(Observation::new(
                o.y1.strip_suffix(d.as_char())?,
                o.y2.strip_suffix(d.as_char())?,
                o.y12.strip_suffix(d.as_char())?,
            ))
        })
        .collect();
    !stripped.is_empty() && e_add(&stripped)
}

/// `E(g_sf, Y)` — conditions for `(stitch first)` (Table 2): a boundary
/// observation whose shared boundary line starts and ends with characters
/// outside `Delim ∪ {'0'}`, plus (when the outputs are tables) an
/// observation whose boundary first-fields differ.
pub fn e_stitch_first(obs: &[Observation]) -> bool {
    let boundary_ok = obs.iter().any(|o| {
        let (_, l1) = split_last_line(&o.y1);
        let (l2, _) = split_first_line(&o.y2);
        let (_, depadded) = del_pad(l1);
        l1 == l2
            && depadded.chars().next().is_some_and(non_delim_nonzero)
            && l1.chars().last().is_some_and(non_delim_nonzero)
    });
    if !boundary_ok {
        return false;
    }
    for d in Delim::ALL {
        if obs_table_shaped(d, obs) {
            let heads_differ = obs.iter().any(|o| {
                let (_, l1) = split_last_line(&o.y1);
                let (l2, _) = split_first_line(&o.y2);
                let (h1, t1) = split_field(d, l1);
                let (h2, t2) = split_field(d, l2);
                t1 == t2 && h1 != h2
            });
            if !heads_differ {
                return false;
            }
        }
    }
    true
}

/// `E(g_saf, Y)` — conditions for `(stitch2 d add first)` (Table 2).
pub fn e_stitch2_add_first(obs: &[Observation]) -> bool {
    obs.iter().any(|o| {
        let (_, l1) = split_last_line(&o.y1);
        let (l2, _) = split_first_line(&o.y2);
        let (_, depadded) = del_pad(l1);
        l1 == l2
            && depadded.chars().next().is_some_and(non_delim_nonzero)
            && l1.chars().last().is_some_and(non_delim_nonzero)
    })
}

/// `E_rec(Y)` (Definition B.13): sufficient to discriminate within RecOp
/// whenever the correct combiner is in `G_rec`.
pub fn e_rec(obs: &[Observation]) -> bool {
    obs.iter().any(|o| o.y1 != o.y2)
        && obs.iter().any(|o| o.y1.chars().any(non_delim_nonzero))
        && obs.iter().any(|o| o.y2.chars().any(non_delim_nonzero))
}

/// `T(Y)` (Definition B.14): the observations are interpretable as a table
/// — every line of every component is nil or `pad ++ h ++ d ++ t` for a
/// single delimiter `d`.
pub fn t_table(obs: &[Observation]) -> bool {
    Delim::ALL
        .into_iter()
        .filter(|d| *d != Delim::Newline)
        .any(|d| obs_table_shaped(d, obs))
}

fn obs_table_shaped(d: Delim, obs: &[Observation]) -> bool {
    if d == Delim::Newline {
        return false;
    }
    let line_ok = |l: &str| {
        if l.is_empty() {
            return true;
        }
        let (_pad, rest) = del_pad(l);
        let (_h, t) = split_first(d.as_char(), rest);
        t.is_some()
    };
    let stream_ok = |s: &str| kq_stream::lines_of(s).all(line_ok);
    !obs.is_empty()
        && obs
            .iter()
            .all(|o| stream_ok(&o.y1) && stream_ok(&o.y2) && stream_ok(&o.y12))
}

fn split_field(d: Delim, line: &str) -> (String, Option<String>) {
    let (_pad, rest) = del_pad(line);
    let (h, t) = split_first(d.as_char(), rest);
    (h.to_owned(), t.map(str::to_owned))
}

/// `E_struct(Y)` (Definition B.15): sufficient to discriminate within
/// StructOp whenever the correct combiner is in `G_struct`.
pub fn e_struct(obs: &[Observation]) -> bool {
    let first = obs.iter().any(|o| {
        let (_, l1) = split_last_line(&o.y1);
        let (l2, y2p) = split_first_line(&o.y2);
        let (l2p, _) = split_first_line(y2p);
        let (_, depadded) = del_pad(l1);
        l1 == l2
            && depadded.chars().next().is_some_and(non_delim_nonzero)
            && l1.chars().last().is_some_and(non_delim_nonzero)
            && !l2p.is_empty()
    });
    if !first {
        return false;
    }
    if t_table(obs) {
        // Project the table observations to their first fields and require
        // E_rec on the projection.
        for d in Delim::ALL {
            if obs_table_shaped(d, obs) {
                let projected: Vec<Observation> = obs
                    .iter()
                    .filter_map(|o| {
                        let (_, l1) = split_last_line(&o.y1);
                        let (l2, _) = split_first_line(&o.y2);
                        let (h1, t1) = split_field(d, l1);
                        let (h2, t2) = split_field(d, l2);
                        if t1 == t2 {
                            Some(Observation::new(h1, h2, String::new()))
                        } else {
                            None
                        }
                    })
                    .collect();
                if !e_rec(&projected) {
                    return false;
                }
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(triples: &[(&str, &str, &str)]) -> Vec<Observation> {
        triples
            .iter()
            .map(|(a, b, c)| Observation::new(*a, *b, *c))
            .collect()
    }

    #[test]
    fn representative_sets_nonempty_and_well_formed() {
        let delims = [Delim::Newline, Delim::Space];
        let grec = g_rec(&delims);
        let gstruct = g_struct(&delims);
        assert!(grec.len() >= 9);
        assert_eq!(gstruct.len(), 1 + 2 * delims.len());
        for g in grec.iter().chain(&gstruct) {
            assert!(g.size() >= 3);
        }
    }

    #[test]
    fn e_add_requires_nonzero_observations() {
        assert!(!e_add(&obs(&[("0", "0", "0")])));
        assert!(!e_add(&obs(&[("7", "0", "7")])));
        assert!(e_add(&obs(&[("7", "0", "7"), ("0", "3", "3")])));
    }

    #[test]
    fn e_concat_requires_nonempty_both_sides() {
        assert!(!e_concat(&obs(&[("", "x", "x")])));
        assert!(e_concat(&obs(&[("", "x", "x"), ("y", "", "y")])));
    }

    #[test]
    fn e_first_needs_difference_and_content() {
        assert!(!e_first(&obs(&[("a", "a", "a")])));
        assert!(!e_first(&obs(&[("a", "0", "a")])));
        assert!(e_first(&obs(&[("a", "b", "a")])));
    }

    #[test]
    fn e_back_add_strips_delimiter() {
        assert!(e_back_add(Delim::Newline, &obs(&[("3\n", "4\n", "7\n")])));
        assert!(!e_back_add(Delim::Newline, &obs(&[("0\n", "0\n", "0\n")])));
        assert!(!e_back_add(Delim::Newline, &obs(&[("3", "4", "7")])));
    }

    #[test]
    fn e_rec_composite() {
        assert!(e_rec(&obs(&[("a\n", "b\n", "a\nb\n")])));
        assert!(!e_rec(&obs(&[("0\n", "0\n", "0\n0\n")])));
        assert!(!e_rec(&obs(&[("a\n", "a\n", "a\na\n")])));
    }

    #[test]
    fn table_detection() {
        let table = obs(&[(
            "      2 cat\n",
            "      1 dog\n",
            "      2 cat\n      1 dog\n",
        )]);
        assert!(t_table(&table));
        let not_table = obs(&[("plainline\n", "other\n", "plainline\nother\n")]);
        assert!(!t_table(&not_table));
    }

    #[test]
    fn e_stitch2_on_uniq_c_style_boundary() {
        // Boundary lines equal with content: "      4 word" both sides.
        let good = obs(&[(
            "      1 alpha\n      4 word\n",
            "      4 word\n",
            "      1 alpha\n      8 word\n",
        )]);
        assert!(e_stitch2_add_first(&good));
        let bad = obs(&[("      1 a\n", "      2 b\n", "      1 a\n      2 b\n")]);
        assert!(!e_stitch2_add_first(&bad));
    }

    #[test]
    fn e_struct_requires_second_line_in_y2() {
        // y2 must contain a second line after the shared boundary line.
        let good = obs(&[("alpha\nword\n", "word\nbeta\n", "alpha\nword\nbeta\n")]);
        assert!(e_struct(&good));
        let no_second = obs(&[("word\n", "word\n", "word\n")]);
        assert!(!e_struct(&no_second));
    }
}
